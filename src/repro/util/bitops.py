"""Vectorized bit-level primitives.

The multilinear-detection inner loop evaluates, for every (node ``i``,
iteration ``q``) pair, the parity of ``v_i AND q`` where ``v_i`` is the node's
random vector in ``Z_2^k`` packed into a 64-bit integer and ``q`` is the
iteration index (a diagonal element of the group-algebra matrix
representation).  Computing these parities for a whole ``N_2``-wide batch of
iterations at once is the first of the two vectorization axes that make the
pure-Python reproduction feasible, so the primitives here are written for
numpy arrays first and scalars second.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def popcount_u64(x: "np.ndarray | int") -> "np.ndarray | int":
    """Population count of 64-bit values, elementwise.

    Classic SWAR (SIMD-within-a-register) bit counting; works on scalars and
    arrays of any shape.  Values are treated as unsigned 64-bit.
    """
    v = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):  # SWAR wraparound is intentional
        v = v - ((v >> np.uint64(1)) & _M1)
        v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
        v = (v + (v >> np.uint64(4))) & _M4
        out = (v * _H01) >> np.uint64(56)
    if np.isscalar(x) or np.ndim(x) == 0:
        return int(out)
    return out.astype(np.uint8)


def parity_u64(x: "np.ndarray | int") -> "np.ndarray | int":
    """Parity (popcount mod 2) of 64-bit values, elementwise.

    Returns ``uint8`` arrays (0/1) for array input, ``int`` for scalars.
    """
    v = np.array(x, dtype=np.uint64, copy=True)  # never mutate the caller's array
    v ^= v >> np.uint64(32)
    v ^= v >> np.uint64(16)
    v ^= v >> np.uint64(8)
    v ^= v >> np.uint64(4)
    v ^= v >> np.uint64(2)
    v ^= v >> np.uint64(1)
    out = v & np.uint64(1)
    if np.isscalar(x) or np.ndim(x) == 0:
        return int(out)
    return out.astype(np.uint8)


def bit_length(x: int) -> int:
    """Number of bits needed to represent non-negative integer ``x``."""
    if x < 0:
        raise ValueError(f"bit_length requires a non-negative integer, got {x}")
    return int(x).bit_length()


def gray_code(i: int) -> int:
    """The ``i``-th reflected Gray code value (``i XOR (i >> 1)``).

    Iterating the group-algebra diagonal in Gray-code order flips exactly one
    bit of ``q`` per step, which some incremental evaluation strategies
    exploit; exposed here for the ablation benchmarks.
    """
    if i < 0:
        raise ValueError(f"gray_code requires a non-negative index, got {i}")
    return i ^ (i >> 1)


def iter_bits(x: int, width: int) -> Iterator[int]:
    """Yield the ``width`` low bits of ``x``, least-significant first."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    for j in range(width):
        yield (x >> j) & 1


def unpack_bits(x: int, width: int) -> List[int]:
    """The ``width`` low bits of ``x`` as a list, least-significant first."""
    return list(iter_bits(x, width))


def pack_bits(bits) -> int:
    """Inverse of :func:`unpack_bits`: pack an iterable of 0/1 into an int."""
    out = 0
    for j, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {b!r} at position {j}")
        out |= int(b) << j
    return out
