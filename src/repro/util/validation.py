"""Eager argument validation helpers.

Every public entry point validates its parameters before doing any work, so
that a bad ``(N, N1, N2, k)`` combination fails with a clear message instead
of a cryptic numpy broadcast error three layers down.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_positive_int(value, name: str) -> int:
    """Require ``value`` to be an integer >= 1; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
        if ivalue != value:
            raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
        value = ivalue
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_in_range(value, name: str, low, high) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")


def check_probability(value, name: str, inclusive: bool = False) -> float:
    """Require ``value`` in (0, 1) — or [0, 1] when ``inclusive``."""
    v = float(value)
    if inclusive:
        if not (0.0 <= v <= 1.0):
            raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    else:
        if not (0.0 < v < 1.0):
            raise ConfigurationError(f"{name} must be in (0, 1), got {value}")
    return v


def check_power_of_two(value, name: str) -> int:
    """Require ``value`` to be a positive power of two; return it as int."""
    v = check_positive_int(value, name)
    if v & (v - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {v}")
    return v


def check_divides(a: int, b: int, name_a: str, name_b: str) -> None:
    """Require ``a`` to divide ``b`` (the paper assumes 2^k/N2 and N/N1 integral)."""
    if b % a:
        raise ConfigurationError(
            f"{name_a} (={a}) must divide {name_b} (={b}); "
            f"the MIDAS schedule assumes integral phase/batch counts"
        )
