"""Deterministic random-stream management.

MIDAS is a Monte Carlo algorithm: every round draws fresh random vectors
``v_i`` and field coefficients ``y``.  For reproducible experiments (and for
the parallel == sequential bit-exactness tests) every component that needs
randomness receives an :class:`RngStream` derived from a single root seed via
``numpy.random.SeedSequence`` spawning, so that

* the same root seed always produces the same detection transcript, and
* parallel ranks derive their randomness from the *round*, never from the
  rank, keeping results independent of the (N, N1, N2) decomposition.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, None, np.random.SeedSequence, "RngStream"]


class RngStream:
    """A named, spawnable wrapper around ``numpy.random.Generator``.

    Parameters
    ----------
    seed:
        Root entropy.  ``None`` draws OS entropy (only sensible at the very
        top of an interactive session); experiments should always pass an int.
    name:
        Human-readable label used in ``repr`` and tracing output.
    """

    def __init__(self, seed: SeedLike = None, name: str = "root") -> None:
        if isinstance(seed, RngStream):
            seq = seed._seq.spawn(1)[0]
        elif isinstance(seed, np.random.SeedSequence):
            seq = seed
        else:
            seq = np.random.SeedSequence(seed)
        self._seq = seq
        self._gen = np.random.default_rng(seq)
        self.name = name

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._gen

    def spawn(self, n: int, prefix: str = "child") -> List["RngStream"]:
        """Derive ``n`` statistically independent child streams."""
        if n < 0:
            raise ValueError(f"cannot spawn a negative number of streams: {n}")
        return [
            RngStream(seq, name=f"{self.name}/{prefix}{i}")
            for i, seq in enumerate(self._seq.spawn(n))
        ]

    def child(self, label: str) -> "RngStream":
        """Derive a single child stream labeled ``label``.

        The child's entropy depends on the spawn *order*, so callers must
        request children in a deterministic order (they do: rounds ascend).
        """
        return RngStream(self._seq.spawn(1)[0], name=f"{self.name}/{label}")

    # -- serializable lineage ----------------------------------------------
    def state(self) -> dict:
        """The JSON-safe spawn lineage of this stream.

        ``SeedSequence`` is fully determined by ``(entropy, spawn_key,
        n_children_spawned)``, so :meth:`from_state` rebuilds a stream
        whose *future* children are bit-identical to this one's — this is
        what lets a seed policy cross a process or network boundary (the
        detection service) without perturbing the transcript.  Generator
        *position* (draws already consumed) is deliberately not captured:
        ship streams before drawing from them.
        """
        seq = self._seq
        entropy = seq.entropy  # an int, or a sequence of ints
        if isinstance(entropy, (list, tuple, np.ndarray)):
            entropy = [int(x) for x in entropy]
        else:
            entropy = int(entropy)
        return {
            "entropy": entropy,
            "spawn_key": [int(x) for x in seq.spawn_key],
            "n_children_spawned": int(seq.n_children_spawned),
        }

    @classmethod
    def from_state(cls, state: dict, name: str = "restored") -> "RngStream":
        """Rebuild a stream captured with :meth:`state` (see its caveat)."""
        entropy = state["entropy"]
        if isinstance(entropy, (list, tuple)):
            entropy = [int(x) for x in entropy]
        else:
            entropy = int(entropy)
        seq = np.random.SeedSequence(
            entropy,
            spawn_key=tuple(int(x) for x in state.get("spawn_key", ())),
            n_children_spawned=int(state.get("n_children_spawned", 0)),
        )
        return cls(seq, name=name)

    # -- convenience draws -------------------------------------------------
    def integers(self, low, high=None, size=None, dtype=np.int64):
        return self._gen.integers(low, high=high, size=size, dtype=dtype)

    def random(self, size=None):
        return self._gen.random(size=size)

    def choice(self, a, size=None, replace=True, p=None):
        return self._gen.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self._gen.permutation(x)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._gen.normal(loc=loc, scale=scale, size=size)

    def poisson(self, lam=1.0, size=None):
        return self._gen.poisson(lam=lam, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(name={self.name!r})"


def spawn_rngs(seed: SeedLike, n: int, prefix: str = "stream") -> List[RngStream]:
    """Create ``n`` independent :class:`RngStream` objects from one seed."""
    return RngStream(seed, name="root").spawn(n, prefix=prefix)


def as_stream(seed: SeedLike, name: str = "anon") -> RngStream:
    """Coerce ints/None/SeedSequence/RngStream into an :class:`RngStream`."""
    if isinstance(seed, RngStream):
        return seed
    return RngStream(seed, name=name)
