"""Library logging setup.

All modules log through the ``repro`` logger hierarchy
(``repro.core.midas``, ``repro.runtime.scheduler``, ...).  By default the
library stays silent (a ``NullHandler`` on the root ``repro`` logger, per
library best practice); applications opt in with :func:`enable_logging`.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy; pass ``__name__``."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_logging(level: int = logging.INFO, stream=None,
                   fmt: Optional[str] = None) -> logging.Handler:
    """Attach a stream handler to the ``repro`` logger; returns it so the
    caller can remove it again (``disable_logging(handler)``)."""
    logger = logging.getLogger(_ROOT)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(
        fmt or "%(asctime)s %(name)s %(levelname)s: %(message)s"
    ))
    # remember the level we are about to clobber so disable_logging can
    # restore it (0 == NOTSET is a valid prior level, hence the sentinel
    # attribute rather than a level comparison)
    handler._repro_prior_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def disable_logging(handler: logging.Handler) -> None:
    """Detach a handler previously returned by :func:`enable_logging` and
    restore the ``repro`` logger level that :func:`enable_logging` set."""
    logger = logging.getLogger(_ROOT)
    logger.removeHandler(handler)
    prior = getattr(handler, "_repro_prior_level", None)
    if prior is not None:
        logger.setLevel(prior)
