"""Library logging setup.

All modules log through the ``repro`` logger hierarchy
(``repro.core.midas``, ``repro.runtime.scheduler``, ...).  By default the
library stays silent (a ``NullHandler`` on the root ``repro`` logger, per
library best practice); applications opt in with :func:`enable_logging`.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Optional

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


class JsonLineFormatter(logging.Formatter):
    """One JSON object per log record, for machine-parseable service logs.

    Selected by ``enable_logging(fmt="json")`` or the environment
    variable ``REPRO_LOG_FORMAT=json``.  Fields: ``ts`` (unix seconds),
    ``level``, ``logger``, ``msg``, plus ``exc`` when an exception is
    attached.
    """

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy; pass ``__name__``."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_logging(level: int = logging.INFO, stream=None,
                   fmt: Optional[str] = None) -> logging.Handler:
    """Attach a stream handler to the ``repro`` logger; returns it so the
    caller can remove it again (``disable_logging(handler)``).

    ``fmt`` is a ``logging`` format string, or the special value
    ``"json"`` for one-JSON-object-per-line output
    (:class:`JsonLineFormatter`).  When ``fmt`` is not given, the
    environment variable ``REPRO_LOG_FORMAT=json`` selects JSON too.
    """
    logger = logging.getLogger(_ROOT)
    handler = logging.StreamHandler(stream)
    if fmt is None and os.environ.get("REPRO_LOG_FORMAT", "").lower() == "json":
        fmt = "json"
    if fmt == "json":
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            fmt or "%(asctime)s %(name)s %(levelname)s: %(message)s"
        ))
    # remember the level we are about to clobber so disable_logging can
    # restore it (0 == NOTSET is a valid prior level, hence the sentinel
    # attribute rather than a level comparison)
    handler._repro_prior_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def disable_logging(handler: logging.Handler) -> None:
    """Detach a handler previously returned by :func:`enable_logging` and
    restore the ``repro`` logger level that :func:`enable_logging` set."""
    logger = logging.getLogger(_ROOT)
    logger.removeHandler(handler)
    prior = getattr(handler, "_repro_prior_level", None)
    if prior is not None:
        logger.setLevel(prior)
