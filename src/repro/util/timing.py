"""Wall-clock measurement helpers used by the calibration microbenchmarks."""

from __future__ import annotations

import time
from typing import Callable, Optional


class Stopwatch:
    """Accumulating stopwatch around ``time.perf_counter``.

    Usage::

        sw = Stopwatch()
        with sw:
            kernel()
        sw.elapsed   # seconds spent inside all ``with`` blocks so far

    ``observer``, when given, is called with each block's duration on
    exit — typically a metrics ``Histogram.observe`` so wall measurements
    land in the same registry as everything else (see
    :mod:`repro.obs.metrics`).
    """

    def __init__(self, observer: Optional[Callable[[float], object]] = None) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self.observer = observer
        self._t0: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None, "Stopwatch exited without entering"
        dt = time.perf_counter() - self._t0
        self.elapsed += dt
        self.calls += 1
        self._t0 = None
        if self.observer is not None:
            self.observer(dt)

    def observe(self, dt: float) -> None:
        """Fold an externally measured duration into the accumulator, as
        if a ``with`` block of ``dt`` seconds had run."""
        self.elapsed += dt
        self.calls += 1
        if self.observer is not None:
            self.observer(dt)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._t0 = None

    @property
    def mean(self) -> float:
        """Mean seconds per ``with`` block (0.0 before the first block)."""
        return self.elapsed / self.calls if self.calls else 0.0


def time_call(
    fn: Callable[[], object],
    min_time: float = 0.05,
    max_reps: int = 10_000,
    on_measure: Optional[Callable[[float], object]] = None,
) -> float:
    """Return the best-of mean seconds per call of ``fn``.

    Repeats ``fn`` until at least ``min_time`` seconds have been spent (or
    ``max_reps`` calls), then returns total/reps.  Used to calibrate the cost
    model's compute rates from the real vectorized kernels.  ``on_measure``
    receives every individual rep's duration (for metrics histograms).
    """
    reps = 0
    total = 0.0
    while total < min_time and reps < max_reps:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        total += dt
        reps += 1
        if on_measure is not None:
            on_measure(dt)
    return total / max(reps, 1)


def format_seconds(s: float) -> str:
    """Render a duration with a sensible unit (ns/us/ms/s/min)."""
    if s < 0:
        return "-" + format_seconds(-s)
    if s < 1e-6:
        return f"{s * 1e9:.1f}ns"
    if s < 1e-3:
        return f"{s * 1e6:.1f}us"
    if s < 1.0:
        return f"{s * 1e3:.1f}ms"
    if s < 120.0:
        return f"{s:.2f}s"
    return f"{s / 60.0:.1f}min"
