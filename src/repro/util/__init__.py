"""Shared low-level utilities: bit operations, RNG fan-out, timing, checks."""

from repro.util.bitops import (
    bit_length,
    gray_code,
    iter_bits,
    pack_bits,
    parity_u64,
    popcount_u64,
    unpack_bits,
)
from repro.util.rng import RngStream, spawn_rngs
from repro.util.timing import Stopwatch, format_seconds
from repro.util.validation import (
    check_in_range,
    check_positive_int,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "bit_length",
    "gray_code",
    "iter_bits",
    "pack_bits",
    "parity_u64",
    "popcount_u64",
    "unpack_bits",
    "RngStream",
    "spawn_rngs",
    "Stopwatch",
    "format_seconds",
    "check_in_range",
    "check_positive_int",
    "check_power_of_two",
    "check_probability",
]
