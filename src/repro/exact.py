"""Exact (exponential-time) reference algorithms.

Small-graph ground truth for every problem the library solves with Monte
Carlo algebra: DFS path search/counting, backtracking tree-embedding
counts, and connected-subgraph enumeration.  These are the oracles the
test-suite validates against, exposed publicly so downstream users can do
the same on their own small instances.

Everything here is exponential — guard rails reject inputs that would
clearly never finish.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.templates import TreeTemplate

_MAX_EXACT_N = 5000
_MAX_ENUM_N = 40


def _guard(graph: CSRGraph, k: int, limit: int = _MAX_EXACT_N) -> None:
    if graph.n > limit:
        raise ConfigurationError(
            f"exact reference algorithms are for small graphs (n <= {limit}); "
            f"got n = {graph.n} — use the Monte Carlo detectors instead"
        )
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")


def has_path(graph: CSRGraph, k: int) -> bool:
    """Exact k-path decision by DFS with early exit."""
    _guard(graph, k)
    if k == 1:
        return graph.n > 0
    if k > graph.n:
        return False

    visited = [False] * graph.n

    def dfs(v: int, depth: int) -> bool:
        if depth == k:
            return True
        visited[v] = True
        try:
            for u in graph.neighbors(v):
                u = int(u)
                if not visited[u] and dfs(u, depth + 1):
                    return True
            return False
        finally:
            visited[v] = False

    return any(dfs(s, 1) for s in range(graph.n))


def count_path_mappings(graph: CSRGraph, k: int) -> int:
    """Exact number of ordered simple k-paths (each counted per direction)."""
    _guard(graph, k, limit=200)
    if k == 1:
        return graph.n
    count = 0
    visited = [False] * graph.n

    def dfs(v: int, depth: int) -> None:
        nonlocal count
        if depth == k:
            count += 1
            return
        visited[v] = True
        for u in graph.neighbors(v):
            u = int(u)
            if not visited[u]:
                dfs(u, depth + 1)
        visited[v] = False

    for s in range(graph.n):
        dfs(s, 1)
    return count


def max_weight_path(graph: CSRGraph, k: int, weights: np.ndarray) -> Optional[int]:
    """Exact maximum node-weight over simple k-paths; None when absent."""
    _guard(graph, k, limit=200)
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},)")
    best: Optional[int] = None
    visited = [False] * graph.n

    def dfs(v: int, depth: int, total: int) -> None:
        nonlocal best
        if depth == k:
            best = total if best is None else max(best, total)
            return
        visited[v] = True
        for u in graph.neighbors(v):
            u = int(u)
            if not visited[u]:
                dfs(u, depth + 1, total + int(w[u]))
        visited[v] = False

    for s in range(graph.n):
        dfs(s, 1, int(w[s]))
    return best


def count_tree_embeddings(graph: CSRGraph, template: TreeTemplate) -> int:
    """Exact number of injective homomorphisms of ``template`` into ``graph``."""
    _guard(graph, template.k, limit=200)
    k = template.k
    if k > graph.n:
        return 0
    # order template nodes so each attaches to an already-placed one
    order = [template.root]
    placed = {template.root}
    attach = {}
    while len(order) < k:
        for a, b in template.edges:
            if a in placed and b not in placed:
                attach[b] = a
                order.append(b)
                placed.add(b)
            elif b in placed and a not in placed:
                attach[a] = b
                order.append(a)
                placed.add(a)
    count = 0
    mapping: dict = {}
    used: Set[int] = set()

    def rec(pos: int) -> None:
        nonlocal count
        if pos == k:
            count += 1
            return
        t = order[pos]
        host = mapping[attach[t]]
        for u in graph.neighbors(host):
            u = int(u)
            if u not in used:
                mapping[t] = u
                used.add(u)
                rec(pos + 1)
                used.discard(u)

    for v in range(graph.n):
        mapping[template.root] = v
        used = {v}
        rec(1)
    return count


def has_tree(graph: CSRGraph, template: TreeTemplate) -> bool:
    """Exact template-embedding decision (early-exit embedding search)."""
    _guard(graph, template.k, limit=500)
    # reuse the counting machinery with an early-exit exception
    class _Found(Exception):
        pass

    k = template.k
    if k > graph.n:
        return False
    order = [template.root]
    placed = {template.root}
    attach = {}
    while len(order) < k:
        for a, b in template.edges:
            if a in placed and b not in placed:
                attach[b] = a
                order.append(b)
                placed.add(b)
            elif b in placed and a not in placed:
                attach[a] = b
                order.append(a)
                placed.add(a)
    mapping: dict = {}

    def rec(pos: int, used: Set[int]) -> None:
        if pos == k:
            raise _Found
        t = order[pos]
        host = mapping[attach[t]]
        for u in graph.neighbors(host):
            u = int(u)
            if u not in used:
                mapping[t] = u
                rec(pos + 1, used | {u})

    try:
        for v in range(graph.n):
            mapping[template.root] = v
            rec(1, {v})
    except _Found:
        return True
    return False


def connected_subgraphs(graph: CSRGraph, k: int) -> Iterator[Tuple[int, ...]]:
    """Enumerate all connected vertex sets of size <= k (small graphs only).

    Yields sorted tuples; uses the standard 'extend by boundary vertex
    larger than the anchor' enumeration so each set appears exactly once.
    """
    _guard(graph, k, limit=_MAX_ENUM_N)

    def extend(current: Tuple[int, ...], boundary: Set[int], forbidden: Set[int]):
        yield current
        if len(current) == k:
            return
        boundary = set(boundary)
        while boundary:
            v = min(boundary)
            boundary.discard(v)
            new_boundary = boundary | {
                int(u) for u in graph.neighbors(v)
                if int(u) not in current and int(u) not in forbidden and int(u) != v
            }
            new_boundary -= {v}
            yield from extend(
                tuple(sorted(current + (v,))),
                new_boundary - forbidden - {v},
                forbidden,
            )
            forbidden = forbidden | {v}

    forbidden: Set[int] = set()
    for v in range(graph.n):
        nb = {int(u) for u in graph.neighbors(v)} - forbidden
        yield from extend((v,), nb, set(forbidden))
        forbidden.add(v)


def scan_cells(graph: CSRGraph, weights: np.ndarray, k: int) -> Set[Tuple[int, int]]:
    """All realizable (size, total weight) cells, by exact enumeration."""
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},)")
    cells = set()
    for s in connected_subgraphs(graph, k):
        cells.add((len(s), int(w[list(s)].sum())))
    return cells
