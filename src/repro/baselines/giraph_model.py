"""Cost model for the Giraph-based scan statistics of [19].

Section I of the paper: the prior GraphX/Giraph implementation of
algebraic-fingerprint scan statistics "did not scale beyond networks with
40 million edges", and MIDAS "improves on the Giraph based implementation
by over an order of magnitude".  This model reproduces both effects from
BSP-engine mechanics rather than fitted curves:

* the Giraph version keeps *per-vertex state for the whole ``2^k``
  iteration space* (it has no phase/batch decomposition — that is MIDAS's
  contribution), as boxed JVM objects (~3x overhead), which is what
  exhausts worker heaps around tens of millions of edges;
* every DP level is a superstep with a fixed synchronization + JVM
  overhead, and per-edge message handling goes through object
  serialization — an order of magnitude over MIDAS's packed byte buffers.

The default deployment matches [19]'s scale: 8 Haswell workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.runtime.cluster import VirtualCluster, juliet


@dataclass
class GiraphModel:
    """Giraph BSP cost model (per-superstep overhead + boxed per-vertex state)."""

    superstep_overhead: float = 0.35  # seconds of barrier + JVM sync per superstep
    ser_bytes_per_second: float = 4.0e8  # per-worker boxed (de)serialization rate
    boxing_overhead: float = 3.0  # JVM object factor over packed bytes
    heap_fraction: float = 0.6  # of node memory usable as worker heap
    # Per-(vertex, iteration) DP cost on the JVM.  All modeled compute in
    # this repo is in measured-vectorized-kernel units (~35 ns/op floor,
    # see KernelCalibration); a Giraph compute() doing the same arithmetic
    # through boxed Writable maps and per-message objects runs ~20x slower
    # than a contiguous byte-array kernel, hence the default below.
    c1_jvm: float = 7.0e-7
    cluster: VirtualCluster = field(default_factory=lambda: juliet(8))

    def _heap_total(self) -> float:
        return self.cluster.nodes * self.cluster.spec.mem_bytes_per_node * self.heap_fraction

    def vertex_state_bytes(self, k: int) -> float:
        """Per-vertex heap: k polynomials x 2^k iterations x 8B, boxed."""
        return (1 << k) * k * 8 * self.boxing_overhead

    def max_vertices(self, k: int) -> int:
        """Largest vertex count whose full-iteration state fits the heaps."""
        return int(self._heap_total() // self.vertex_state_bytes(k))

    def max_edges(self, k: int, avg_degree: float = 14.0) -> int:
        """Largest edge count supported (via the vertex-state heap cap)."""
        return int(self.max_vertices(k) * avg_degree / 2.0)

    def run_seconds(self, n: int, m: int, k: int, rounds: int = 8,
                    z_axis: int = 1, strict: bool = False) -> float:
        """Modeled scan-statistics runtime.

        All ``2^k`` iterations advance together (no batching), so a run is
        ``rounds * (k-1)`` supersteps.  Each superstep (a) runs the same
        ``O(z^2 k)`` per-vertex DP as MIDAS but over the full ``2^k``
        iteration state at JVM per-op cost, and (b) moves every edge's
        full-iteration payload through object serialization.
        """
        if m < 0 or n < 1 or k < 1:
            raise ConfigurationError("invalid Giraph model arguments")
        if n > self.max_vertices(k):
            if strict:
                raise ResourceExhaustedError(
                    f"Giraph heap exhausted: {n} vertices x "
                    f"{self.vertex_state_bytes(k) / 2**20:.1f} MiB of iteration state "
                    f"exceed {self._heap_total() / 2**30:.0f} GiB of worker heap"
                )
            return float("inf")
        workers = self.cluster.total_cores
        supersteps = rounds * max(1, k - 1)
        conv = z_axis * max(1.0, (k - 1) / 2.0)
        per_step_compute = (
            self.c1_jvm * (n / workers) * (1 << k) * z_axis * conv
        )
        payload_bytes = 2.0 * m * (1 << k) * 8 * z_axis * self.boxing_overhead
        per_step_comm = payload_bytes / (self.ser_bytes_per_second * workers)
        return supersteps * (self.superstep_overhead + per_step_compute + per_step_comm)
