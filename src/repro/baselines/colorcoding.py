"""Color coding (the FASCIA algorithm) for approximate subgraph counting.

The state-of-the-art baseline the paper compares against [14, 15].  One
iteration colors every vertex uniformly from ``k`` colors and counts
*colorful* (all-colors-distinct) embeddings of the template with a dynamic
program over color subsets; dividing by the colorful probability
``k!/k^k`` gives an unbiased estimate of the embedding count.

The DP follows the same template decomposition as the MIDAS tree evaluator
(paper Fig 2), but its per-vertex table is indexed by *color subsets*:
``C(i, T', S)`` = number of colorful embeddings of subtree ``T'`` rooted at
``i`` using exactly the colors in ``S``.  That table is the crux of the
comparison: it has ``O(2^k)`` entries per vertex versus MIDAS's ``O(k)``
words — the memory wall that stops FASCIA at k ~ 12 on the paper's
clusters (modeled in :mod:`repro.baselines.fascia`).

Everything is vectorized over vertices: a (subset -> float64 vector) table
per subtree, with neighbour sums via ``np.add.reduceat``.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.templates import SubtreeSpec, TreeTemplate, decompose_template
from repro.util.rng import as_stream


def _segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Float segment sum over CSR rows (the counting analogue of XOR-reduce)."""
    n = len(indptr) - 1
    out = np.zeros((n,) + values.shape[1:], dtype=values.dtype)
    if values.shape[0] == 0 or n == 0:
        return out
    starts = indptr[:-1]
    nonempty = starts < indptr[1:]
    if np.any(nonempty):
        out[nonempty] = np.add.reduceat(values, starts[nonempty], axis=0)
    return out


def _submasks_of_size(mask: int, size: int) -> List[int]:
    """All submasks of ``mask`` with exactly ``size`` set bits."""
    bits = [b for b in range(mask.bit_length()) if mask >> b & 1]
    return [sum(1 << b for b in combo) for combo in combinations(bits, size)]


def colorful_count_one_coloring(
    graph: CSRGraph,
    template: TreeTemplate,
    colors: np.ndarray,
    specs: Optional[Sequence[SubtreeSpec]] = None,
) -> float:
    """Count colorful embeddings of ``template`` under a fixed coloring.

    ``colors[i]`` in ``[0, k)``.  Returns the number of homomorphisms
    ``f : V(template) -> V(graph)`` whose image uses all ``k`` colors
    (which forces injectivity, i.e. an embedding).
    """
    k = template.k
    c = np.asarray(colors, dtype=np.int64)
    if c.shape != (graph.n,):
        raise ConfigurationError(f"colors must have shape ({graph.n},), got {c.shape}")
    if len(c) and (c.min() < 0 or c.max() >= k):
        raise ConfigurationError(f"colors must lie in [0, {k})")
    if specs is None:
        specs = decompose_template(template)

    # leaf table shared by all leaves: C(i, {s}) = [color(i) == s]
    singleton: Dict[int, np.ndarray] = {
        1 << s: (c == s).astype(np.float64) for s in range(k)
    }
    tables: Dict[int, Dict[int, np.ndarray]] = {}
    for spec in specs:
        if spec.is_leaf:
            tables[spec.sid] = singleton
            continue
        t_same = tables[spec.child_same]
        t_branch = tables[spec.child_branch]
        s1 = specs[spec.child_same].size
        # neighbour sums of the branch child, per subset
        nbr: Dict[int, np.ndarray] = {
            S2: _segment_sum(arr[graph.indices], graph.indptr)
            for S2, arr in t_branch.items()
        }
        out: Dict[int, np.ndarray] = {}
        for S in _submasks_of_size((1 << k) - 1, spec.size):
            acc = np.zeros(graph.n, dtype=np.float64)
            for S1 in _submasks_of_size(S, s1):
                a = t_same.get(S1)
                b = nbr.get(S ^ S1)
                if a is None or b is None:
                    continue
                acc += a * b
            out[S] = acc
        tables[spec.sid] = out
    full = (1 << k) - 1
    root_table = tables[specs[-1].sid]
    return float(root_table[full].sum()) if full in root_table else 0.0


def color_coding_count(
    graph: CSRGraph,
    template: TreeTemplate,
    n_iterations: int = 16,
    rng=None,
) -> float:
    """Unbiased estimate of the number of template embeddings (mappings).

    Averages ``colorful_count / P[colorful]`` over ``n_iterations`` random
    colorings, with ``P[colorful] = k! / k^k``.  Relative error shrinks as
    ``1/sqrt(n_iterations * P)`` — the ``e^k`` iteration factor in color
    coding's complexity.
    """
    rng = as_stream(rng, "color-coding")
    if n_iterations < 1:
        raise ConfigurationError(f"n_iterations must be >= 1, got {n_iterations}")
    k = template.k
    specs = decompose_template(template)
    p_colorful = math.factorial(k) / float(k**k)
    total = 0.0
    for _ in range(n_iterations):
        colors = rng.integers(0, k, size=graph.n)
        total += colorful_count_one_coloring(graph, template, colors, specs)
    return total / (n_iterations * p_colorful)


def color_coding_detect(
    graph: CSRGraph,
    template: TreeTemplate,
    eps: float = 0.2,
    rng=None,
) -> bool:
    """Decide template existence with probability >= 1 - eps.

    One coloring finds an existing embedding with probability
    ``>= k!/k^k > e^-k``; iterate ``ceil(ln(1/eps) e^k)`` colorings.  No
    false positives (a colorful count > 0 certifies an embedding).
    """
    rng = as_stream(rng, "cc-detect")
    k = template.k
    p = math.factorial(k) / float(k**k)
    iters = max(1, math.ceil(math.log(1.0 / eps) / p))
    specs = decompose_template(template)
    for _ in range(iters):
        colors = rng.integers(0, k, size=graph.n)
        if colorful_count_one_coloring(graph, template, colors, specs) > 0:
            return True
    return False
