"""Baselines MIDAS is compared against in the paper.

* :mod:`repro.baselines.colorcoding` — a real color-coding (FASCIA
  algorithm) implementation for approximate path/tree counting, with the
  technique's true ``O(2^k)``-per-vertex table footprint;
* :mod:`repro.baselines.fascia` — the FASCIA cost/memory model used for
  the Fig 11 comparison at cluster scale (including the k > 12 failure);
* :mod:`repro.baselines.giraph_model` — the Giraph/GraphX BSP cost model
  for the prior scan-statistics implementation [19].
"""

from repro.baselines.colorcoding import (
    color_coding_count,
    color_coding_detect,
    colorful_count_one_coloring,
)
from repro.baselines.fascia import FasciaModel, FasciaRunResult
from repro.baselines.giraph_model import GiraphModel

__all__ = [
    "color_coding_count",
    "color_coding_detect",
    "colorful_count_one_coloring",
    "FasciaModel",
    "FasciaRunResult",
    "GiraphModel",
]
