"""FASCIA cost and memory model for the Fig 11 comparison.

FASCIA (Slota & Madduri [14, 15]) is the MPI color-coding counter MIDAS is
benchmarked against.  At laptop scale we run the real algorithm
(:mod:`repro.baselines.colorcoding`); at the paper's cluster scale we model
it, with both constants *measured* from the real kernels:

* **time**: one color-coding iteration on a path template costs
  ``c_cc * m * 2^k`` (each DP level touches every edge once per color
  subset of that level's size; the sizes' binomials sum to ``2^k``), and
  ``ceil(ln(1/eps)/p_colorful)`` iterations with ``p_colorful = k!/k^k``
  drive detection confidence — the ``e^k`` factor that dominates color
  coding's complexity.  ``c_cc`` is measured by timing
  :func:`~repro.baselines.colorcoding.colorful_count_one_coloring`.
* **memory**: each rank holds three live per-vertex color-subset DP tables
  (previous level, current level, and the per-subtree accumulator the
  counting variant keeps) over its owned *and ghost* vertices —
  ``(own + ghost) * 3 * 2^k * 8`` bytes.  With ~15% of node memory reserved
  for the graph, MPI buffers and the OS, this wall lands at ``k = 13`` for
  random-1e6 on the paper's 32-node/128 GB cluster, reproducing "FASCIA
  fails to support beyond subgraphs of size 12" (Section VI-E).

The model raises :class:`~repro.errors.ResourceExhaustedError` past the
wall, which the Fig 11 bench renders as the truncated FASCIA series.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.runtime.cluster import VirtualCluster, juliet
from repro.util.rng import RngStream


@dataclass
class FasciaRunResult:
    """Modeled FASCIA run outcome."""

    k: int
    seconds: float
    iterations: int
    memory_bytes_per_node: int
    feasible: bool
    reason: str = ""


@dataclass
class FasciaModel:
    """Calibrated FASCIA performance model.

    ``c_cc`` is the per-(edge, color-subset) DP cost in seconds.  Use
    :meth:`measure` for a live calibration or the documented default
    (measured on the reference machine, scaled like the MIDAS kernels).
    """

    c_cc: float = 6.0e-9
    memory_headroom: float = 0.85
    live_tables: int = 3
    cluster: VirtualCluster = field(default_factory=juliet)

    @staticmethod
    def measure(sample_nodes: int = 512, k: int = 6, cluster: Optional[VirtualCluster] = None,
                rng_seed: int = 999) -> "FasciaModel":
        """Calibrate ``c_cc`` by timing the real color-coding kernel."""
        from repro.baselines.colorcoding import colorful_count_one_coloring
        from repro.graph.generators import erdos_renyi
        from repro.graph.templates import TreeTemplate

        rng = RngStream(rng_seed, name="fascia-calib")
        g = erdos_renyi(sample_nodes, m=sample_nodes * 8, rng=rng)
        tmpl = TreeTemplate.path(k)
        colors = rng.integers(0, k, size=g.n)
        t0 = time.perf_counter()
        reps = 3
        for _ in range(reps):
            colorful_count_one_coloring(g, tmpl, colors)
        per_iter = (time.perf_counter() - t0) / reps
        c_cc = per_iter / (g.num_edges * (1 << k))
        cl = cluster if cluster is not None else juliet()
        # apply the same measured->Haswell scaling as the MIDAS kernels
        return FasciaModel(c_cc=c_cc * cl.spec.c_scale, cluster=cl)

    # ----------------------------------------------------------------- model
    def iterations_for(self, k: int, eps: float = 0.2) -> int:
        """Colorings needed for detection confidence ``1 - eps``."""
        if not (0 < eps < 1):
            raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        p_colorful = math.factorial(k) / float(k**k)
        return max(1, math.ceil(math.log(1.0 / eps) / p_colorful))

    def memory_bytes_per_node(self, n: int, m: int, k: int, n_processors: int) -> int:
        """Live per-vertex color-subset DP tables over own + ghost vertices,
        summed across the ranks sharing a node (paper placement: N ranks
        spread over the cluster's fixed node count)."""
        ranks_per_node = max(1, -(-n_processors // self.cluster.nodes))
        own = n / n_processors
        ghost = min(n, 2.0 * m / n_processors)  # boundary of a random partition
        per_rank = (own + ghost) * self.live_tables * (1 << k) * 8
        return int(per_rank * ranks_per_node)

    def run(self, n: int, m: int, k: int, n_processors: int, eps: float = 0.2,
            strict: bool = False) -> FasciaRunResult:
        """Model a FASCIA detection run; infeasible runs raise when ``strict``."""
        if k < 1 or n < 1 or m < 0 or n_processors < 1:
            raise ConfigurationError("invalid FASCIA model arguments")
        iters = self.iterations_for(k, eps)
        per_iter = self.c_cc * m * (1 << k) / n_processors
        seconds = iters * per_iter
        mem = self.memory_bytes_per_node(n, m, k, n_processors)
        budget = int(self.cluster.spec.mem_bytes_per_node * self.memory_headroom)
        feasible = mem <= budget
        reason = "" if feasible else (
            f"needs {mem / 2**30:.1f} GiB/node for the 2^k color-subset tables; "
            f"{budget / 2**30:.1f} GiB available"
        )
        if strict and not feasible:
            raise ResourceExhaustedError(f"FASCIA infeasible at k={k}: {reason}")
        return FasciaRunResult(
            k=k, seconds=seconds, iterations=iters,
            memory_bytes_per_node=mem, feasible=feasible, reason=reason,
        )
