"""Road-network congestion case study (paper Fig 13).

The paper applies scan-statistics MIDAS to the PeMS Los Angeles highway
sensor feed: 30-minute speed snapshots for May 2014, a normal model per
sensor fitted on snapshots ``1..t-1``, lower-tail p-values for snapshot
``t``, and a ``k = 12`` scan that highlights segments with *unexpectedly*
low speed (not merely congested — routinely congested downtown segments
have low p-values only if slower than their own history).

The PeMS feed is proprietary, so :class:`HighwayNetwork` synthesizes the
same structure: a grid of highway corridors of chained sensors, per-sensor
baseline speed distributions (with rush-hour dips *in the baseline*, so
routine congestion is not anomalous), and an injected incident — a
connected run of sensors whose speed drops well below their own history.
The detection pipeline downstream of the data is byte-for-byte the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.core.midas import MidasRuntime
from repro.graph.csr import CSRGraph
from repro.scanstat.detect import AnomalyDetector, AnomalyResult
from repro.scanstat.statistics import BerkJones, ScanStatistic
from repro.scanstat.weights import binary_weights_from_pvalues, normal_lower_pvalues
from repro.util.rng import as_stream


@dataclass
class HighwayNetwork:
    """A synthetic highway sensor network with speed history."""

    graph: CSRGraph
    corridor_of: np.ndarray  # corridor id per sensor
    base_speed: np.ndarray  # per-sensor free-flow mean (mph)
    base_sigma: np.ndarray  # per-sensor natural variability

    @property
    def n_sensors(self) -> int:
        return self.graph.n


def build_highway_network(
    n_corridors: int = 10,
    sensors_per_corridor: int = 40,
    rng=None,
) -> HighwayNetwork:
    """Build a grid of corridors: half east-west, half north-south.

    Sensors along a corridor are chained; corridors cross at interchange
    sensors, giving the planar, locally-linear topology of a highway map.
    """
    rng = as_stream(rng, "highway")
    if n_corridors < 2 or sensors_per_corridor < 4:
        raise ConfigurationError("need >= 2 corridors of >= 4 sensors")
    n_ew = (n_corridors + 1) // 2
    n_ns = n_corridors - n_ew
    n = n_corridors * sensors_per_corridor
    corridor_of = np.repeat(np.arange(n_corridors), sensors_per_corridor)
    edges: List[Tuple[int, int]] = []
    for c in range(n_corridors):
        base = c * sensors_per_corridor
        edges.extend((base + i, base + i + 1) for i in range(sensors_per_corridor - 1))
    # interchanges: corridor c_ew crosses corridor c_ns at proportional offsets
    for i_ew in range(n_ew):
        for i_ns in range(n_ns):
            a = i_ew * sensors_per_corridor + int(
                (i_ns + 1) * sensors_per_corridor / (n_ns + 1)
            )
            b = (n_ew + i_ns) * sensors_per_corridor + int(
                (i_ew + 1) * sensors_per_corridor / (n_ew + 1)
            )
            edges.append((a, min(b, n - 1)))
    graph = CSRGraph.from_edges(n, np.array(edges, dtype=np.int64), name="la-highways")
    base_speed = 58.0 + 10.0 * rng.random(n)  # 58-68 mph free flow
    base_sigma = 3.0 + 2.0 * rng.random(n)
    return HighwayNetwork(graph, corridor_of, base_speed, base_sigma)


@dataclass
class CongestionStudy:
    """Synthesize snapshots, inject an incident, run the detection pipeline.

    Parameters
    ----------
    network:
        The sensor network.
    n_history:
        Snapshots ``1..t-1`` used to fit each sensor's normal model.
    rush_hour_dip:
        Mean speed reduction (mph) applied to *every* sensor in the current
        snapshot — routine rush-hour congestion that must NOT be flagged,
        because the history is generated with the same dip.
    incident_dip:
        Extra reduction applied to the injected incident run of sensors.
    """

    network: HighwayNetwork
    n_history: int = 48
    rush_hour_dip: float = 12.0
    incident_dip: float = 22.0

    def synthesize(
        self, incident_len: int = 8, rng=None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Generate (history, current, mu_hat, sigma_hat) and the incident.

        Returns ``(current_speeds, mu_hat, sigma_hat, incident_nodes)``.
        """
        rng = as_stream(rng, "congestion")
        net = self.network
        n = net.n_sensors
        dips = np.full(n, self.rush_hour_dip)
        # history: rush-hour snapshots from each sensor's own distribution
        hist = (
            net.base_speed[None, :]
            - dips[None, :]
            + net.base_sigma[None, :] * rng.normal(size=(self.n_history, n))
        )
        mu_hat = hist.mean(axis=0)
        sigma_hat = hist.std(axis=0, ddof=1)
        # incident: a contiguous run of sensors on one corridor
        corridor = int(rng.integers(0, net.corridor_of.max() + 1))
        members = np.nonzero(net.corridor_of == corridor)[0]
        if incident_len > len(members):
            raise ConfigurationError("incident longer than its corridor")
        start = int(rng.integers(0, len(members) - incident_len + 1))
        incident = members[start : start + incident_len]
        current = (
            net.base_speed - dips + net.base_sigma * rng.normal(size=n)
        )
        current[incident] -= self.incident_dip
        return current, mu_hat, sigma_hat, incident

    def detect(
        self,
        current: np.ndarray,
        mu_hat: np.ndarray,
        sigma_hat: np.ndarray,
        k: int = 12,
        alpha: float = 0.05,
        statistic: Optional[ScanStatistic] = None,
        runtime: Optional[MidasRuntime] = None,
        eps: float = 0.1,
        rng=None,
        extract: bool = False,
    ) -> AnomalyResult:
        """Run the paper's pipeline: normal p-values -> binary weights -> scan."""
        pvals = normal_lower_pvalues(current, mu_hat, sigma_hat)
        weights = binary_weights_from_pvalues(pvals, alpha=alpha)
        stat = statistic if statistic is not None else BerkJones(alpha=alpha)
        detector = AnomalyDetector(self.network.graph, stat, k, runtime=runtime, eps=eps)
        result = detector.detect(weights, rng=rng, extract=extract)
        result.details["n_flagged_sensors"] = int(weights.sum())
        result.details["alpha"] = alpha
        return result

    @staticmethod
    def score_recovery(cluster: np.ndarray, incident: np.ndarray) -> Dict[str, float]:
        """Precision/recall of an extracted cluster against the injection."""
        cl = set(int(x) for x in np.asarray(cluster).ravel())
        inc = set(int(x) for x in np.asarray(incident).ravel())
        tp = len(cl & inc)
        precision = tp / len(cl) if cl else 0.0
        recall = tp / len(inc) if inc else 0.0
        return {"precision": precision, "recall": recall, "true_positives": float(tp)}
