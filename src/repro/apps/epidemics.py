"""Bio-surveillance case study: outbreak detection on a contact network.

The paper's introduction motivates graph scan statistics with epidemiology
and bio-surveillance (refs [3]-[7]); the miami dataset itself is a
synthetic-population *contact network*.  This module packages that
scenario the same way :mod:`repro.apps.roadnet` packages the traffic one:

* :class:`SurveillanceRegion` — a spatial contact network whose nodes are
  reporting units (census blocks / clinics) with baseline populations;
* :class:`OutbreakStudy` — temporal Poisson case counts under the null
  (endemic rate proportional to population) with an injected outbreak
  growing over a connected neighbourhood, plus the detection pipeline:
  counts → Poisson p-values → binary weights → MIDAS scan → cluster
  extraction and day-of-detection analysis.

The headline metric is *time to detection*: the first day the scan flags
a significant cluster, versus the day the outbreak was seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.core.midas import MidasRuntime
from repro.graph.csr import CSRGraph
from repro.graph.generators import miami_like, plant_cluster
from repro.scanstat.detect import AnomalyDetector, AnomalyResult
from repro.scanstat.events import inject_poisson_counts, pvalues_from_counts
from repro.scanstat.statistics import BerkJones, ScanStatistic
from repro.scanstat.weights import binary_weights_from_pvalues
from repro.util.rng import as_stream


@dataclass
class SurveillanceRegion:
    """A contact network of reporting units with baseline populations."""

    graph: CSRGraph
    populations: np.ndarray  # expected (baseline) case counts per unit

    @property
    def n_units(self) -> int:
        return self.graph.n

    @staticmethod
    def synthetic(n_units: int = 900, avg_degree: float = 14.0, rng=None
                  ) -> "SurveillanceRegion":
        """A miami-like spatial region with log-normal-ish populations."""
        rng = as_stream(rng, "region")
        g = miami_like(n_units, avg_degree=avg_degree, rng=rng.child("net"))
        pop = np.exp(rng.child("pop").normal(loc=1.6, scale=0.5, size=n_units))
        return SurveillanceRegion(g, pop)


@dataclass
class OutbreakStudy:
    """Temporal outbreak injection + the paper's detection pipeline.

    Days ``0 .. seed_day-1`` are endemic; from ``seed_day`` the outbreak
    cluster's rate grows by ``growth`` per day (so day ``d`` has elevation
    ``growth^(d - seed_day + 1)``), mimicking early exponential spread.
    """

    region: SurveillanceRegion
    cluster_size: int = 6
    seed_day: int = 3
    n_days: int = 8
    growth: float = 1.6
    alpha: float = 0.01
    k: int = 6
    eps: float = 0.1

    def __post_init__(self) -> None:
        if self.seed_day >= self.n_days:
            raise ConfigurationError("seed_day must fall inside the study window")
        if self.growth <= 1.0:
            raise ConfigurationError("growth must exceed 1 (it is an outbreak)")
        if not (1 <= self.cluster_size <= self.region.n_units):
            raise ConfigurationError("cluster_size out of range")

    # ------------------------------------------------------------- scenario
    def synthesize(self, rng=None) -> Tuple[np.ndarray, np.ndarray]:
        """Generate the day x unit count matrix and the outbreak cluster."""
        rng = as_stream(rng, "outbreak")
        cluster = plant_cluster(self.region.graph, self.cluster_size,
                                rng=rng.child("where"))
        days = []
        for d in range(self.n_days):
            if d < self.seed_day:
                lam = self.region.populations
                counts = rng.child(f"day{d}").poisson(lam=lam)
            else:
                elevation = self.growth ** (d - self.seed_day + 1)
                counts = inject_poisson_counts(
                    self.region.populations, cluster, elevation=elevation,
                    rng=rng.child(f"day{d}"),
                )
            days.append(np.asarray(counts, dtype=np.int64))
        return np.stack(days), cluster

    # ------------------------------------------------------------ detection
    def detect_day(
        self,
        counts_day: np.ndarray,
        rng=None,
        statistic: Optional[ScanStatistic] = None,
        runtime: Optional[MidasRuntime] = None,
        extract: bool = False,
    ) -> AnomalyResult:
        """Run one day's counts through the pipeline."""
        pvals = pvalues_from_counts(counts_day, self.region.populations)
        w = binary_weights_from_pvalues(pvals, alpha=self.alpha)
        stat = statistic if statistic is not None else BerkJones(alpha=self.alpha)
        det = AnomalyDetector(self.region.graph, stat, self.k,
                              runtime=runtime, eps=self.eps)
        res = det.detect(w, rng=rng, extract=extract)
        res.details["n_flagged_units"] = int(w.sum())
        return res

    def run(
        self,
        rng=None,
        score_threshold: float = 10.0,
        runtime: Optional[MidasRuntime] = None,
    ) -> "OutbreakReport":
        """Full surveillance run: scan every day, record first detection."""
        rng = as_stream(rng, "study")
        counts, cluster = self.synthesize(rng=rng.child("data"))
        daily: List[AnomalyResult] = []
        detected_on: Optional[int] = None
        for d in range(self.n_days):
            res = self.detect_day(counts[d], rng=rng.child(f"scan{d}"),
                                  runtime=runtime)
            daily.append(res)
            if detected_on is None and res.best_score >= score_threshold:
                detected_on = d
        return OutbreakReport(
            study=self, cluster=cluster, counts=counts, daily=daily,
            detected_on=detected_on, score_threshold=score_threshold,
        )


@dataclass
class OutbreakReport:
    """Outcome of a full surveillance run."""

    study: OutbreakStudy
    cluster: np.ndarray
    counts: np.ndarray
    daily: List[AnomalyResult]
    detected_on: Optional[int]
    score_threshold: float

    @property
    def detection_delay(self) -> Optional[int]:
        """Days from outbreak seeding to first alarm (None = missed)."""
        if self.detected_on is None:
            return None
        return self.detected_on - self.study.seed_day

    @property
    def false_alarm(self) -> bool:
        """Alarm raised before the outbreak existed."""
        return self.detected_on is not None and self.detected_on < self.study.seed_day

    def scores(self) -> List[float]:
        return [r.best_score for r in self.daily]

    def summary(self) -> str:
        status = (
            f"detected day {self.detected_on} (delay {self.detection_delay})"
            if self.detected_on is not None
            else "not detected"
        )
        return (
            f"outbreak(size={self.study.cluster_size}, seeded day "
            f"{self.study.seed_day}): {status}; daily scores "
            f"{['%.1f' % s for s in self.scores()]}"
        )
