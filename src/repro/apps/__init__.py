"""Application case studies built on the library (paper Section VI-F +
the bio-surveillance motivation of Section I)."""

from repro.apps.epidemics import OutbreakReport, OutbreakStudy, SurveillanceRegion
from repro.apps.roadnet import (
    CongestionStudy,
    HighwayNetwork,
    build_highway_network,
)

__all__ = [
    "OutbreakReport",
    "OutbreakStudy",
    "SurveillanceRegion",
    "CongestionStudy",
    "HighwayNetwork",
    "build_highway_network",
]
