"""JSON (de)serialization of result objects.

Experiment campaigns want to persist detection outcomes and modeled
estimates next to their configuration; these helpers give every result
type a stable, versioned JSON form:

    from repro.serialization import dump_result, load_result
    dump_result(result, "runs/kpath_k12.json")
    later = load_result("runs/kpath_k12.json")

Only plain data is stored (no pickles); numpy arrays become nested lists.
A ``"type"`` tag plus ``"schema_version"`` keeps files self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.core.model import PerformanceEstimate
from repro.core.result import DetectionResult, RoundRecord, ScanGridResult
from repro.core.schedule import PhaseSchedule

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, PerformanceEstimate):
        return {"type": "PerformanceEstimate", **_jsonable(_estimate_dict(obj))}
    return repr(obj)  # last resort: readable, not round-trippable


def _estimate_dict(est: PerformanceEstimate) -> Dict[str, Any]:
    return {
        "total_seconds": est.total_seconds,
        "compute_seconds": est.compute_seconds,
        "comm_seconds": est.comm_seconds,
        "phase_seconds": est.phase_seconds,
        "reduce_seconds": est.reduce_seconds,
        "rounds": est.rounds,
        "memory_bytes_per_rank": est.memory_bytes_per_rank,
        "schedule": {
            "k": est.schedule.k,
            "n_processors": est.schedule.n_processors,
            "n1": est.schedule.n1,
            "n2": est.schedule.n2,
        },
    }


def result_to_dict(result) -> Dict[str, Any]:
    """Convert a result object to its JSON-ready dict form."""
    if isinstance(result, DetectionResult):
        return {
            "type": "DetectionResult",
            "schema_version": SCHEMA_VERSION,
            "problem": result.problem,
            "k": result.k,
            "found": result.found,
            "eps": result.eps,
            "mode": result.mode,
            "n_processors": result.n_processors,
            "n1": result.n1,
            "n2": result.n2,
            "virtual_seconds": result.virtual_seconds,
            "wall_seconds": result.wall_seconds,
            "rounds": [
                {"round_index": r.round_index, "value": r.value,
                 "virtual_seconds": r.virtual_seconds}
                for r in result.rounds
            ],
            "details": _jsonable(result.details),
        }
    if isinstance(result, ScanGridResult):
        return {
            "type": "ScanGridResult",
            "schema_version": SCHEMA_VERSION,
            "k": result.k,
            "z_max": result.z_max,
            "detected": result.detected.tolist(),
            "rounds_run": result.rounds_run,
            "eps": result.eps,
            "mode": result.mode,
            "n_processors": result.n_processors,
            "n1": result.n1,
            "n2": result.n2,
            "virtual_seconds": result.virtual_seconds,
            "wall_seconds": result.wall_seconds,
            "details": _jsonable(result.details),
        }
    if isinstance(result, PerformanceEstimate):
        return {
            "type": "PerformanceEstimate",
            "schema_version": SCHEMA_VERSION,
            **_estimate_dict(result),
        }
    # observability types dispatch to their own (envelope-compatible)
    # serializers; imported lazily to keep repro.obs optional at import time
    from repro.obs.metrics import MetricsSnapshot
    from repro.obs.report import RunReport

    if isinstance(result, (MetricsSnapshot, RunReport)):
        return result.to_dict()
    raise ConfigurationError(
        f"cannot serialize {type(result).__name__}; supported: DetectionResult, "
        "ScanGridResult, PerformanceEstimate, MetricsSnapshot, RunReport"
    )


def result_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`result_to_dict`."""
    if not isinstance(data, dict) or "type" not in data:
        raise ConfigurationError("not a serialized repro result (missing 'type')")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported schema_version {version!r} (this build reads {SCHEMA_VERSION})"
        )
    t = data["type"]
    if t == "DetectionResult":
        return DetectionResult(
            problem=data["problem"],
            k=data["k"],
            found=data["found"],
            rounds=[
                RoundRecord(r["round_index"], r["value"], r.get("virtual_seconds", 0.0))
                for r in data["rounds"]
            ],
            eps=data["eps"],
            mode=data["mode"],
            n_processors=data["n_processors"],
            n1=data["n1"],
            n2=data["n2"],
            virtual_seconds=data["virtual_seconds"],
            wall_seconds=data["wall_seconds"],
            details=data.get("details", {}),
        )
    if t == "ScanGridResult":
        return ScanGridResult(
            k=data["k"],
            z_max=data["z_max"],
            detected=np.asarray(data["detected"], dtype=bool),
            rounds_run=data["rounds_run"],
            eps=data["eps"],
            mode=data["mode"],
            n_processors=data["n_processors"],
            n1=data["n1"],
            n2=data["n2"],
            virtual_seconds=data["virtual_seconds"],
            wall_seconds=data["wall_seconds"],
            details=data.get("details", {}),
        )
    if t == "PerformanceEstimate":
        sched = data["schedule"]
        return PerformanceEstimate(
            total_seconds=data["total_seconds"],
            compute_seconds=data["compute_seconds"],
            comm_seconds=data["comm_seconds"],
            phase_seconds=data["phase_seconds"],
            reduce_seconds=data["reduce_seconds"],
            rounds=data["rounds"],
            schedule=PhaseSchedule(
                sched["k"], sched["n_processors"], sched["n1"], sched["n2"]
            ),
            memory_bytes_per_rank=data["memory_bytes_per_rank"],
        )
    if t == "MetricsSnapshot":
        from repro.obs.metrics import MetricsSnapshot

        return MetricsSnapshot.from_dict(data)
    if t == "RunReport":
        from repro.obs.report import RunReport

        return RunReport.from_dict(data)
    raise ConfigurationError(f"unknown serialized type {t!r}")


def dump_result(result, path: PathLike) -> None:
    """Write a result object as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: PathLike):
    """Read a result object back from JSON."""
    return result_from_dict(json.loads(Path(path).read_text()))
