"""CommSanitizer: a runtime checker for simulated SPMD programs.

The simulated MPI substrate (:mod:`repro.runtime.scheduler`) executes
rank programs that must follow the usual buffer-discipline contract:
every ``Send`` is eventually received, every ``Irecv`` is redeemed by
exactly one ``Wait``, all live ranks enter the *same* collective with
compatible arguments, and a sender must not mutate a buffer it handed to
``Send`` before the message is delivered (the eager-copy simulator hides
that bug; a zero-copy runtime would not — the Gather aliasing bug class).
Nothing enforced any of this at runtime: a leaked request or a diverging
collective only surfaced as a deadlock, and a mutated send buffer not at
all.

:class:`CommSanitizer` is the enforcement layer, the moral equivalent of
an MPI correctness checker (MUST/ITAC) for the simulator.  The scheduler
consults it on every yielded op:

* **self-send** — ``Send`` with ``dst == rank``;
* **double-wait** — ``Wait`` on a request that was never posted or was
  already redeemed;
* **collective-divergence** — live ranks entering different collective
  types, or the same collective with incompatible reducer/root/payload
  shape, at the same call index; also ranks exiting while peers wait;
* **send-buffer-mutation** — the payload object handed to ``Send`` has a
  different content digest at delivery time than at send time;
* **unmatched-send** — a delivered-to-inbox message never received by
  the time the program exits;
* **leaked-request** — an ``Irecv`` still outstanding when its rank
  finishes.

In ``strict`` mode the first violation raises a typed
:class:`~repro.errors.SanitizerError` naming rank, op, and tag; in
``warn`` mode violations accumulate in a shared
:class:`SanitizerReport`.  End-of-run checks (unmatched sends, leaked
requests) are *suppressed* when injected faults fired or ranks crashed
during the run: a message lost to a seeded drop, or a request a crashed
rank never redeemed, is the fault plan's doing, not a program bug.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SanitizerError

#: the violation classes the sanitizer can report
VIOLATION_KINDS = (
    "self-send",
    "double-wait",
    "leaked-request",
    "unmatched-send",
    "collective-divergence",
    "send-buffer-mutation",
)

SANITIZE_MODES = ("off", "warn", "strict")


def payload_digest(payload: Any) -> Optional[int]:
    """Content digest of a payload, or ``None`` when it has no mutable,
    hashable-by-content representation (plain ints/strs can't be mutated
    in place, opaque objects can't be digested reliably)."""
    if isinstance(payload, np.ndarray):
        arr = np.ascontiguousarray(payload)
        meta = f"{arr.shape}:{arr.dtype}".encode()
        return zlib.crc32(arr.tobytes(), zlib.crc32(meta))
    if isinstance(payload, (bytearray, memoryview)):
        return zlib.crc32(bytes(payload))
    if isinstance(payload, (list, tuple)):
        acc = zlib.crc32(b"seq")
        for item in payload:
            d = payload_digest(item)
            if d is None:
                d = zlib.crc32(repr(item).encode())
            acc = zlib.crc32(d.to_bytes(8, "little", signed=False), acc)
        # tuples are immutable containers, but their elements may not be:
        # only report a digest when something inside is actually mutable
        if isinstance(payload, tuple) and not any(
            isinstance(x, (np.ndarray, bytearray, list, dict)) for x in payload
        ):
            return None
        return acc
    if isinstance(payload, dict):
        acc = zlib.crc32(b"map")
        for k in sorted(payload, key=repr):
            d = payload_digest(payload[k])
            if d is None:
                d = zlib.crc32(repr(payload[k]).encode())
            acc = zlib.crc32(repr(k).encode(), acc)
            acc = zlib.crc32(d.to_bytes(8, "little", signed=False), acc)
        return acc
    return None


def _payload_shape(value: Any) -> str:
    """Coarse payload signature used for collective compatibility."""
    if isinstance(value, np.ndarray):
        return f"ndarray{tuple(value.shape)}:{value.dtype}"
    if value is None:
        return "none"
    if isinstance(value, (int, float, np.integer, np.floating)):
        return "scalar"
    return type(value).__name__


def _reducer_signature(op: Any) -> str:
    if callable(op):
        return f"callable:{getattr(op, '__name__', repr(op))}"
    return f"op:{op!r}"


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding, with enough context to locate the bug."""

    kind: str
    rank: int
    op: str
    tag: Hashable = None
    detail: str = ""

    def message(self) -> str:
        tag = f", tag={self.tag!r}" if self.tag is not None else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"[{self.kind}] rank {self.rank}, {self.op}{tag}{detail}"


class SanitizerReport:
    """Accumulated sanitizer findings across one or more simulated runs.

    One report is shared by every per-run :class:`CommSanitizer` of a
    detection, so the engine can publish a single run-level summary
    (metrics families, RunReport section, ``details["sanitizer"]``).
    """

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.ops_checked = 0
        self.runs = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "ops_checked": self.ops_checked,
            "clean": self.clean,
            "violations": self.counts(),
            "findings": [v.message() for v in self.violations[:50]],
        }

    def text(self) -> str:
        if self.clean:
            return (f"sanitizer: clean ({self.ops_checked} ops across "
                    f"{self.runs} run(s))")
        lines = [f"sanitizer: {len(self.violations)} violation(s) in "
                 f"{self.ops_checked} ops across {self.runs} run(s)"]
        lines += [f"  {v.message()}" for v in self.violations]
        return "\n".join(lines)

    def raise_if_any(self) -> None:
        if self.violations:
            v = self.violations[0]
            raise SanitizerError(v.message(), kind=v.kind, rank=v.rank,
                                 op=v.op, tag=v.tag)


@dataclass
class _SendRecord:
    """Send-time bookkeeping attached to every enqueued message."""

    src: int
    dst: int
    tag: Hashable
    payload_ref: Any
    digest: Optional[int]
    enqueued: int = 1
    delivered: int = 0
    injected_extra: int = 0  # copies added by an injected `duplicate` fault
    mutation_reported: bool = field(default=False)


class CommSanitizer:
    """Per-run communication sanitizer (see module docs).

    Pass one to :class:`repro.runtime.scheduler.Simulator` via the
    ``sanitizer`` argument; the scheduler drives the ``on_*`` hooks.  A
    fresh instance (or :meth:`begin_run`) is required per run — per-run
    state (outstanding requests, collective signatures, send records) is
    reset there, while findings accumulate in the shared ``report``.
    """

    def __init__(self, mode: str = "strict",
                 report: Optional[SanitizerReport] = None) -> None:
        if mode not in ("warn", "strict"):
            raise ConfigurationError(
                f"sanitizer mode must be 'warn' or 'strict', got {mode!r}"
            )
        self.mode = mode
        self.report = report if report is not None else SanitizerReport()
        self._requests: Dict[int, Dict[Tuple[int, Hashable], int]] = {}
        self._collectives: Dict[int, Tuple[str, int]] = {}
        self._records: List[_SendRecord] = []
        self._nranks = 0

    # ------------------------------------------------------------- plumbing
    def _violate(self, kind: str, rank: int, op: str, tag: Hashable = None,
                 detail: str = "") -> None:
        v = Violation(kind, rank, op, tag, detail)
        self.report.violations.append(v)
        if self.mode == "strict":
            raise SanitizerError(v.message(), kind=kind, rank=rank, op=op,
                                 tag=tag)

    # ------------------------------------------------------- scheduler hooks
    def begin_run(self, nranks: int) -> None:
        """Reset per-run state; called by the scheduler at ``run()`` start."""
        self._nranks = nranks
        self._requests = {}
        self._collectives = {}
        self._records = []
        self.report.runs += 1

    def on_op(self, rank: int, op: Any, collective_idx: int) -> None:
        """Inspect one yielded op (the scheduler calls this for every op)."""
        # local import keeps this module importable without the runtime
        from repro.runtime.comm import (
            AllReduce, Barrier, Bcast, Gather, Irecv, Reduce, Send, Wait,
        )

        self.report.ops_checked += 1
        if isinstance(op, Send):
            if op.dst == rank:
                self._violate(
                    "self-send", rank, f"Send(dst={op.dst})", op.tag,
                    "a rank sent a message to itself",
                )
            return
        if isinstance(op, Irecv):
            reqs = self._requests.setdefault(rank, {})
            key = (op.src, op.tag)
            reqs[key] = reqs.get(key, 0) + 1
            return
        if isinstance(op, Wait):
            key = (op.request.src, op.request.tag)
            reqs = self._requests.setdefault(rank, {})
            if reqs.get(key, 0) <= 0:
                self._violate(
                    "double-wait", rank,
                    f"Wait(request=Irecv(src={key[0]}))", key[1],
                    "no outstanding Irecv matches this request "
                    "(already redeemed, or never posted)",
                )
            else:
                reqs[key] -= 1
            return
        if isinstance(op, (Barrier, AllReduce, Reduce, Bcast, Gather)):
            self._check_collective(rank, op, collective_idx)

    def _collective_signature(self, op: Any) -> str:
        from repro.runtime.comm import AllReduce, Bcast, Gather, Reduce

        kind = type(op).__name__
        if isinstance(op, AllReduce):
            return (f"{kind}({_reducer_signature(op.op)}, "
                    f"{_payload_shape(op.value)})")
        if isinstance(op, Reduce):
            return (f"{kind}(root={op.root}, {_reducer_signature(op.op)}, "
                    f"{_payload_shape(op.value)})")
        if isinstance(op, Bcast):
            # non-root values are ignored by Bcast, so only the root matters
            return f"{kind}(root={op.root})"
        if isinstance(op, Gather):
            # ragged per-rank values are legal; only the root must agree
            return f"{kind}(root={op.root})"
        return kind

    def _check_collective(self, rank: int, op: Any, idx: int) -> None:
        sig = self._collective_signature(op)
        prior = self._collectives.get(idx)
        if prior is None:
            self._collectives[idx] = (sig, rank)
            return
        prior_sig, prior_rank = prior
        if sig != prior_sig:
            self._violate(
                "collective-divergence", rank, sig,
                detail=(f"collective call #{idx} diverges: rank {prior_rank} "
                        f"entered {prior_sig}, rank {rank} entered {sig}"),
            )

    def on_collective_abandoned(self, waiting_ranks: List[int],
                                finished_ranks: List[int], op: Any) -> None:
        """Some ranks exited while others wait in a collective."""
        rank = waiting_ranks[0] if waiting_ranks else -1
        self._violate(
            "collective-divergence", rank, type(op).__name__,
            detail=(f"rank(s) {finished_ranks} exited while rank(s) "
                    f"{waiting_ranks} wait in {type(op).__name__}"),
        )

    def on_send(self, rank: int, op: Any, copies: int) -> _SendRecord:
        """Record an enqueued send (digest taken from the *original* buffer)."""
        rec = _SendRecord(
            src=rank, dst=op.dst, tag=op.tag, payload_ref=op.payload,
            digest=payload_digest(op.payload), enqueued=copies,
            injected_extra=max(0, copies - 1),
        )
        self._records.append(rec)
        return rec

    def on_deliver(self, receiver: int, rec: _SendRecord) -> None:
        """A message was claimed by its receiver: check the sender's buffer."""
        rec.delivered += 1
        if rec.digest is None or rec.mutation_reported:
            return
        now = payload_digest(rec.payload_ref)
        if now != rec.digest:
            rec.mutation_reported = True
            self._violate(
                "send-buffer-mutation", rec.src,
                f"Send(dst={rec.dst})", rec.tag,
                "sender mutated the payload buffer after Send and before "
                "delivery (safe only under eager-copy; a zero-copy runtime "
                "would deliver corrupted data)",
            )

    def on_run_end(self, states: List[Any], faults_fired: bool) -> None:
        """Program exit: unmatched sends, undrained inboxes, leaked requests.

        Skipped entirely when injected faults fired or ranks crashed — a
        leftover caused by a seeded drop/crash is not a program bug.
        """
        crashed = any(getattr(st, "crashed", False) for st in states)
        if faults_fired or crashed:
            return
        for st in states:
            for (src, tag), q in sorted(st.inbox.items(), key=lambda kv: repr(kv[0])):
                for msg in q:
                    rec = getattr(msg, "san", None)
                    if rec is not None and rec.injected_extra > 0:
                        rec.injected_extra -= 1
                        continue
                    self._violate(
                        "unmatched-send", src,
                        f"Send(dst={st.rank})", tag,
                        f"message {src}->{st.rank} was never received "
                        f"(receiver inbox undrained at exit)",
                    )
        for rank in sorted(self._requests):
            for (src, tag), n in sorted(self._requests[rank].items(),
                                        key=lambda kv: repr(kv[0])):
                if n > 0:
                    self._violate(
                        "leaked-request", rank,
                        f"Irecv(src={src})", tag,
                        f"{n} posted Irecv(s) never redeemed by a Wait",
                    )


__all__ = [
    "CommSanitizer",
    "SanitizerReport",
    "Violation",
    "VIOLATION_KINDS",
    "SANITIZE_MODES",
    "payload_digest",
]
