"""Runtime sanitizer and certified-result verification (`repro.sanitize`).

Three independent correctness layers over the detection stack:

* :mod:`repro.sanitize.comm` — :class:`CommSanitizer`, a runtime checker
  the SPMD simulator consults on every yielded op (collective
  divergence, unmatched sends, leaked requests, double waits,
  self-sends, send-buffer mutation);
* :mod:`repro.sanitize.replay` — :func:`verify_replay`, deterministic
  cross-backend replay with per-(round, batch, phase) digest diffing;
* :mod:`repro.sanitize.certify` — :class:`ResultCertifier`, independent
  re-validation of witnesses, clusters, weights, and grids against the
  graph and the exact oracles.

Enable the comm sanitizer uniformly via ``MidasRuntime(sanitize="warn")``
or ``"strict"``, or per-simulator via ``Simulator(sanitizer=...)``.
"""

from repro.sanitize.certify import (
    CertificationReport,
    ResultCertifier,
    certify_cluster,
    certify_max_weight,
    certify_ordered_path,
    certify_path_witness,
    certify_scan_grid,
    certify_scan_score,
    certify_tree_witness,
)
from repro.sanitize.comm import (
    SANITIZE_MODES,
    VIOLATION_KINDS,
    CommSanitizer,
    SanitizerReport,
    Violation,
    payload_digest,
)
from repro.sanitize.replay import (
    REPLAY_MODES,
    DigestLog,
    ReplayDivergence,
    ReplayReport,
    diff_digest_logs,
    value_digest,
    verify_replay,
)

__all__ = [
    "CertificationReport",
    "CommSanitizer",
    "DigestLog",
    "REPLAY_MODES",
    "ReplayDivergence",
    "ReplayReport",
    "ResultCertifier",
    "SANITIZE_MODES",
    "SanitizerReport",
    "VIOLATION_KINDS",
    "Violation",
    "certify_cluster",
    "certify_max_weight",
    "certify_ordered_path",
    "certify_path_witness",
    "certify_scan_grid",
    "certify_scan_score",
    "certify_tree_witness",
    "diff_digest_logs",
    "payload_digest",
    "value_digest",
    "verify_replay",
]
