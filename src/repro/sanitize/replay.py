"""Deterministic-replay verification for the detection engine.

PR 3's engine claims every backend is *bit-identical*: randomness is
round-scoped, XOR accumulation is order-free, so sequential, threaded,
simulated, and modeled runs of the same seed agree exactly.  That claim
is property-tested, but nothing made it a checkable *runtime* property
of a particular run.  This module does:

* :class:`DigestLog` — a sink the engine fills with CRC digests of every
  per-phase contribution (keyed ``(stage label, round, batch, phase)``)
  and every per-round accumulator, when attached via
  ``MidasRuntime.digest_log``;
* :func:`verify_replay` — run a driver once under the caller's runtime
  and once on a *reference* backend with the same seed and a pinned
  schedule, then diff the two logs and report the first divergent
  coordinate (phases first, in schedule order, then round accumulators).

The schedule is pinned by resolving ``n2`` to a concrete power of two
before either run: ``MidasRuntime.schedule_for`` caps an explicit ``n2``
identically in every mode, so both executions decompose each round into
the same (batch, phase) windows and the digest keys align.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ReplayMismatchError

#: backends verify_replay accepts (modeled == sequential values + a model)
REPLAY_MODES = ("sequential", "threaded", "simulated", "modeled")


def value_digest(value: Any) -> int:
    """CRC digest of a phase contribution / round accumulator.

    Accumulators are GF(2^l) scalars (Python ints) or weight-axis numpy
    vectors; both digest by content, so equal values always collide and
    any single-bit difference (whp) does not.
    """
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return zlib.crc32(arr.tobytes(), zlib.crc32(str(arr.dtype).encode()))
    return zlib.crc32(int(value).to_bytes(16, "little", signed=True))


class DigestLog:
    """Per-phase and per-round digests of one engine execution."""

    def __init__(self) -> None:
        # (label, round, batch, phase) -> digest of the phase contribution
        self.phases: Dict[Tuple[str, int, int, int], int] = {}
        # (label, round) -> digest of the round accumulator
        self.rounds: Dict[Tuple[str, int], int] = {}

    def record_phase(self, label: str, round_index: int, batch: int,
                     phase: int, digest: int) -> None:
        self.phases[(label, round_index, batch, phase)] = digest

    def record_round(self, label: str, round_index: int, digest: int) -> None:
        self.rounds[(label, round_index)] = digest

    def __len__(self) -> int:
        return len(self.phases) + len(self.rounds)


@dataclass(frozen=True)
class ReplayDivergence:
    """The first coordinate where two digest logs disagree.

    ``what`` is ``"phase"`` (a single phase window's contribution
    differs, or exists in only one run) or ``"round"`` (a round
    accumulator differs — possible with matching phase digests only if
    accumulation itself is broken, e.g. a non-commutative combine).
    """

    what: str
    label: str
    round_index: int
    batch: Optional[int]
    primary: Optional[int]
    reference: Optional[int]
    phase: Optional[int] = None

    def message(self) -> str:
        where = f"round {self.round_index}"
        if self.what == "phase":
            where += f", batch {self.batch}, phase {self.phase}"
        if self.label:
            where = f"stage {self.label!r}, " + where
        def fmt(d):
            return "missing" if d is None else f"{d:#010x}"
        return (f"replay diverged at {where} ({self.what} digest): "
                f"primary {fmt(self.primary)} != reference {fmt(self.reference)}")


@dataclass
class ReplayReport:
    """Outcome of :func:`verify_replay`."""

    primary_mode: str
    reference_mode: str
    phases_checked: int
    rounds_checked: int
    divergence: Optional[ReplayDivergence] = None
    primary_result: Any = None
    reference_result: Any = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def text(self) -> str:
        head = (f"replay {self.primary_mode} vs {self.reference_mode}: "
                f"{self.phases_checked} phase / {self.rounds_checked} round "
                f"digests compared")
        if self.ok:
            return head + " — identical"
        return head + "\n  " + self.divergence.message()

    def raise_if_divergent(self) -> None:
        d = self.divergence
        if d is not None:
            raise ReplayMismatchError(
                d.message(), round_index=d.round_index, batch=d.batch,
                phase=d.phase,
            )


def diff_digest_logs(primary: DigestLog,
                     reference: DigestLog) -> Optional[ReplayDivergence]:
    """First divergent coordinate between two logs, or ``None``.

    Phase digests are compared first, in (label, round, batch, phase)
    order, so a single corrupted phase is pinpointed rather than blamed
    on the round accumulator it poisons.  A key present in only one log
    (early exit at different rounds, mismatched schedules) counts as a
    divergence at that key.
    """
    for key in sorted(set(primary.phases) | set(reference.phases)):
        a = primary.phases.get(key)
        b = reference.phases.get(key)
        if a != b:
            label, ell, batch, phase = key
            return ReplayDivergence("phase", label, ell, batch, a, b,
                                    phase=phase)
    for key in sorted(set(primary.rounds) | set(reference.rounds)):
        a = primary.rounds.get(key)
        b = reference.rounds.get(key)
        if a != b:
            label, ell = key
            return ReplayDivergence("round", label, ell, None, a, b)
    return None


def verify_replay(
    driver: Callable,
    graph,
    *args,
    runtime=None,
    reference_mode: str = "sequential",
    seed: int = 20260806,
    strict: bool = True,
    **kwargs,
) -> ReplayReport:
    """Execute ``driver`` twice — primary and reference backend — and diff
    per-phase/per-round digests.

    ``driver`` is any engine driver that accepts ``rng=`` and ``runtime=``
    keywords (:func:`~repro.core.midas.detect_path`, ``detect_tree``,
    ``max_weight_path``, ``detect_scan_cell``, ``scan_grid``); positional
    ``args`` and extra ``kwargs`` are passed through to both runs.  Both
    runs draw from the same integer ``seed``, so their round fingerprints
    are identical and every digest must match.

    The reference run drops the primary's fault plan and recorder (the
    reference is a clean machine) but keeps ``(N, N1)`` and the resolved
    ``n2``, so the schedules align.  Returns a :class:`ReplayReport`;
    with ``strict`` a divergence raises
    :class:`~repro.errors.ReplayMismatchError` locating the first
    divergent (round, batch, phase).
    """
    from repro.core.engine import MidasRuntime
    from repro.errors import ConfigurationError

    if reference_mode not in REPLAY_MODES:
        raise ConfigurationError(
            f"reference_mode must be one of {REPLAY_MODES}, got {reference_mode!r}"
        )
    rt = runtime if runtime is not None else MidasRuntime()
    # pin the schedule: an explicit n2 resolves identically in every mode
    n2 = rt.n2 if rt.n2 is not None else 64
    pri_log, ref_log = DigestLog(), DigestLog()
    pri_rt = dataclasses.replace(rt, n2=n2, digest_log=pri_log, recorder=None)
    ref_rt = dataclasses.replace(
        rt, mode=reference_mode, n2=n2, digest_log=ref_log,
        recorder=None, fault_plan=None,
    )
    primary_result = driver(graph, *args, rng=seed, runtime=pri_rt, **kwargs)
    reference_result = driver(graph, *args, rng=seed, runtime=ref_rt, **kwargs)
    report = ReplayReport(
        primary_mode=rt.mode,
        reference_mode=reference_mode,
        phases_checked=len(set(pri_log.phases) | set(ref_log.phases)),
        rounds_checked=len(set(pri_log.rounds) | set(ref_log.rounds)),
        divergence=diff_digest_logs(pri_log, ref_log),
        primary_result=primary_result,
        reference_result=reference_result,
    )
    if strict:
        report.raise_if_divergent()
    return report


__all__ = [
    "DigestLog",
    "ReplayDivergence",
    "ReplayReport",
    "REPLAY_MODES",
    "diff_digest_logs",
    "value_digest",
    "verify_replay",
]
