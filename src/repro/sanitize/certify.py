"""Independent certification of engine outputs.

MIDAS is one-sided Monte Carlo: a *positive* answer is supposed to be a
certificate, so it had better be independently checkable — against the
:class:`~repro.graph.csr.CSRGraph` itself, not against the detector that
produced it.  This module re-validates every kind of output the drivers
return:

* **k-path / k-tree witnesses** (vertex sets from
  :func:`~repro.core.witness.extract_witness`): vertices in range and
  distinct, exactly ``k`` of them, and the *induced* subgraph actually
  contains the claimed structure (a Hamiltonian ordering for paths, an
  injective embedding for trees, found by exhaustive search — witnesses
  are small, that is the point of them);
* **scan-stat clusters** (:func:`~repro.scanstat.detect.extract_cluster`):
  exact size, exact total weight, connectivity by BFS over the graph;
* **reported max-weight values** and **scan-grid cells**: one-sided
  soundness against :mod:`repro.exact` on small instances — a reported
  weight above the exact maximum, or a detected cell outside the exact
  feasible set, is a hard error (a *lower* reported value is a
  permissible Monte Carlo miss, never an error);
* **negative answers**: spot-checked against the exact oracles; a
  contradiction is reported as a (statistically permitted) miss, not a
  certification failure, unless the caller opts into treating it as one.

Failures raise :class:`~repro.errors.CertificationError` naming the
exact offending element (the duplicated vertex, the missing edge, the
disconnected component), or accumulate into a :class:`CertificationReport`
in warn mode.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import exact
from repro.errors import CertificationError, ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.templates import TreeTemplate

#: exhaustive checks refuse witnesses larger than this (they are k-sized)
_MAX_WITNESS = 16


def _as_vertices(graph: CSRGraph, vertices: Iterable[int],
                 what: str) -> List[int]:
    """Range/distinctness checks shared by every witness kind."""
    vs = [int(v) for v in vertices]
    for v in vs:
        if not (0 <= v < graph.n):
            raise CertificationError(
                f"{what}: vertex {v} is out of range [0, {graph.n})"
            )
    seen = set()
    for v in vs:
        if v in seen:
            raise CertificationError(f"{what}: vertex {v} appears more than once")
        seen.add(v)
    return vs


def _induced_adjacency(graph: CSRGraph, vs: Sequence[int]) -> List[set]:
    index = {v: i for i, v in enumerate(vs)}
    adj: List[set] = [set() for _ in vs]
    for i, v in enumerate(vs):
        for u in graph.neighbors(v):
            j = index.get(int(u))
            if j is not None and j != i:
                adj[i].add(j)
    return adj


def _connected_components(adj: Sequence[set]) -> List[List[int]]:
    seen = [False] * len(adj)
    comps = []
    for s in range(len(adj)):
        if seen[s]:
            continue
        comp, stack = [], [s]
        seen[s] = True
        while stack:
            i = stack.pop()
            comp.append(i)
            for j in adj[i]:
                if not seen[j]:
                    seen[j] = True
                    stack.append(j)
        comps.append(comp)
    return comps


def certify_path_witness(graph: CSRGraph, vertices: Iterable[int],
                         k: int) -> List[int]:
    """Certify a k-path witness *vertex set*; returns a valid ordering.

    The witness extractor returns the vertices, not their order, so
    certification searches the induced subgraph for a Hamiltonian path
    ordering (DFS over at most ``k! / 2`` prefixes, fine for witness-sized
    ``k``).  Diagnostics distinguish the failure modes: wrong size,
    duplicate/out-of-range vertices, an isolated vertex, a disconnected
    witness, or simply no consistent ordering.
    """
    vs = _as_vertices(graph, vertices, "k-path witness")
    if len(vs) != k:
        raise CertificationError(
            f"k-path witness: expected {k} vertices, got {len(vs)}"
        )
    if k > _MAX_WITNESS:
        raise ConfigurationError(
            f"witness certification is exhaustive; k={k} exceeds {_MAX_WITNESS}"
        )
    if k == 1:
        return vs
    adj = _induced_adjacency(graph, vs)
    for i, nbrs in enumerate(adj):
        if not nbrs:
            raise CertificationError(
                f"k-path witness: vertex {vs[i]} is isolated within the witness"
            )
    comps = _connected_components(adj)
    if len(comps) > 1:
        parts = " | ".join(
            "{" + ", ".join(str(vs[i]) for i in sorted(c)) + "}" for c in comps
        )
        raise CertificationError(
            f"k-path witness: induced subgraph is disconnected: {parts}"
        )

    order = _hamiltonian_path(adj)
    if order is None:
        raise CertificationError(
            "k-path witness: induced subgraph is connected but admits no "
            f"simple path through all of {sorted(vs)}"
        )
    return [vs[i] for i in order]


def _hamiltonian_path(adj: Sequence[set]) -> Optional[List[int]]:
    n = len(adj)

    def extend(path: List[int], used: int) -> Optional[List[int]]:
        if len(path) == n:
            return path
        for j in sorted(adj[path[-1]]):
            if not (used >> j) & 1:
                out = extend(path + [j], used | (1 << j))
                if out is not None:
                    return out
        return None

    for s in range(n):
        out = extend([s], 1 << s)
        if out is not None:
            return out
    return None


def certify_ordered_path(graph: CSRGraph, path: Sequence[int]) -> None:
    """Certify an explicitly ordered path: every consecutive edge exists."""
    vs = _as_vertices(graph, path, "ordered path")
    for u, v in zip(vs, vs[1:]):
        if not graph.has_edge(u, v):
            raise CertificationError(
                f"ordered path: ({u}, {v}) is not an edge of {graph.name!r}"
            )


def certify_tree_witness(graph: CSRGraph, vertices: Iterable[int],
                         template: TreeTemplate) -> None:
    """Certify a tree witness: the induced subgraph embeds ``template``."""
    k = template.k
    vs = _as_vertices(graph, vertices, "k-tree witness")
    if len(vs) != k:
        raise CertificationError(
            f"k-tree witness: expected {k} vertices, got {len(vs)}"
        )
    if k > _MAX_WITNESS:
        raise ConfigurationError(
            f"witness certification is exhaustive; k={k} exceeds {_MAX_WITNESS}"
        )
    sub, _ = graph.subgraph(np.array(sorted(vs), dtype=np.int64))
    if not exact.has_tree(sub, template):
        raise CertificationError(
            f"k-tree witness: template {template.name!r} has no embedding "
            f"into the subgraph induced by {sorted(vs)}"
        )


def certify_cluster(graph: CSRGraph, weights: np.ndarray,
                    vertices: Iterable[int], size: int, weight: int) -> None:
    """Certify a scan-stat cluster: size, total weight, connectivity."""
    w = np.asarray(weights, dtype=np.int64)
    vs = _as_vertices(graph, vertices, "cluster")
    if len(vs) != size:
        raise CertificationError(
            f"cluster: expected {size} vertices, got {len(vs)}"
        )
    total = int(w[np.array(vs, dtype=np.int64)].sum())
    if total != weight:
        raise CertificationError(
            f"cluster: recomputed weight {total} != reported weight {weight} "
            f"over vertices {sorted(vs)}"
        )
    if size > 1:
        adj = _induced_adjacency(graph, vs)
        comps = _connected_components(adj)
        if len(comps) > 1:
            parts = " | ".join(
                "{" + ", ".join(str(vs[i]) for i in sorted(c)) + "}"
                for c in comps
            )
            raise CertificationError(f"cluster: not connected: {parts}")


def certify_scan_score(statistic, score: float, weight: int,
                       size: int, tol: float = 1e-9) -> None:
    """Recompute a scan-statistic score from its raw (weight, size) cell."""
    expected = float(statistic.score(weight, size))
    if abs(expected - float(score)) > tol:
        raise CertificationError(
            f"scan score: {statistic.name} recomputed to {expected!r} at "
            f"(size={size}, weight={weight}), reported {float(score)!r}"
        )


def certify_max_weight(graph: CSRGraph, weights: np.ndarray, k: int,
                       reported: Optional[int]) -> None:
    """One-sided soundness of a reported max path weight (small graphs).

    The reported value must be achievable, so it can never *exceed* the
    exact maximum; falling short is a permissible Monte Carlo miss.
    """
    true_max = exact.max_weight_path(graph, k, weights)
    if reported is None:
        return
    if true_max is None:
        raise CertificationError(
            f"max-weight: reported weight {reported} but no simple "
            f"{k}-path exists at all"
        )
    if reported > true_max:
        raise CertificationError(
            f"max-weight: reported weight {reported} exceeds the exact "
            f"maximum {true_max} — the certificate is unsound"
        )


def certify_scan_grid(graph: CSRGraph, weights: np.ndarray, grid) -> int:
    """One-sided soundness of a scan grid (small graphs): every detected
    cell must be exactly realizable.  Returns the number of cells checked.
    """
    feasible = exact.scan_cells(graph, weights, grid.k)
    checked = 0
    det = np.asarray(grid.detected)
    for j in range(det.shape[0]):
        for z in range(det.shape[1]):
            if det[j, z]:
                checked += 1
                if (j, z) not in feasible:
                    raise CertificationError(
                        f"scan grid: detected cell (size={j}, weight={z}) is "
                        "not realizable by any connected subgraph"
                    )
    return checked


class CertificationReport:
    """Accumulated certification outcomes (warn mode / CLI `verify`)."""

    def __init__(self) -> None:
        self.passed: List[str] = []
        self.failures: List[str] = []
        self.misses: List[str] = []  # negatives contradicted by exact (allowed)

    @property
    def clean(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "passed": list(self.passed),
            "failures": list(self.failures),
            "permitted_misses": list(self.misses),
            "clean": self.clean,
        }

    def text(self) -> str:
        lines = [f"certifier: {len(self.passed)} check(s) passed, "
                 f"{len(self.failures)} failure(s), "
                 f"{len(self.misses)} permitted miss(es)"]
        lines += [f"  PASS {p}" for p in self.passed]
        lines += [f"  MISS {m}" for m in self.misses]
        lines += [f"  FAIL {f}" for f in self.failures]
        return "\n".join(lines)


class ResultCertifier:
    """Stateful wrapper over the ``certify_*`` functions.

    ``strict`` re-raises the first :class:`CertificationError`; warn mode
    collects failures into :attr:`report` and keeps going, so a CLI
    `verify` pass can show everything wrong at once.
    """

    def __init__(self, graph: CSRGraph, mode: str = "strict",
                 report: Optional[CertificationReport] = None) -> None:
        if mode not in ("warn", "strict"):
            raise ConfigurationError(
                f"certifier mode must be 'warn' or 'strict', got {mode!r}"
            )
        self.graph = graph
        self.mode = mode
        self.report = report if report is not None else CertificationReport()

    def _run(self, label: str, fn, *args, **kwargs):
        try:
            out = fn(self.graph, *args, **kwargs)
        except CertificationError as exc:
            self.report.failures.append(f"{label}: {exc}")
            if self.mode == "strict":
                raise
            return None
        self.report.passed.append(label)
        return out

    def path_witness(self, vertices, k: int):
        return self._run(f"path-witness(k={k})", certify_path_witness,
                         vertices, k)

    def ordered_path(self, path):
        return self._run(f"ordered-path(len={len(list(path))})",
                         certify_ordered_path, list(path))

    def tree_witness(self, vertices, template: TreeTemplate):
        return self._run(f"tree-witness({template.name})",
                         certify_tree_witness, vertices, template)

    def cluster(self, weights, vertices, size: int, weight: int):
        return self._run(f"cluster(size={size}, weight={weight})",
                         certify_cluster, weights, vertices, size, weight)

    def max_weight(self, weights, k: int, reported):
        return self._run(f"max-weight(k={k})", certify_max_weight,
                         weights, k, reported)

    def scan_grid(self, weights, grid):
        return self._run(f"scan-grid(k={grid.k})", certify_scan_grid,
                         weights, grid)

    def negative_path(self, k: int) -> bool:
        """Spot-check a negative k-path answer against the exact oracle.

        Returns True when exact agrees nothing is there.  A contradiction
        is recorded as a permitted one-sided miss, never a failure.
        """
        present = exact.has_path(self.graph, k)
        if present:
            self.report.misses.append(
                f"negative-path(k={k}): exact oracle finds a {k}-path "
                "(one-sided miss, within the eps budget)"
            )
            return False
        self.report.passed.append(f"negative-path(k={k})")
        return True


__all__ = [
    "CertificationReport",
    "ResultCertifier",
    "certify_cluster",
    "certify_max_weight",
    "certify_ordered_path",
    "certify_path_witness",
    "certify_scan_grid",
    "certify_scan_score",
    "certify_tree_witness",
]
