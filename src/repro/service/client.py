"""One query surface, two transports.

:class:`LocalClient` embeds a :class:`~repro.service.server.DetectionService`
in-process (no sockets, no serialization of the graph) — the CLI's
default path, so ``repro detect-path`` without ``--server`` goes through
exactly the same admission pipeline the HTTP server uses.

:class:`HttpClient` talks to a remote ``repro serve`` endpoint with
stdlib :mod:`urllib` — no third-party HTTP dependency.  Error mapping
mirrors the server's status codes back into the typed exceptions
(429 -> :class:`~repro.errors.QuotaExceededError`, 404 ->
:class:`~repro.errors.UnknownGraphError`, 400 ->
:class:`~repro.errors.ConfigurationError`), so caller code is transport
agnostic.

Both return :class:`~repro.service.broker.QueryOutcome`; only the local
transport carries the raw result object (for rich CLI rendering — the
deterministic payload is identical either way, property-tested).
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    ServiceError,
    UnknownGraphError,
)
from repro.graph.csr import CSRGraph
from repro.obs.qtrace import TraceContext
from repro.service.broker import QueryOutcome, QuerySpec
from repro.service.server import DetectionService


def _client_span(ctx: TraceContext, t0: float, t1: float,
                 **tags) -> dict:
    """The serialized client-side span for one request, exported to the
    server after the reply (client and server share the perf_counter
    timebase on one machine, so the stamps splice directly)."""
    return {
        "span_id": ctx.span_id, "parent_id": None,
        "name": "client.request", "t_start": t0, "t_end": t1,
        "pid": os.getpid(), "lane": "client", "trace_id": "",
        "tags": dict(tags),
    }


class LocalClient:
    """In-process client; owns its service unless one is passed in."""

    def __init__(self, service: Optional[DetectionService] = None,
                 **service_kwargs) -> None:
        self._owned = service is None
        self.service = service if service is not None else DetectionService(
            **service_kwargs
        )

    def register_graph(self, graph: CSRGraph,
                       name: Optional[str] = None) -> str:
        return self.service.register_graph(graph, name=name).sha

    def query(self, query, tenant: str = "default", runtime=None,
              timeout: Optional[float] = None) -> QueryOutcome:
        """Submit one query; when the service traces, a per-request
        client context is minted here and the measured client span is
        spliced into the stored trace after the reply."""
        if self.service.tracer is None:
            return self.service.query(query, tenant=tenant, runtime=runtime,
                                      timeout=timeout)
        ctx = TraceContext.mint()
        t0 = time.perf_counter()
        outcome = self.service.query(
            query, tenant=tenant, runtime=runtime, timeout=timeout,
            trace={"traceparent": ctx.to_traceparent()},
        )
        t1 = time.perf_counter()
        trace_id = outcome.trace_id
        if trace_id:
            self.service.ingest_spans(
                trace_id,
                [_client_span(ctx, t0, t1, transport="local", tenant=tenant)],
            )
        return outcome

    def trace(self, trace_id: str) -> Optional[dict]:
        """A finished query's trace document (None when unknown)."""
        return self.service.get_trace(trace_id)

    def close(self) -> None:
        if self._owned:
            self.service.close()

    def __enter__(self) -> "LocalClient":
        self.service.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _graph_edges(graph: CSRGraph):
    """The unique (u < v) edge pairs of a CSR graph, for upload."""
    edges = []
    indptr, indices = graph.indptr, graph.indices
    for u in range(graph.n):
        for v in indices[indptr[u]:indptr[u + 1]]:
            if u < v:
                edges.append([int(u), int(v)])
    return edges


class HttpClient:
    """Remote client for a ``repro serve`` endpoint (see module docs)."""

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"server URL must start with http:// or https://, got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing
    def _post(self, path: str, payload: dict) -> dict:
        req = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.load(resp)
        except urllib.error.HTTPError as exc:
            self._raise_mapped(exc)
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc}") from exc

    def _get(self, path: str):
        try:
            with urllib.request.urlopen(self.base_url + path,
                                        timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            self._raise_mapped(exc)
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc}") from exc

    @staticmethod
    def _raise_mapped(exc: "urllib.error.HTTPError"):
        try:
            detail = json.loads(exc.read().decode() or "{}")
        except ValueError:
            detail = {}
        msg = detail.get("error") or str(exc)
        if exc.code == 429:
            err = QuotaExceededError("?", 0)
            err.args = (msg,)
            raise err from exc
        if exc.code == 404:
            raise UnknownGraphError(msg) from exc
        if exc.code == 400:
            raise ConfigurationError(msg) from exc
        raise ServiceError(f"server error {exc.code}: {msg}") from exc

    # ------------------------------------------------------------------ api
    def register_graph(self, graph: CSRGraph,
                       name: Optional[str] = None) -> str:
        """Upload ``graph`` by edge list; returns its content sha (the
        server recomputes it from the same CSR canonical form, so local
        and remote shas agree)."""
        reply = self._post("/api/graphs", {
            "name": name or graph.name or None,
            "n": graph.n,
            "edges": _graph_edges(graph),
        })
        return reply["sha"]

    def register_er(self, n: int, m: Optional[int] = None, seed: int = 0,
                    name: Optional[str] = None) -> str:
        """Ask the server to generate-and-register an ER graph (avoids
        shipping big edge lists for benchmark fixtures)."""
        er = {"n": int(n), "seed": int(seed)}
        if m is not None:
            er["m"] = int(m)
        return self._post("/api/graphs", {"name": name, "er": er})["sha"]

    def query(self, query, tenant: str = "default", runtime=None,
              timeout: Optional[float] = None) -> QueryOutcome:
        """Submit one query; ``runtime`` must be None (the server owns
        execution configuration) and ``timeout`` overrides the client
        default for this call."""
        if runtime is not None:
            raise ConfigurationError(
                "HttpClient cannot carry a runtime override; execution "
                "configuration lives server-side (repro serve flags)"
            )
        spec = query if isinstance(query, QuerySpec) else QuerySpec.from_dict(query)
        ctx = TraceContext.mint()
        saved = self.timeout
        if timeout is not None:
            self.timeout = timeout
        t0 = time.perf_counter()
        try:
            payload = self._post("/api/query", {
                "tenant": tenant,
                "query": spec.to_dict(),
                "trace": {"traceparent": ctx.to_traceparent()},
            })
        finally:
            self.timeout = saved
        t1 = time.perf_counter()
        outcome = QueryOutcome(payload)
        trace_id = outcome.trace_id
        if trace_id:
            try:
                # export the measured client span so `repro trace` shows
                # the full client->broker->engine->worker timeline; a
                # failed export must never fail the query itself
                self._post("/api/trace", {
                    "trace_id": trace_id,
                    "spans": [_client_span(ctx, t0, t1, transport="http",
                                           tenant=tenant)],
                })
            except (ServiceError, ConfigurationError,
                    UnknownGraphError, QuotaExceededError):
                pass
        return outcome

    def trace(self, trace_id: str) -> Optional[dict]:
        """Fetch one query's trace document from ``/api/trace/<id>``;
        None when the server doesn't know the id (evicted/disabled)."""
        try:
            reply = json.loads(self._get(f"/api/trace/{trace_id}").decode())
        except (UnknownGraphError, ServiceError):
            return None
        return reply.get("trace")

    def status(self) -> dict:
        return json.loads(self._get("/status").decode())

    def metrics_text(self) -> str:
        return self._get("/metrics").decode()

    def service_info(self) -> dict:
        return json.loads(self._get("/api/service").decode())

    def close(self) -> None:  # symmetry with LocalClient
        pass

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc) -> None:
        pass


__all__ = ["HttpClient", "LocalClient"]
