"""Query admission, coalescing, quotas, and the result cache.

The broker is the service's concurrency heart.  Its ``submit`` coroutine
runs **on the service event loop** (single-threaded state machine — no
locks needed for broker state) and hands the actual detection work to a
thread pool, so the loop stays responsive while 2^k iterations grind.

Admission pipeline, in order:

1. **cache** — results are keyed by ``(graph sha, canonical query, seed
   policy)``.  Detection output is backend-independent and bit-identical
   for a pinned seed policy, so a cached payload is exactly what a fresh
   execution would return; cache hits cost no quota.
2. **coalescing** — an identical query already in flight (same cache
   key) is joined, not re-run: the later caller awaits the same future
   and receives the identical payload.  Coalesced joins cost no quota
   either — the work was already admitted.
3. **quota** — each tenant may hold at most ``quota`` in-flight
   executions; the next one is rejected *immediately* with
   :class:`~repro.errors.QuotaExceededError` (backpressure by refusal,
   not by unbounded queueing).

Completed executions land in a drain queue; the coordinator's periodic
:meth:`QueryBroker.sweep` turns them into ``midas_service_*`` metrics
and :class:`~repro.obs.store.RunRecord` appends.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import MidasRuntime
from repro.errors import ConfigurationError, QuotaExceededError
from repro.obs.metrics import MetricsRegistry
from repro.service.registry import GraphEntry, GraphRegistry
from repro.util.log import get_logger
from repro.util.rng import RngStream

_LOG = get_logger(__name__)

class ExecutionInterrupted(Exception):
    """Carrier for a ``KeyboardInterrupt``/``SystemExit`` raised inside a
    query execution.  asyncio's ``Task.__step`` re-raises those two
    *through* ``run_forever``, which would kill the service loop thread
    while the submitting thread still waits on its cross-thread future
    (a permanent hang — the state-transfer callback never runs).
    Wrapping them in a plain ``Exception`` keeps the loop alive;
    :meth:`~repro.service.server.DetectionService.query` unwraps and
    re-raises the original in the calling thread.
    """

    def __init__(self, original: BaseException) -> None:
        super().__init__(f"query interrupted by {type(original).__name__}")
        self.original = original


KINDS = ("detect-path", "detect-tree", "scan")
TEMPLATES = ("path", "star", "binary", "caterpillar")
STATISTICS = ("berk-jones", "higher-criticism", "elevated-mean")


def _normalize_seed_policy(seed: Any) -> Dict[str, Any]:
    """Canonical seed-policy dict from an int, ``{"seed": n}``, or a full
    :meth:`~repro.util.rng.RngStream.state` lineage dict."""
    if seed is None:
        return {"seed": 0}
    if isinstance(seed, (int, np.integer)):
        return {"seed": int(seed)}
    if isinstance(seed, dict):
        if "entropy" in seed:
            try:
                ent = seed["entropy"]
                return {
                    "entropy": [int(x) for x in ent]
                    if isinstance(ent, (list, tuple)) else int(ent),
                    "spawn_key": [int(x) for x in seed.get("spawn_key", [])],
                    "n_children_spawned": int(seed.get("n_children_spawned", 0)),
                }
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(f"malformed seed state: {exc}") from exc
        if "seed" in seed:
            try:
                return {"seed": int(seed["seed"])}
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(f"malformed seed: {exc}") from exc
    raise ConfigurationError(
        f"seed policy must be an int, {{'seed': n}}, or an RngStream state "
        f"dict, got {seed!r}"
    )


@dataclass(frozen=True)
class QuerySpec:
    """One detection query, normalized and hashable-by-content.

    ``graph`` is a registry reference (name, sha, or sha prefix);
    ``seed`` is the canonical seed policy (see
    :func:`_normalize_seed_policy`) — pinning it makes the query
    deterministic and therefore cacheable/coalescable.
    """

    kind: str
    graph: str
    k: int
    eps: float = 0.1
    seed: Dict[str, Any] = field(default_factory=lambda: {"seed": 0})
    template: str = "binary"
    statistic: str = "berk-jones"
    alpha: float = 0.05
    extract: bool = False
    weights: Optional[Tuple[int, ...]] = None
    early_exit: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"query kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.graph, str) or not self.graph:
            raise ConfigurationError("query must name a registered graph")
        if not (1 <= int(self.k) <= 64):
            raise ConfigurationError(f"k must be in [1, 64], got {self.k}")
        if not (0.0 < float(self.eps) < 1.0):
            raise ConfigurationError(f"eps must be in (0, 1), got {self.eps}")
        if self.kind == "detect-tree" and self.template not in TEMPLATES:
            raise ConfigurationError(
                f"template must be one of {TEMPLATES}, got {self.template!r}"
            )
        if self.kind == "scan" and self.statistic not in STATISTICS:
            raise ConfigurationError(
                f"statistic must be one of {STATISTICS}, got {self.statistic!r}"
            )

    @classmethod
    def from_dict(cls, d: Any) -> "QuerySpec":
        """Validated spec from a request payload (HTTP body or CLI)."""
        if not isinstance(d, dict):
            raise ConfigurationError(f"query must be a JSON object, got {type(d).__name__}")
        known = {"kind", "graph", "k", "eps", "seed", "template", "statistic",
                 "alpha", "extract", "weights", "early_exit"}
        extra = set(d) - known
        if extra:
            raise ConfigurationError(f"unknown query field(s): {sorted(extra)}")
        missing = {"kind", "graph", "k"} - set(d)
        if missing:
            raise ConfigurationError(f"query missing field(s): {sorted(missing)}")
        weights = d.get("weights")
        if weights is not None:
            try:
                weights = tuple(int(x) for x in weights)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"weights must be a list of ints: {exc}"
                ) from exc
            if any(w < 0 for w in weights):
                raise ConfigurationError("weights must be non-negative")
        try:
            return cls(
                kind=str(d["kind"]),
                graph=str(d["graph"]),
                k=int(d["k"]),
                eps=float(d.get("eps", 0.1)),
                seed=_normalize_seed_policy(d.get("seed")),
                template=str(d.get("template", "binary")),
                statistic=str(d.get("statistic", "berk-jones")),
                alpha=float(d.get("alpha", 0.05)),
                extract=bool(d.get("extract", False)),
                weights=weights,
                early_exit=bool(d.get("early_exit", True)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed query: {exc}") from exc

    def to_dict(self) -> dict:
        """JSON round-trippable form (``from_dict(to_dict(s)) == s``)."""
        d = {
            "kind": self.kind, "graph": self.graph, "k": self.k,
            "eps": self.eps, "seed": dict(self.seed),
            "early_exit": self.early_exit,
        }
        if self.kind == "detect-tree":
            d["template"] = self.template
        if self.kind == "scan":
            d.update(statistic=self.statistic, alpha=self.alpha,
                     extract=self.extract)
            if self.weights is not None:
                d["weights"] = list(self.weights)
        return d

    def seed_stream(self) -> RngStream:
        """A fresh stream realizing the pinned seed policy — every call
        returns an identical lineage, the root of bit-identity."""
        if "entropy" in self.seed:
            return RngStream.from_state(self.seed, name="query")
        return RngStream(self.seed["seed"], name="query")

    def canonical(self, sha: str) -> dict:
        """The deterministic identity of (query, graph content): every
        field that can change the result, and nothing else."""
        ident = {
            "graph_sha": sha, "kind": self.kind, "k": self.k,
            "eps": self.eps, "seed": dict(self.seed),
            "early_exit": self.early_exit,
        }
        if self.kind == "detect-tree":
            ident["template"] = self.template
        if self.kind == "scan":
            ident.update(statistic=self.statistic, alpha=self.alpha,
                         extract=self.extract)
            w = b"" if self.weights is None else np.asarray(
                self.weights, dtype=np.int64).tobytes()
            ident["weights_sha"] = hashlib.sha256(w).hexdigest()
        return ident

    def cache_key(self, sha: str) -> str:
        blob = json.dumps(self.canonical(sha), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------- execution

_SAFE_DETAIL_KEYS = ("reason", "template", "statistic", "n_subtrees",
                     "degraded", "resumed_from", "resilience", "sanitizer")


def _json_safe(obj):
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _safe_details(details: dict) -> dict:
    return {k: _json_safe(details[k]) for k in _SAFE_DETAIL_KEYS
            if k in details}


def _detection_result(res) -> dict:
    """The deterministic slice of a DetectionResult (no wall times, no
    mode — the payload must compare equal across backends)."""
    return {
        "problem": res.problem,
        "k": res.k,
        "found": bool(res.found),
        "eps": res.eps,
        "rounds_run": res.rounds_run,
        "first_hit_round": res.first_hit_round,
        "round_values": [int(r.value) for r in res.rounds],
        "details": _safe_details(res.details),
    }


def _scan_result(res, spec: QuerySpec) -> dict:
    grid = res.grid
    return {
        "problem": "scanstat",
        "k": grid.k,
        "eps": grid.eps,
        "statistic": spec.statistic,
        "best_score": float(res.best_score),
        "best_size": res.best_size,
        "best_weight": res.best_weight,
        "z_max": grid.z_max,
        "rounds_run": grid.rounds_run,
        "detected_cells": [[int(j), int(z)] for j, z in grid.feasible_cells()],
        "cluster": (sorted(int(x) for x in res.cluster)
                    if res.cluster is not None else None),
        "details": _safe_details(grid.details),
    }


def canonical_result(payload: dict) -> dict:
    """The bit-identity slice of a query payload: what must compare equal
    between service, cache, coalesced, and standalone executions."""
    return payload.get("result") or {}


def execute_query(spec: QuerySpec, entry: GraphEntry,
                  rt: MidasRuntime) -> Tuple[dict, object]:
    """Run ``spec`` against ``entry.graph`` on ``rt`` (worker thread).

    Returns ``(payload, raw_result)`` — the payload's ``"result"`` holds
    only deterministic fields; wall time and backend identity live in
    separate keys so cached/coalesced replies stay bit-comparable.

    Tracing is decorated around this function by the broker
    (:meth:`QueryBroker._traced_execute`), so replacing it — the tests
    monkeypatch slow/failing executors here — keeps the traced pipeline
    intact.
    """
    from repro.core.midas import detect_path, detect_tree
    from repro.graph.templates import TreeTemplate
    from repro.scanstat.detect import AnomalyDetector
    from repro.scanstat.statistics import BerkJones, ElevatedMean, HigherCriticism

    graph = entry.graph
    rng = spec.seed_stream()
    t0 = time.perf_counter()
    if spec.kind == "detect-path":
        raw = detect_path(graph, spec.k, eps=spec.eps, rng=rng,
                          runtime=rt, early_exit=spec.early_exit)
        result = _detection_result(raw)
        rounds, virtual = raw.rounds_run, raw.virtual_seconds
    elif spec.kind == "detect-tree":
        factories = {"path": TreeTemplate.path, "star": TreeTemplate.star,
                     "binary": TreeTemplate.binary,
                     "caterpillar": TreeTemplate.caterpillar}
        tmpl = factories[spec.template](spec.k)
        raw = detect_tree(graph, tmpl, eps=spec.eps, rng=rng,
                          runtime=rt, early_exit=spec.early_exit)
        result = _detection_result(raw)
        result["template"] = spec.template
        rounds, virtual = raw.rounds_run, raw.virtual_seconds
    else:  # scan
        stats = {
            "berk-jones": lambda: BerkJones(alpha=spec.alpha),
            "higher-criticism": lambda: HigherCriticism(alpha=spec.alpha),
            "elevated-mean": lambda: ElevatedMean(baseline_per_node=spec.alpha),
        }
        if spec.weights is None:
            w = np.zeros(graph.n, dtype=np.int64)
        else:
            w = np.asarray(spec.weights, dtype=np.int64)
            if w.shape != (graph.n,):
                raise ConfigurationError(
                    f"weights must have length n={graph.n}, got {len(w)}"
                )
        det = AnomalyDetector(graph, stats[spec.statistic](), k=spec.k,
                              runtime=rt, eps=spec.eps)
        raw = det.detect(w, rng=rng, extract=spec.extract)
        result = _scan_result(raw, spec)
        rounds, virtual = raw.grid.rounds_run, raw.grid.virtual_seconds
    payload = {
        "ok": True,
        "kind": spec.kind,
        "graph": entry.sha,
        "result": result,
        "runtime": {"mode": rt.mode, "n_processors": rt.n_processors,
                    "n1": rt.n1},
        "timing": {"wall_seconds": time.perf_counter() - t0,
                   "virtual_seconds": float(virtual), "rounds": int(rounds)},
    }
    return payload, raw


@dataclass
class QueryOutcome:
    """What a client gets back: the JSON-safe payload plus (in-process
    only) the raw result object for rich rendering."""

    payload: dict
    raw: object = None

    @property
    def result(self) -> dict:
        return canonical_result(self.payload)

    @property
    def served(self) -> dict:
        return self.payload.get("served") or {}

    @property
    def cache_hit(self) -> bool:
        return bool(self.served.get("cache_hit"))

    @property
    def coalesced(self) -> bool:
        return bool(self.served.get("coalesced"))

    @property
    def found(self):
        return self.result.get("found")

    @property
    def trace_id(self) -> Optional[str]:
        """This request's trace id (None when the service traces nothing)."""
        return (self.payload.get("trace") or {}).get("trace_id")


class QueryBroker:
    """Loop-confined admission/coalescing/quota/cache state machine.

    All mutation of broker state happens on the owning event loop (the
    :class:`~repro.service.server.DetectionService` coordinator thread);
    detection work itself runs in ``self.pool`` worker threads.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        *,
        metrics: MetricsRegistry,
        quota: int = 8,
        cache_size: int = 256,
        coalesce: bool = True,
        workers: Optional[int] = None,
        store=None,
        runtime_config: Optional[dict] = None,
        tracer=None,
    ) -> None:
        if quota < 1:
            raise ConfigurationError(f"quota must be >= 1, got {quota}")
        if cache_size < 0:
            raise ConfigurationError(f"cache_size must be >= 0, got {cache_size}")
        self.registry = registry
        self.metrics = metrics
        self.quota = quota
        self.cache_size = cache_size
        self.coalesce = coalesce
        self.store = store
        # repro.obs.qtrace.QueryTracer; None disables per-query tracing
        self.tracer = tracer
        self._runtime_config = dict(runtime_config or {})
        self.pool = ThreadPoolExecutor(
            max_workers=workers or 4, thread_name_prefix="midas-query"
        )
        self._cache: "OrderedDict[str, dict]" = OrderedDict()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._tenant_inflight: Dict[str, int] = {}
        self._completed: deque = deque()
        self.stats = {"queries": 0, "cache_hits": 0, "coalesced": 0,
                      "rejected": 0, "errors": 0, "sweeps": 0, "records": 0}
        m = metrics
        self.m_queries = m.counter(
            "midas_service_queries_total",
            "queries by kind/tenant/outcome (ok, cached, coalesced, error)")
        self.m_rejected = m.counter(
            "midas_service_rejected_total", "quota rejections by tenant")
        self.m_cache_hits = m.counter(
            "midas_service_cache_hits_total", "result-cache hits by kind")
        self.m_coalesced = m.counter(
            "midas_service_coalesced_total",
            "queries joined onto an identical in-flight execution")
        self.m_inflight = m.gauge(
            "midas_service_inflight", "executions currently running")
        self.m_latency = m.histogram(
            "midas_service_query_seconds", "execution wall time by kind")
        self.m_rounds = m.counter(
            "midas_service_rounds_total", "detection rounds executed")
        self.m_sweeps = m.counter(
            "midas_service_sweeps_total", "coordinator sweep passes")
        self.m_cache_entries = m.gauge(
            "midas_service_cache_entries", "result-cache population")
        self.m_graphs = m.gauge(
            "midas_service_graphs", "graphs in the registry")
        self.m_sessions = m.gauge(
            "midas_service_sessions", "engine sessions cached across graphs")
        self.m_records = m.counter(
            "midas_service_records_total", "RunRecords appended by the sweep")

    # ----------------------------------------------------------- plumbing
    def make_runtime(self) -> MidasRuntime:
        """A fresh runtime per execution: engines cache mutable run state
        (profiler, live bus, checkpoint manager) on their runtime, so
        concurrent executions must never share one."""
        return MidasRuntime(metrics=self.metrics, **self._runtime_config)

    def _served(self, payload: dict, tenant: str, *, cache_hit: bool,
                coalesced: bool, qt=None) -> dict:
        out = dict(payload)
        out["served"] = {"cache_hit": cache_hit, "coalesced": coalesced,
                         "tenant": tenant}
        if qt is not None:
            # per-request identity: cache hits and coalesced joins share a
            # payload but each carries its own trace
            out["trace"] = {"trace_id": qt.trace_id,
                            "traceparent": qt.ctx.to_traceparent()}
        return out

    def _remember(self, key: str, payload: dict) -> None:
        if self.cache_size == 0:
            return
        if payload.get("result", {}).get("details", {}).get("degraded"):
            return  # a watchdog-degraded partial answer must not be replayed
        self._cache[key] = payload
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        self.m_cache_entries.set(len(self._cache))

    # ----------------------------------------------------------- admission
    def _begin_trace(self, spec: QuerySpec, tenant: str, trace):
        """Start a QueryTrace for this request (None when tracing is off).

        ``trace`` is the client's request-side context: a dict carrying a
        ``traceparent`` header value (malformed values are ignored — the
        query must not fail over its telemetry), a TraceContext, or None.
        """
        if self.tracer is None:
            return None
        from repro.obs.qtrace import TraceContext

        ctx = None
        if isinstance(trace, TraceContext):
            ctx = trace.child()
        elif isinstance(trace, dict):
            tp = trace.get("traceparent")
            if tp:
                try:
                    ctx = TraceContext.from_traceparent(str(tp)).child()
                except ValueError:
                    ctx = None
        if ctx is None:
            ctx = TraceContext.mint()
        return self.tracer.begin(ctx, tenant=tenant)

    def _traced_execute(self, spec: QuerySpec, entry: GraphEntry,
                        rt: MidasRuntime, qt, submit_t: float):
        """Executor-thread wrapper decorating the module-level
        :func:`execute_query` (which tests monkeypatch) with the
        ``broker.queue`` / ``broker.execute`` spans and handing the
        engine its QueryTrace via ``rt.qtrace``."""
        if qt is None:
            return execute_query(spec, entry, rt)
        t0 = time.perf_counter()
        qt.add_span("broker.queue", submit_t, t0, lane="broker")
        exec_span = qt.span("broker.execute", lane="broker",
                            kind=spec.kind, graph=entry.sha[:12], k=spec.k)
        rt.qtrace = qt
        # on exception the execute span is left open on purpose: crash
        # dumps capture it through QueryTrace.open_spans()
        payload, raw = execute_query(spec, entry, rt)
        rounds = payload.get("timing", {}).get("rounds", 0)
        exec_span.tag(rounds=int(rounds)).finish()
        return payload, raw

    async def submit(self, spec: QuerySpec, tenant: str = "default",
                     runtime: Optional[MidasRuntime] = None,
                     trace=None) -> QueryOutcome:
        """Admit and run one query (loop coroutine; see class docs).

        Raises :class:`~repro.errors.UnknownGraphError` for an
        unresolvable graph reference and
        :class:`~repro.errors.QuotaExceededError` when ``tenant`` is at
        its in-flight limit.  ``trace`` carries the client's trace
        context (see :meth:`_begin_trace`); every served payload is
        stamped with its own ``trace`` identity when tracing is on.
        """
        entry = self.registry.resolve(spec.graph)
        key = spec.cache_key(entry.sha)
        qt = self._begin_trace(spec, tenant, trace)
        total_span = (qt.span("broker.total", lane="broker", kind=spec.kind)
                      if qt is not None else None)

        cache_span = (qt.span("broker.cache", lane="broker",
                              parent=total_span.context)
                      if qt is not None else None)
        cached = self._cache.get(key)
        if cache_span is not None:
            cache_span.tag(hit=cached is not None).finish()
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats["cache_hits"] += 1
            self.m_cache_hits.labels(kind=spec.kind).inc()
            self.m_queries.labels(kind=spec.kind, tenant=tenant,
                                  outcome="cached").inc()
            if qt is not None:
                total_span.finish()
                self.tracer.finish(qt, outcome="cache_hit", kind=spec.kind,
                                   service_pid=os.getpid())
            return QueryOutcome(self._served(cached, tenant, cache_hit=True,
                                             coalesced=False, qt=qt))

        if self.coalesce:
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats["coalesced"] += 1
                self.m_coalesced.labels(kind=spec.kind).inc()
                self.m_queries.labels(kind=spec.kind, tenant=tenant,
                                      outcome="coalesced").inc()
                co_span = (qt.span("broker.coalesce", lane="broker",
                                   parent=total_span.context)
                           if qt is not None else None)
                try:
                    payload = await asyncio.shield(existing)
                except BaseException as exc:
                    if qt is not None:
                        co_span.finish(error=True)
                        total_span.finish(error=True)
                        self.tracer.finish(qt, outcome="error",
                                           error=f"coalesced execution "
                                                 f"failed: {exc}")
                    raise
                if qt is not None:
                    co_span.finish()
                    total_span.finish()
                    self.tracer.finish(qt, outcome="coalesced",
                                       kind=spec.kind,
                                       service_pid=os.getpid())
                return QueryOutcome(self._served(payload, tenant,
                                                 cache_hit=False,
                                                 coalesced=True, qt=qt))

        quota_span = (qt.span("broker.quota", lane="broker",
                              parent=total_span.context)
                      if qt is not None else None)
        held = self._tenant_inflight.get(tenant, 0)
        if held >= self.quota:
            self.stats["rejected"] += 1
            self.m_rejected.labels(tenant=tenant).inc()
            if qt is not None:
                quota_span.tag(rejected=True).finish()
                total_span.finish()
                self.tracer.finish(
                    qt, outcome="quota",
                    error=f"tenant {tenant!r} at quota {self.quota}",
                    service_pid=os.getpid(),
                )
            raise QuotaExceededError(tenant, self.quota)
        if quota_span is not None:
            quota_span.finish()
        self._tenant_inflight[tenant] = held + 1
        self.m_inflight.inc()

        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._inflight[key] = fut
        rt = runtime if runtime is not None else self.make_runtime()
        if rt.session is None:
            sess = entry.session_for(rt)
            if sess.compatible(entry.graph, rt) is None:
                rt.session = sess
        t0 = time.perf_counter()
        try:
            payload, raw = await loop.run_in_executor(
                self.pool, self._traced_execute, spec, entry, rt, qt, t0
            )
        except (KeyboardInterrupt, SystemExit) as exc:
            self.stats["errors"] += 1
            self.m_queries.labels(kind=spec.kind, tenant=tenant,
                                  outcome="error").inc()
            carrier = ExecutionInterrupted(exc)
            if not fut.done():
                fut.set_exception(carrier)
                fut.exception()  # mark retrieved: waiters may be zero
            if qt is not None:
                total_span.finish(error=True)
                self.tracer.finish(qt, outcome="interrupted",
                                   error=str(carrier),
                                   service_pid=os.getpid())
            raise carrier from exc
        except Exception as exc:
            self.stats["errors"] += 1
            self.m_queries.labels(kind=spec.kind, tenant=tenant,
                                  outcome="error").inc()
            if not fut.done():
                fut.set_exception(exc)
                fut.exception()  # mark retrieved: waiters may be zero
            if qt is not None:
                total_span.finish(error=True)
                self.tracer.finish(qt, outcome="error",
                                   error=f"{type(exc).__name__}: {exc}",
                                   service_pid=os.getpid())
            raise
        else:
            wall = time.perf_counter() - t0
            if not fut.done():
                fut.set_result(payload)
            self._remember(key, payload)
            self.stats["queries"] += 1
            self.m_queries.labels(kind=spec.kind, tenant=tenant,
                                  outcome="ok").inc()
            self.m_latency.labels(kind=spec.kind).observe(wall)
            if qt is not None:
                total_span.finish()
                self.tracer.finish(qt, outcome="ok", kind=spec.kind,
                                   wall_seconds=wall,
                                   service_pid=os.getpid(),
                                   mode=rt.mode)
            self._completed.append({
                "spec": spec, "entry": entry, "tenant": tenant,
                "wall": wall, "payload": payload, "mode": rt.mode,
                "nranks": rt.n_processors,
                "trace_id": qt.trace_id if qt is not None else None,
            })
            return QueryOutcome(self._served(payload, tenant,
                                             cache_hit=False,
                                             coalesced=False, qt=qt), raw)
        finally:
            self._inflight.pop(key, None)
            left = self._tenant_inflight.get(tenant, 1) - 1
            if left > 0:
                self._tenant_inflight[tenant] = left
            else:
                self._tenant_inflight.pop(tenant, None)
            self.m_inflight.dec()

    # ------------------------------------------------------------ coordinator
    def _record_from(self, item: dict):
        from repro.obs.store import RunRecord, config_fingerprint, current_git_sha

        spec: QuerySpec = item["spec"]
        entry: GraphEntry = item["entry"]
        timing = item["payload"].get("timing", {})
        label = entry.name or entry.sha[:12]
        return RunRecord(
            scenario=f"service:{spec.kind}:{label}:k{spec.k}",
            git_sha=current_git_sha(),
            config_hash=config_fingerprint(spec.canonical(entry.sha)),
            problem=item["payload"].get("result", {}).get("problem", spec.kind),
            mode=item["mode"],
            nranks=item["nranks"],
            values={
                "wall_seconds": float(item["wall"]),
                "virtual_seconds": float(timing.get("virtual_seconds", 0.0)),
                "rounds": float(timing.get("rounds", 0)),
            },
            meta={"tenant": item["tenant"], "graph": entry.sha[:12],
                  "kind": spec.kind, "k": str(spec.k), "service": "1",
                  **({"trace_id": item["trace_id"]}
                     if item.get("trace_id") else {})},
        )

    def sweep(self) -> dict:
        """Drain completed executions into metrics + RunStore appends.

        Called periodically by the service coordinator (and once more at
        shutdown so nothing is lost).  Safe to call with an empty queue.
        """
        drained = rounds = 0
        records = []
        while self._completed:
            item = self._completed.popleft()
            drained += 1
            rounds += int(item["payload"].get("timing", {}).get("rounds", 0))
            if self.store is not None:
                records.append(self._record_from(item))
        if records:
            try:
                appended = self.store.append_many(records)
            except OSError as exc:  # a full disk must not kill the coordinator
                _LOG.error("service sweep: RunStore append failed: %s", exc)
            else:
                self.stats["records"] += appended
                self.m_records.inc(appended)
        if rounds:
            self.m_rounds.inc(rounds)
        self.stats["sweeps"] += 1
        self.m_sweeps.inc()
        self.m_graphs.set(len(self.registry))
        self.m_sessions.set(self.registry.session_count())
        self.m_cache_entries.set(len(self._cache))
        return {"drained": drained, "rounds": rounds,
                "records": len(records)}

    def describe(self) -> dict:
        """JSON-safe broker stats for ``/status`` and ``/api/service``."""
        return {
            "quota": self.quota,
            "cache_size": self.cache_size,
            "cache_entries": len(self._cache),
            "coalesce": self.coalesce,
            "inflight": dict(self._tenant_inflight),
            "pending_sweep": len(self._completed),
            "stats": dict(self.stats),
        }

    def close(self) -> None:
        self.pool.shutdown(wait=True)


__all__ = [
    "ExecutionInterrupted",
    "KINDS",
    "QueryBroker",
    "QueryOutcome",
    "QuerySpec",
    "STATISTICS",
    "TEMPLATES",
    "canonical_result",
    "execute_query",
]
