"""The persistent detection service: event loop, coordinator, HTTP API.

:class:`DetectionService` owns one asyncio event loop on a daemon
thread.  All broker state lives on that loop; callers — in-process
:class:`~repro.service.client.LocalClient` users and the HTTP handler
threads alike — bridge into it with ``run_coroutine_threadsafe``, so
the admission pipeline needs no locks of its own.

A **coordinator** task sweeps the broker every ``sweep_interval``
seconds, draining completed executions into ``midas_service_*`` metrics
and (when a store is configured) RunRecord appends.

:meth:`DetectionService.serve` mounts the API on the same
:class:`~repro.obs.http.LiveServer` stack the live-run telemetry uses,
so one port exposes ``/metrics``, ``/status``, ``/healthz`` **and**:

* ``POST /api/query``  — ``{"tenant": ..., "query": {...}}`` -> payload
  (429 on quota, 404 on unknown graph, 400 on a malformed query);
* ``GET/POST /api/graphs`` — list / register graphs (edge-list upload
  or an ``er:N[:M[:SEED]]`` generator spec);
* ``GET /api/service`` — broker + registry + session introspection.

Shutdown (:meth:`close`) is leak-free by construction: cancel the
coordinator, cancel stragglers, stop the loop, join its thread, drain
the worker pool, stop the HTTP server, then run one final sweep so
every completed query is recorded.  ``tests/test_service.py`` asserts
the thread census is unchanged afterwards.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time
from typing import Dict, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    UnknownGraphError,
)
from repro.graph.csr import CSRGraph
from repro.obs.http import LiveServer, RouteHandler
from repro.obs.metrics import MetricsRegistry
from repro.service.broker import (
    ExecutionInterrupted,
    QueryBroker,
    QueryOutcome,
    QuerySpec,
)
from repro.service.registry import GraphEntry, GraphRegistry
from repro.util.log import get_logger

_LOG = get_logger(__name__)


def _json_reply(code: int, obj: dict) -> Tuple[int, str, bytes]:
    return code, "application/json", json.dumps(obj).encode()


def _error_reply(code: int, exc: Exception) -> Tuple[int, str, bytes]:
    return _json_reply(code, {"ok": False, "error": str(exc),
                              "error_type": type(exc).__name__})


class DetectionService:
    """A long-lived, multi-tenant detection endpoint (see module docs).

    Use as a context manager — or pair :meth:`start` with :meth:`close`
    — and the loop thread, worker pool, and HTTP server are all torn
    down deterministically.
    """

    def __init__(
        self,
        *,
        quota: int = 8,
        cache_size: int = 256,
        coalesce: bool = True,
        workers: Optional[int] = None,
        store_path: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        runtime_config: Optional[dict] = None,
        sweep_interval: float = 0.05,
        host: str = "127.0.0.1",
        tracing: bool = True,
        trace_capacity: int = 512,
    ) -> None:
        if sweep_interval <= 0:
            raise ConfigurationError(
                f"sweep_interval must be > 0, got {sweep_interval}"
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.registry = GraphRegistry()
        store = None
        if store_path:
            from repro.obs.store import RunStore

            store = RunStore(store_path)
        self.tracer = None
        if tracing:
            from repro.obs.qtrace import QueryTracer

            self.tracer = QueryTracer(self.metrics, capacity=trace_capacity)
        self.broker = QueryBroker(
            self.registry, metrics=self.metrics, quota=quota,
            cache_size=cache_size, coalesce=coalesce, workers=workers,
            store=store, runtime_config=runtime_config, tracer=self.tracer,
        )
        self.sweep_interval = float(sweep_interval)
        self.host = host
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._coordinator_fut = None
        self._server: Optional[LiveServer] = None
        self._t0: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "DetectionService":
        """Spin up the event loop thread + coordinator (idempotent)."""
        if self._loop is not None:
            return self
        if self._closed:
            raise ServiceError("service already closed; build a new one")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="midas-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=5.0)
        self._t0 = time.monotonic()
        self._coordinator_fut = asyncio.run_coroutine_threadsafe(
            self._coordinate(), self._loop
        )
        return self

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._ready.set()
        self._loop.run_forever()

    async def _coordinate(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            try:
                self.broker.sweep()
            except Exception:  # pragma: no cover - defensive
                _LOG.exception("service coordinator sweep failed")

    async def _drain(self) -> None:
        """Cancel every loop task but this one and wait them out."""
        me = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not me]
        for t in tasks:
            t.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        """Full teardown; idempotent.  See module docs for the order."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._loop is not None:
            if self._coordinator_fut is not None:
                self._coordinator_fut.cancel()
            loop_alive = (self._thread is not None
                          and self._thread.is_alive()
                          and self._loop.is_running())
            if loop_alive:
                try:
                    asyncio.run_coroutine_threadsafe(
                        self._drain(), self._loop
                    ).result(timeout=10.0)
                except Exception:  # pragma: no cover - best-effort drain
                    _LOG.exception("service drain failed")
                try:
                    self._loop.call_soon_threadsafe(self._loop.stop)
                except RuntimeError:  # loop closed under us
                    pass
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            if not self._loop.is_running():
                self._loop.close()
            self._loop = None
            self._thread = None
            self._coordinator_fut = None
        self.broker.close()
        self.broker.sweep()  # flush the last completed queries to the store

    def __enter__(self) -> "DetectionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ sync API
    def register_graph(self, graph: CSRGraph,
                       name: Optional[str] = None) -> GraphEntry:
        return self.registry.register(graph, name=name)

    def query(self, query, tenant: str = "default", runtime=None,
              timeout: Optional[float] = None, trace=None) -> QueryOutcome:
        """Submit one query and block for its outcome (any thread).

        ``query`` is a :class:`QuerySpec` or a dict for
        :meth:`QuerySpec.from_dict`; ``runtime`` optionally overrides
        the broker's per-execution runtime (the CLI's LocalClient path,
        where ``--mode``/``--n1``/... flags build it); ``trace`` carries
        the caller's trace context (a ``{"traceparent": ...}`` dict).
        """
        spec = query if isinstance(query, QuerySpec) else QuerySpec.from_dict(query)
        self.start()
        fut = asyncio.run_coroutine_threadsafe(
            self.broker.submit(spec, tenant=tenant, runtime=runtime,
                               trace=trace),
            self._loop,
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                # Short poll instead of one long block: if the loop thread
                # ever dies mid-flight, the future would never resolve.
                return fut.result(timeout=0.5)
            except concurrent.futures.TimeoutError:
                if deadline is not None and time.monotonic() >= deadline:
                    fut.cancel()
                    raise ServiceError(
                        f"query timed out after {timeout}s"
                    ) from None
                if self._thread is None or not self._thread.is_alive():
                    raise ServiceError(
                        "service loop died while the query was in flight"
                    ) from None
            except ExecutionInterrupted as exc:
                raise exc.original from None

    def sweep_now(self, timeout: Optional[float] = 5.0) -> dict:
        """Force one coordinator sweep from any thread (tests, shutdown)."""
        self.start()

        async def _one():
            return self.broker.sweep()

        return asyncio.run_coroutine_threadsafe(
            _one(), self._loop
        ).result(timeout=timeout)

    def status_snapshot(self) -> dict:
        """The ``/status`` payload: service-level, not per-run."""
        up = time.monotonic() - self._t0 if self._t0 is not None else 0.0
        snap = {
            "state": "serving" if not self._closed else "closed",
            "service": "midas-detection",
            "uptime_seconds": round(up, 3),
            "graphs": len(self.registry),
            "broker": self.broker.describe(),
        }
        if self.tracer is not None:
            snap["tracing"] = self.tracer.describe()
            snap["tenants"] = self.tracer.tenant_slos()
        return snap

    # ------------------------------------------------------------- tracing
    def get_trace(self, trace_id: str) -> Optional[dict]:
        """A finished query's trace document, or None (tracing off or
        the id unknown/evicted)."""
        if self.tracer is None:
            return None
        return self.tracer.get(trace_id)

    def ingest_spans(self, trace_id: str, spans) -> int:
        """Splice client-side spans into a stored trace (0 when tracing
        is off or the trace is unknown)."""
        if self.tracer is None:
            return 0
        return self.tracer.ingest(trace_id, list(spans or []))

    # ------------------------------------------------------------ HTTP layer
    def serve(self, port: int = 0, host: Optional[str] = None) -> int:
        """Mount the API over HTTP; returns the bound port (0 = ephemeral)."""
        self.start()
        if self._server is None:
            self._server = LiveServer(
                self.status_snapshot, registry=self.metrics,
                host=host or self.host, routes=self.routes(),
            )
            self._server.start(port)
        return self._server.port

    @property
    def url(self) -> Optional[str]:
        return self._server.url if self._server is not None else None

    def routes(self) -> Dict[str, RouteHandler]:
        """The ``/api/*`` route table (mountable on any LiveServer)."""
        return {
            "/api/query": self._route_query,
            "/api/graphs": self._route_graphs,
            "/api/service": self._route_service,
            "/api/trace": self._route_trace,
        }

    def _route_query(self, method, path, query, body):
        if method != "POST":
            return _json_reply(405, {"ok": False, "error": "POST only"})
        try:
            req = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return _error_reply(400, exc)
        if not isinstance(req, dict):
            return _json_reply(400, {"ok": False, "error": "body must be a JSON object"})
        tenant = str(req.get("tenant") or "default")
        trace = req.get("trace")
        if not isinstance(trace, dict):
            trace = None
        try:
            spec = QuerySpec.from_dict(req.get("query", req))
            outcome = self.query(spec, tenant=tenant, trace=trace)
        except QuotaExceededError as exc:
            return _error_reply(429, exc)
        except UnknownGraphError as exc:
            return _error_reply(404, exc)
        except ConfigurationError as exc:
            return _error_reply(400, exc)
        except ReproError as exc:
            return _error_reply(500, exc)
        return _json_reply(200, outcome.payload)

    def _route_graphs(self, method, path, query, body):
        if method == "GET":
            return _json_reply(200, {"ok": True,
                                     "graphs": self.registry.describe()})
        try:
            req = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return _error_reply(400, exc)
        try:
            entry = self._register_from_request(req)
        except (ConfigurationError, ReproError) as exc:
            return _error_reply(400, exc)
        return _json_reply(200, {"ok": True, "sha": entry.sha,
                                 "name": entry.name,
                                 "nodes": entry.graph.n,
                                 "edges": entry.graph.num_edges})

    def _register_from_request(self, req: dict) -> GraphEntry:
        """Build + register a graph from an upload body: either
        ``{"n": ..., "edges": [[u, v], ...]}`` or ``{"er": {"n": ...,
        "seed": ...}}`` (server-side generation for big fixtures)."""
        if not isinstance(req, dict):
            raise ConfigurationError("graph upload must be a JSON object")
        name = req.get("name") or None
        if "edges" in req:
            n = req.get("n")
            if not isinstance(n, int) or n < 0:
                raise ConfigurationError("edge upload needs an int 'n'")
            graph = CSRGraph.from_edges(n, req["edges"] or [],
                                        name=name or "")
        elif "er" in req:
            from repro.graph.generators import erdos_renyi
            from repro.util.rng import RngStream

            er = req["er"] or {}
            n = er.get("n")
            if not isinstance(n, int) or n < 1:
                raise ConfigurationError("er spec needs an int 'n' >= 1")
            m = er.get("m")
            graph = erdos_renyi(
                n, m=int(m) if m is not None else None,
                rng=RngStream(int(er.get("seed", 0)), name="service-er"),
            )
        else:
            raise ConfigurationError(
                "graph upload needs 'edges' (with 'n') or an 'er' spec"
            )
        return self.register_graph(graph, name=name)

    def _route_trace(self, method, path, query, body):
        """``GET /api/trace/<id>`` (or ``?id=...``) returns one query's
        trace document; ``POST /api/trace`` ingests client-side spans
        (``{"trace_id": ..., "spans": [...]}``)."""
        if self.tracer is None:
            return _json_reply(404, {"ok": False, "error": "tracing disabled"})
        if method == "POST":
            try:
                req = json.loads(body.decode() or "{}")
            except (ValueError, UnicodeDecodeError) as exc:
                return _error_reply(400, exc)
            if not isinstance(req, dict) or not req.get("trace_id"):
                return _json_reply(
                    400, {"ok": False, "error": "need trace_id and spans"}
                )
            added = self.ingest_spans(str(req["trace_id"]),
                                      req.get("spans") or [])
            return _json_reply(200, {"ok": True, "ingested": added})
        trace_id = ""
        if path.startswith("/api/trace/"):
            trace_id = path[len("/api/trace/"):].strip("/")
        if not trace_id and query:
            from urllib.parse import parse_qs

            trace_id = (parse_qs(query).get("id") or [""])[0]
        if not trace_id:
            return _json_reply(400, {"ok": False,
                                     "error": "need /api/trace/<id>"})
        doc = self.get_trace(trace_id)
        if doc is None:
            return _json_reply(404, {
                "ok": False,
                "error": f"unknown or evicted trace {trace_id!r}",
            })
        return _json_reply(200, {"ok": True, "trace": doc})

    def _route_service(self, method, path, query, body):
        return _json_reply(200, {
            "ok": True,
            "service": self.status_snapshot(),
            "graphs": self.registry.describe(),
        })


__all__ = ["DetectionService"]
