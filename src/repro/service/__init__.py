"""Detection as a service: a persistent, multi-tenant query layer.

The standalone drivers in :mod:`repro.core.midas` rebuild everything —
partition, halo views, field tables — on every call.  This package keeps
that state resident between queries:

* :mod:`repro.service.registry` — :class:`GraphRegistry`: preloaded CSR
  graphs keyed by content sha, each with cached
  :class:`~repro.core.engine.EngineSession` prepared state;
* :mod:`repro.service.broker` — :class:`QueryBroker`: admits queries,
  coalesces identical in-flight work, enforces per-tenant quotas,
  caches results keyed by ``(graph sha, query, seed policy)``;
* :mod:`repro.service.server` — :class:`DetectionService`: the asyncio
  event loop, the coordinator sweep, and the HTTP ``/api/*`` routes
  mounted on :class:`~repro.obs.http.LiveServer`;
* :mod:`repro.service.client` — :class:`LocalClient` (in-process) and
  :class:`HttpClient` (remote), one ``query()`` surface for both.

Determinism contract: a service query with a pinned seed policy returns
results bit-identical to the standalone driver — including when the
answer came from the cache or was coalesced onto another tenant's
in-flight execution.  Property-tested in ``tests/test_service.py``.
"""

from repro.service.broker import QueryBroker, QueryOutcome, QuerySpec, canonical_result
from repro.service.client import HttpClient, LocalClient
from repro.service.registry import GraphEntry, GraphRegistry, graph_sha
from repro.service.server import DetectionService

__all__ = [
    "DetectionService",
    "GraphEntry",
    "GraphRegistry",
    "HttpClient",
    "LocalClient",
    "QueryBroker",
    "QueryOutcome",
    "QuerySpec",
    "canonical_result",
    "graph_sha",
]
