"""Preloaded-graph registry for the detection service.

Graphs are identified by **content**: :func:`graph_sha` hashes the CSR
arrays, so the same edge set registered twice (or uploaded by two
tenants) lands on one entry, one set of cached
:class:`~repro.core.engine.EngineSession` prepared state, and one slice
of the result cache.  Names are optional conveniences layered on top —
queries may reference a graph by name, full sha, or unambiguous sha
prefix.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional

from repro.core.engine import EngineSession, MidasRuntime
from repro.errors import ConfigurationError, UnknownGraphError
from repro.graph.csr import CSRGraph
from repro.obs.qtrace import get_flight_recorder


def graph_sha(graph: CSRGraph) -> str:
    """Content identity of a CSR graph: sha256 over ``(n, indptr, indices)``.

    CSR construction canonicalizes edge order (sorted rows, deduped,
    both orientations), so two graphs built from the same edge set in
    any order hash identically — the property the service result cache
    relies on.
    """
    h = hashlib.sha256()
    h.update(str(int(graph.n)).encode())
    h.update(b"|")
    h.update(graph.indptr.tobytes())
    h.update(b"|")
    h.update(graph.indices.tobytes())
    return h.hexdigest()


class GraphEntry:
    """One registered graph: its content sha, optional name, and the
    per-decomposition :class:`EngineSession` cache."""

    __slots__ = ("sha", "graph", "name", "_sessions", "_lock")

    def __init__(self, sha: str, graph: CSRGraph, name: str = "") -> None:
        self.sha = sha
        self.graph = graph
        self.name = name
        # (n1, partition_method, partition_seed, kernel) -> EngineSession;
        # kernel is part of the key because GF2m equality includes the
        # kernel strategy — a session's field cache built for one kernel
        # must not serve a runtime asking for another
        self._sessions: Dict[tuple, EngineSession] = {}
        self._lock = threading.Lock()

    def session_for(self, rt: MidasRuntime) -> EngineSession:
        """The cached session matching ``rt``'s decomposition knobs
        (created on first use; shared by every later compatible query)."""
        key = (rt.n1, rt.partition_method, rt.partition_seed, rt.kernel)
        with self._lock:
            sess = self._sessions.get(key)
            if sess is None:
                sess = self._sessions[key] = EngineSession.for_runtime(
                    self.graph, rt
                )
            return sess

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def describe(self) -> dict:
        """JSON-safe entry summary for ``/api/graphs``."""
        with self._lock:
            sessions = [s.describe() for s in self._sessions.values()]
        return {
            "sha": self.sha,
            "name": self.name,
            "nodes": self.graph.n,
            "edges": self.graph.num_edges,
            "sessions": sessions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.sha[:12]
        return f"GraphEntry({label}, n={self.graph.n})"


class GraphRegistry:
    """Thread-safe name/sha -> :class:`GraphEntry` map (see module docs)."""

    def __init__(self) -> None:
        self._by_sha: Dict[str, GraphEntry] = {}
        self._names: Dict[str, str] = {}  # name -> sha
        self._lock = threading.Lock()

    def register(self, graph: CSRGraph, name: Optional[str] = None) -> GraphEntry:
        """Add ``graph`` (idempotent by content); returns its entry.

        Re-registering the same content is a no-op apart from attaching
        a new name alias; re-binding an existing name to *different*
        content raises :class:`~repro.errors.ConfigurationError` — a
        silent rebind would serve cached results for the wrong graph.
        """
        sha = graph_sha(graph)
        with self._lock:
            entry = self._by_sha.get(sha)
            if entry is None:
                entry = self._by_sha[sha] = GraphEntry(
                    sha, graph, name=name or graph.name or ""
                )
                get_flight_recorder().record(
                    "graph_registered",
                    sha=sha[:12],
                    name=name or graph.name or "",
                    n=int(graph.n),
                    edges=int(graph.num_edges),
                )
            if name:
                bound = self._names.get(name)
                if bound is not None and bound != sha:
                    raise ConfigurationError(
                        f"graph name {name!r} is already bound to "
                        f"{bound[:12]}..., refusing to rebind to {sha[:12]}..."
                    )
                self._names[name] = sha
                if not entry.name:
                    entry.name = name
            return entry

    def resolve(self, ref: str) -> GraphEntry:
        """Look up by name, full sha, or sha prefix (>= 8 hex chars).

        Raises :class:`~repro.errors.UnknownGraphError` when nothing (or
        more than one prefix candidate) matches.
        """
        if not isinstance(ref, str) or not ref:
            raise UnknownGraphError(ref)
        with self._lock:
            sha = self._names.get(ref)
            if sha is not None:
                return self._by_sha[sha]
            entry = self._by_sha.get(ref)
            if entry is not None:
                return entry
            if len(ref) >= 8:
                hits = [e for s, e in self._by_sha.items() if s.startswith(ref)]
                if len(hits) == 1:
                    return hits[0]
        raise UnknownGraphError(ref)

    def entries(self) -> List[GraphEntry]:
        with self._lock:
            return list(self._by_sha.values())

    def session_count(self) -> int:
        return sum(e.session_count() for e in self.entries())

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_sha)

    def describe(self) -> List[dict]:
        return [e.describe() for e in self.entries()]


__all__ = ["GraphEntry", "GraphRegistry", "graph_sha"]
