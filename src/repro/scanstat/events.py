"""Synthetic event generation for scan-statistics experiments.

Implements the hypothesis-testing setup of Section II-A2: under the null,
every node's event count is Poisson with rate proportional to its baseline;
under the alternative, a small connected set ``S`` generates counts at an
elevated rate.  Used by the anomaly-detection tests (a detector must
recover the injected cluster) and the epidemic example.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import as_stream


def null_poisson_counts(baselines: np.ndarray, rate: float = 1.0, rng=None) -> np.ndarray:
    """Counts under H0: ``Poisson(rate * b(v))`` per node."""
    rng = as_stream(rng, "null-counts")
    b = np.asarray(baselines, dtype=np.float64)
    if np.any(b < 0) or rate < 0:
        raise ConfigurationError("baselines and rate must be non-negative")
    return rng.poisson(lam=rate * b).astype(np.int64)


def inject_poisson_counts(
    baselines: np.ndarray,
    cluster: np.ndarray,
    elevation: float = 3.0,
    rate: float = 1.0,
    rng=None,
) -> np.ndarray:
    """Counts under H1(S): cluster nodes at ``elevation * rate``, rest at ``rate``."""
    rng = as_stream(rng, "alt-counts")
    b = np.asarray(baselines, dtype=np.float64)
    if elevation < 1.0:
        raise ConfigurationError(f"elevation must be >= 1, got {elevation}")
    lam = rate * b.copy()
    cl = np.asarray(cluster, dtype=np.int64)
    lam[cl] *= elevation
    return rng.poisson(lam=lam).astype(np.int64)


def pvalues_from_counts(
    counts: np.ndarray, baselines: np.ndarray, rate: float = 1.0
) -> np.ndarray:
    """Upper-tail Poisson p-values ``P[Poisson(rate b) >= c]`` per node."""
    from scipy.stats import poisson

    c = np.asarray(counts, dtype=np.int64)
    b = np.asarray(baselines, dtype=np.float64)
    lam = np.maximum(rate * b, 1e-12)
    # sf(c-1) = P[X >= c]
    return poisson.sf(c - 1, lam)
