"""End-to-end anomaly detection (paper Problem 2).

:class:`AnomalyDetector` chains the full pipeline:

1. map node observations to integer weights,
2. run the MIDAS scan grid (:func:`repro.core.midas.scan_grid`) to learn
   which (size, weight) cells are realizable by a connected subgraph,
3. maximize the chosen scan statistic over feasible cells,
4. optionally extract the maximizing cluster by deletion peeling, and
5. optionally assess significance with a permutation test.

Like the decision algorithms, the detector's errors are one-sided on the
feasibility side: it never scores an infeasible cell; with probability at
most ``eps`` per cell it can miss a feasible one (and then returns the best
of the remaining cells).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.core.midas import MidasRuntime, scan_grid
from repro.core.result import ScanGridResult
from repro.graph.csr import CSRGraph
from repro.scanstat.statistics import ScanStatistic
from repro.util.rng import as_stream


@dataclass
class AnomalyResult:
    """Outcome of an anomaly-detection run."""

    best_score: float
    best_size: Optional[int]
    best_weight: Optional[int]
    grid: ScanGridResult
    cluster: Optional[np.ndarray] = None
    p_value: Optional[float] = None
    wall_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def significant(self) -> bool:
        """True when a permutation test was run and came back < 0.05."""
        return self.p_value is not None and self.p_value < 0.05

    def summary(self) -> str:
        cell = (
            f"size={self.best_size}, weight={self.best_weight}"
            if self.best_size is not None
            else "none"
        )
        pv = f", p={self.p_value:.3f}" if self.p_value is not None else ""
        cl = f", cluster={len(self.cluster)} nodes" if self.cluster is not None else ""
        return f"anomaly: score={self.best_score:.4f} at [{cell}]{pv}{cl}"


def extract_cluster(
    graph: CSRGraph,
    weights: np.ndarray,
    size: int,
    weight: int,
    eps: float = 0.1,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    max_queries: Optional[int] = None,
) -> np.ndarray:
    """Recover a connected subgraph of exactly (``size``, ``weight``).

    Deletion peeling: repeatedly drop vertex chunks whose removal keeps the
    (size, weight) cell feasible.  Each feasibility query is a single-cell
    detection (:func:`repro.core.midas.detect_scan_cell`), so this is meant
    for analysis-sized graphs (the paper's Fig 13 use case), not the
    scaling benchmarks.

    When the runtime has ``sanitize != "off"``, the returned cluster is
    independently certified against the graph — exact size, exact total
    weight, connectivity — and a bogus one raises
    :class:`~repro.errors.CertificationError` instead of being returned.
    """
    from repro.core.midas import detect_scan_cell
    from repro.core.witness import extract_witness

    rng = as_stream(rng, "cluster-extract")
    w = np.asarray(weights, dtype=np.int64)
    query_rng = rng.child("queries")

    def feasible(masked: CSRGraph) -> bool:
        return detect_scan_cell(
            masked, w, size, weight, eps=eps,
            rng=query_rng.child(f"q{masked.num_edges}"), runtime=runtime,
        )

    cluster = extract_witness(graph, feasible, size, rng=rng,
                              max_queries=max_queries)
    if runtime is not None and runtime.sanitize != "off":
        from repro.sanitize.certify import certify_cluster

        certify_cluster(graph, w, cluster, size, weight)
    return cluster


class AnomalyDetector:
    """Connected-subgraph anomaly detection with a pluggable statistic."""

    def __init__(
        self,
        graph: CSRGraph,
        statistic: ScanStatistic,
        k: int,
        runtime: Optional[MidasRuntime] = None,
        eps: float = 0.1,
    ) -> None:
        if k < 1 or k > graph.n:
            raise ConfigurationError(f"k must be in [1, {graph.n}], got {k}")
        self.graph = graph
        self.statistic = statistic
        self.k = k
        self.runtime = runtime
        self.eps = eps

    # ------------------------------------------------------------------ api
    def detect(
        self,
        weights: np.ndarray,
        rng=None,
        extract: bool = False,
        z_max: Optional[int] = None,
        sizes=None,
    ) -> AnomalyResult:
        """Find the highest-scoring connected subgraph of size <= k.

        ``sizes`` optionally restricts the candidate subgraph sizes (e.g.
        ``range(6, 13)`` when tiny clusters are uninteresting) — a large
        saving since row ``j`` costs ``2^j``.
        """
        rng = as_stream(rng, "anomaly")
        w = np.asarray(weights, dtype=np.int64)
        t0 = time.perf_counter()
        grid = scan_grid(
            self.graph, w, self.k, eps=self.eps, rng=rng.child("grid"),
            runtime=self.runtime, z_max=z_max, sizes=sizes,
        )
        best_score, best_j, best_z = grid.best_cell(self.statistic.score)
        cluster = None
        if extract and best_j is not None and best_score > 0:
            cluster = extract_cluster(
                self.graph, w, best_j, best_z, eps=self.eps,
                rng=rng.child("extract"), runtime=self.runtime,
            )
        return AnomalyResult(
            best_score=float(best_score) if best_j is not None else 0.0,
            best_size=best_j,
            best_weight=best_z,
            grid=grid,
            cluster=cluster,
            wall_seconds=time.perf_counter() - t0,
            details={"statistic": self.statistic.name},
        )

    def significance(
        self,
        weights: np.ndarray,
        observed_score: float,
        n_null: int = 20,
        rng=None,
    ) -> float:
        """Permutation-test p-value of ``observed_score``.

        Node weights are randomly permuted ``n_null`` times; the p-value is
        the fraction of permutations whose best score reaches the observed
        one (add-one smoothed).
        """
        rng = as_stream(rng, "significance")
        w = np.asarray(weights, dtype=np.int64)
        hits = 0
        for i in range(n_null):
            perm = rng.permutation(w)
            grid = scan_grid(
                self.graph, perm, self.k, eps=self.eps,
                rng=rng.child(f"null{i}"), runtime=self.runtime,
            )
            score, _, _ = grid.best_cell(self.statistic.score)
            if score >= observed_score:
                hits += 1
        return (hits + 1) / (n_null + 1)
