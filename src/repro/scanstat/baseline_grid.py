"""Two-axis scan grids: tracking event weight AND baseline per subgraph.

The paper's Problem 2 constrains the *baseline* count — find connected
``S`` maximizing ``F(W(S), B(S), theta)`` with ``B(S) <= k`` — while
Algorithm 5 tracks a single integer axis.  With uniform baselines the
single axis suffices (``B(S)`` is proportional to ``|S|``); with
heterogeneous baselines (e.g. county populations), Kulldorff's statistic
needs both totals.  This module generalizes the DP to a joint
``(size, weight, baseline)`` grid:

    ``P(i, 1, zw, zb) = x_i``  at ``zw = w(i), zb = b(i)``
    ``P(i, j, zw, zb) = sum_u sum_{j'} sum_{zw'} sum_{zb'}``
    ``                  P(i, j', zw', zb') * P(u, j-j', zw-zw', zb-zb')``

The z-convolution is now 2D; cost grows by the extra axis exactly as
Lemma 3's ``W(V)^2`` term suggests (both axes should be pre-rounded with
:func:`repro.scanstat.weights.round_weights`).  Sequential evaluation
only — this is the analysis-scale extension; the one-axis grid remains
the scaling workhorse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.core.schedule import rounds_for_epsilon
from repro.ff.fingerprint import Fingerprint
from repro.ff.gf2m import default_field_for_k
from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.util.rng import as_stream


def _check_axis(graph: CSRGraph, values, name: str) -> np.ndarray:
    v = np.asarray(values, dtype=np.int64)
    if v.shape != (graph.n,):
        raise ConfigurationError(f"{name} must have shape ({graph.n},), got {v.shape}")
    if np.any(v < 0):
        raise ConfigurationError(f"{name} must be non-negative integers")
    return v


def _base_2d(fp: Fingerprint, w: np.ndarray, b: np.ndarray, zw_max: int, zb_max: int,
             q_start: int, n2: int) -> np.ndarray:
    base = fp.level_base_block(0, q_start, n2)  # (n, n2)
    n = base.shape[0]
    out = np.zeros((n, zw_max + 1, zb_max + 1, n2), dtype=fp.field.dtype)
    ok = (w <= zw_max) & (b <= zb_max)
    idx = np.nonzero(ok)[0]
    out[idx, w[idx], b[idx], :] = base[idx]
    return out


def baseline_scan_eval_phase(
    graph: CSRGraph,
    weights: np.ndarray,
    baselines: np.ndarray,
    fp: Fingerprint,
    zw_max: int,
    zb_max: int,
    q_start: int,
    n2: int,
) -> np.ndarray:
    """Evaluate ``P(dim, zw, zb)`` over one iteration window.

    Returns ``(zw_max + 1, zb_max + 1, n2)``.
    """
    field = fp.field
    dim = fp.k
    if fp.levels < dim + 1:
        raise ConfigurationError(
            f"needs {dim + 1} fingerprint levels, fingerprint has {fp.levels}"
        )
    w = _check_axis(graph, weights, "weights")
    b = _check_axis(graph, baselines, "baselines")
    p: Dict[int, np.ndarray] = {1: _base_2d(fp, w, b, zw_max, zb_max, q_start, n2)}
    s: Dict[int, np.ndarray] = {}
    for j in range(2, dim + 1):
        jp = j - 1
        gathered = p[jp][graph.indices]
        s[jp] = xor_segment_reduce(gathered, graph.indptr)
        acc = np.zeros_like(p[1])
        for j1 in range(1, j):
            a = p[j1]
            t = s[j - j1]
            for zw1 in range(zw_max + 1):
                for zb1 in range(zb_max + 1):
                    col = a[:, zw1, zb1, :]  # (n, n2)
                    if not col.any():
                        continue
                    acc[:, zw1:, zb1:, :] ^= field.mul(
                        col[:, None, None, :],
                        t[:, : zw_max + 1 - zw1, : zb_max + 1 - zb1, :],
                    )
        p[j] = field.mul(fp.y[:, j][:, None, None, None], acc)
    return field.xor_sum(p[dim], axis=0)


@dataclass
class BaselineGridResult:
    """Feasible (size, weight, baseline) cells and the best statistic cell."""

    k: int
    zw_max: int
    zb_max: int
    detected: np.ndarray  # (k+1, zw_max+1, zb_max+1) bool
    rounds_run: int
    eps: float

    def feasible_cells(self):
        js, zws, zbs = np.nonzero(self.detected)
        return list(zip(js.tolist(), zws.tolist(), zbs.tolist()))

    def best_cell(self, score_fn):
        """Maximize ``score_fn(weight, baseline, size)`` over feasible cells."""
        best = (-np.inf, None, None, None)
        for j, zw, zb in self.feasible_cells():
            val = float(score_fn(zw, zb, j))
            if val > best[0]:
                best = (val, j, zw, zb)
        return best


def baseline_scan_grid(
    graph: CSRGraph,
    weights: np.ndarray,
    baselines: np.ndarray,
    k: int,
    b_max: Optional[int] = None,
    eps: float = 0.2,
    rng=None,
    zw_max: Optional[int] = None,
    n2: Optional[int] = None,
) -> BaselineGridResult:
    """Detect all (size <= k, weight, baseline <= b_max) connected subgraphs.

    ``b_max`` is the paper's Problem 2 budget ``B(S) <= k`` generalized to
    any integer bound (default: the size bound's worth of the largest
    baselines).  Sizes are evaluated per dimension as in
    :func:`repro.core.midas.scan_grid`.
    """
    w = _check_axis(graph, weights, "weights")
    b = _check_axis(graph, baselines, "baselines")
    if k < 1 or k > graph.n:
        raise ConfigurationError(f"k must be in [1, {graph.n}], got {k}")
    if zw_max is None:
        zw_max = int(np.sort(w)[-k:].sum())
    if b_max is None:
        b_max = int(np.sort(b)[-k:].sum())
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "baseline-grid")
    detected = np.zeros((k + 1, zw_max + 1, b_max + 1), dtype=bool)
    for j in range(1, k + 1):
        fld = default_field_for_k(max(j, 2))
        total = 1 << j
        nn2 = min(n2 or 16, total)
        while total % nn2:
            nn2 -= 1
        size_rng = rng.child(f"size{j}")
        for ell in range(rounds):
            fp = Fingerprint.draw(graph.n, j, size_rng.child(f"round{ell}"),
                                  levels=j + 1, field=fld)
            acc = np.zeros((zw_max + 1, b_max + 1), dtype=fld.dtype)
            for t in range(total // nn2):
                vals = baseline_scan_eval_phase(
                    graph, w, b, fp, zw_max, b_max, t * nn2, nn2
                )
                acc ^= np.bitwise_xor.reduce(vals, axis=2)
            detected[j] |= acc != 0
    return BaselineGridResult(
        k=k, zw_max=zw_max, zb_max=b_max, detected=detected,
        rounds_run=rounds, eps=eps,
    )
