"""Scan statistic functions ``F(W(S), B(S), theta)``.

The paper emphasizes that MIDAS handles "a broad class of scan statistics
functions (both parametric and non-parametric) with the same approach":
the combinatorial work (which (size, weight) cells are realizable by a
connected subgraph) is done once by the MIDAS grid; each statistic is then
just a function evaluated on cells.  This module provides the standard
members of both families:

Parametric (count/baseline models)
    :class:`Kulldorff` (the classic spatial-scan Poisson LLR),
    :class:`ExpectationBasedPoisson`, :class:`ElevatedMean`.

Non-parametric (p-value based, Chen–Neill style)
    :class:`BerkJones`, :class:`HigherCriticism` — these consume *binary*
    weights (1 iff a node's p-value is below the significance threshold
    ``alpha``), so a cell's weight ``z`` is ``N_alpha(S)`` and its size
    ``j`` is ``|S|``.

All statistics implement ``score(weight, size) -> float`` with the
convention "bigger is more anomalous"; cells indicating *less* signal than
expected score 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _kl_bernoulli(a: float, b: float) -> float:
    """KL divergence KL(a || b) between Bernoulli rates, safe at {0, 1}."""
    if not (0.0 <= a <= 1.0) or not (0.0 < b < 1.0):
        raise ConfigurationError(f"KL arguments out of range: a={a}, b={b}")
    term1 = 0.0 if a == 0.0 else a * math.log(a / b)
    term2 = 0.0 if a == 1.0 else (1.0 - a) * math.log((1.0 - a) / (1.0 - b))
    return term1 + term2


class ScanStatistic:
    """Base interface: ``score(weight, size)``, bigger = more anomalous."""

    name = "abstract"

    def score(self, weight: float, size: int) -> float:
        raise NotImplementedError

    def __call__(self, weight: float, size: int) -> float:
        return self.score(weight, size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass
class Kulldorff(ScanStatistic):
    """Kulldorff's Poisson likelihood-ratio scan statistic.

    ``F(S) = W log(W/B) + (Wt - W) log((Wt - W)/(Bt - B))`` when the inside
    rate exceeds the outside rate, else 0.  ``B(S)`` is taken proportional
    to the subgraph size: ``B = size * baseline_per_node`` (pass rounded
    baselines as the weight axis instead for heterogeneous baselines).
    """

    total_weight: float
    total_baseline: float
    baseline_per_node: float = 1.0
    name = "kulldorff"

    def score(self, weight: float, size: int) -> float:
        w = float(weight)
        b = size * self.baseline_per_node
        wt, bt = self.total_weight, self.total_baseline
        if w <= 0 or b <= 0 or w >= wt or b >= bt:
            return 0.0
        inside = w / b
        outside = (wt - w) / (bt - b)
        if inside <= outside:
            return 0.0
        return w * math.log(inside) + (wt - w) * math.log(outside) - wt * math.log(wt / bt)


@dataclass
class ExpectationBasedPoisson(ScanStatistic):
    """Expectation-based Poisson (EBP): ``W log(W/B) - (W - B)`` for W > B."""

    baseline_per_node: float = 1.0
    name = "ebp"

    def score(self, weight: float, size: int) -> float:
        w = float(weight)
        b = size * self.baseline_per_node
        if w <= b or b <= 0:
            return 0.0
        return w * math.log(w / b) - (w - b)


@dataclass
class ElevatedMean(ScanStatistic):
    """Elevated-mean scan: ``(W - B) / sqrt(B)`` for W > B (Gaussian-ish)."""

    baseline_per_node: float = 1.0
    name = "elevated-mean"

    def score(self, weight: float, size: int) -> float:
        w = float(weight)
        b = size * self.baseline_per_node
        if b <= 0 or w <= b:
            return 0.0
        return (w - b) / math.sqrt(b)


@dataclass
class BerkJones(ScanStatistic):
    """Non-parametric Berk–Jones statistic on binary p-value weights.

    With ``z`` = number of nodes whose p-value is below ``alpha`` and
    ``j`` = subgraph size: ``F = j * KL(z/j, alpha)`` when the observed
    fraction exceeds ``alpha``, else 0.
    """

    alpha: float = 0.05
    name = "berk-jones"

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")

    def score(self, weight: float, size: int) -> float:
        if size <= 0:
            return 0.0
        frac = min(1.0, float(weight) / size)
        if frac <= self.alpha:
            return 0.0
        return size * _kl_bernoulli(frac, self.alpha)


@dataclass
class KulldorffTwoAxis:
    """Kulldorff's LLR over explicit (weight, baseline) totals.

    The statistic for the two-axis grid of
    :mod:`repro.scanstat.baseline_grid`, where each feasible cell carries
    its true baseline sum instead of a per-node constant:
    ``score(weight, baseline, size)``.
    """

    total_weight: float
    total_baseline: float
    name = "kulldorff-2axis"

    def score(self, weight: float, baseline: float, size: int) -> float:
        w, b = float(weight), float(baseline)
        wt, bt = self.total_weight, self.total_baseline
        if w <= 0 or b <= 0 or w >= wt or b >= bt:
            return 0.0
        inside = w / b
        outside = (wt - w) / (bt - b)
        if inside <= outside:
            return 0.0
        return w * math.log(inside) + (wt - w) * math.log(outside) - wt * math.log(wt / bt)

    def __call__(self, weight: float, baseline: float, size: int) -> float:
        return self.score(weight, baseline, size)


@dataclass
class HigherCriticism(ScanStatistic):
    """Higher-criticism statistic: ``(z - j a) / sqrt(j a (1 - a))``."""

    alpha: float = 0.05
    name = "higher-criticism"

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")

    def score(self, weight: float, size: int) -> float:
        if size <= 0:
            return 0.0
        expected = size * self.alpha
        z = float(weight)
        if z <= expected:
            return 0.0
        return (z - expected) / math.sqrt(size * self.alpha * (1.0 - self.alpha))
