"""Graph scan statistics: anomaly detection on networks (paper Problem 2).

The pipeline is: node observations -> p-values / counts ->
integer weights (:mod:`repro.scanstat.weights`) -> MIDAS scan grid
(:func:`repro.core.midas.scan_grid`) -> maximize a scan statistic
(:mod:`repro.scanstat.statistics`) over feasible (size, weight) cells ->
optionally extract the anomalous cluster
(:class:`repro.scanstat.detect.AnomalyDetector`).
"""

from repro.scanstat.baseline_grid import BaselineGridResult, baseline_scan_grid
from repro.scanstat.detect import AnomalyDetector, AnomalyResult, extract_cluster
from repro.scanstat.events import (
    inject_poisson_counts,
    null_poisson_counts,
    pvalues_from_counts,
)
from repro.scanstat.statistics import (
    BerkJones,
    ElevatedMean,
    ExpectationBasedPoisson,
    HigherCriticism,
    Kulldorff,
    KulldorffTwoAxis,
    ScanStatistic,
)
from repro.scanstat.weights import (
    binary_weights_from_pvalues,
    normal_lower_pvalues,
    round_weights,
)

__all__ = [
    "BaselineGridResult",
    "baseline_scan_grid",
    "AnomalyDetector",
    "AnomalyResult",
    "extract_cluster",
    "inject_poisson_counts",
    "null_poisson_counts",
    "pvalues_from_counts",
    "BerkJones",
    "ElevatedMean",
    "ExpectationBasedPoisson",
    "HigherCriticism",
    "Kulldorff",
    "KulldorffTwoAxis",
    "ScanStatistic",
    "binary_weights_from_pvalues",
    "normal_lower_pvalues",
    "round_weights",
]
