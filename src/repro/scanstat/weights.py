"""Weight calibration: observations -> the integer weight axis.

The MIDAS scan-statistics DP tracks an integer weight ``z``; real data
carries p-values or real-valued counts.  Two mappings are provided:

* **binary** (:func:`binary_weights_from_pvalues`) — weight 1 iff the node
  is individually significant at level ``alpha``.  This is the Chen–Neill
  non-parametric setting (Berk–Jones / Higher-Criticism) and keeps the
  weight axis at ``z <= k`` — the cheapest and the one the paper's road
  network case study uses.
* **rounded counts** (:func:`round_weights`) — the Knapsack-style rounding
  the paper references after Lemma 3: scale real weights so the largest is
  ``levels``, floor to integers.  The induced relative error per subgraph
  is at most ``k / levels``, for a weight axis of ``O(k * levels)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def normal_lower_pvalues(x: np.ndarray, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """Lower-tail p-values ``P[N(mu, sigma) <= x]`` per node.

    This is exactly the paper's road-network recipe: the p-value of a
    sensor is the normal CDF of its current reading under its historical
    mean and standard deviation (small p-value = anomalously *low* speed).
    """
    from scipy.stats import norm

    x = np.asarray(x, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if np.any(sigma <= 0):
        raise ConfigurationError("sigma must be positive everywhere")
    return norm.cdf((x - mu) / sigma)


def binary_weights_from_pvalues(pvalues: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """Weight 1 for nodes with ``p < alpha``, else 0 (non-parametric scan)."""
    p = np.asarray(pvalues, dtype=np.float64)
    if np.any((p < 0) | (p > 1)):
        raise ConfigurationError("p-values must lie in [0, 1]")
    if not (0.0 < alpha < 1.0):
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    return (p < alpha).astype(np.int64)


def round_weights(weights: np.ndarray, levels: int = 16) -> Tuple[np.ndarray, float]:
    """Round non-negative real weights to integers in ``[0, levels]``.

    Returns ``(int_weights, scale)`` with ``real ~ int * scale``.  For any
    subgraph of ``k`` nodes the rounded total underestimates the true total
    by at most ``k * scale`` (each node loses < one level), i.e. a relative
    error ``<= k / levels`` at the maximum — the standard Knapsack rounding
    trade-off the paper invokes to keep ``W(V)`` manageable.
    """
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    wmax = float(w.max()) if w.size else 0.0
    if wmax == 0.0:
        return np.zeros(w.shape, dtype=np.int64), 1.0
    scale = wmax / levels
    return np.floor(w / scale).astype(np.int64), scale
