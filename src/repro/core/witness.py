"""Witness extraction by deletion peeling.

MIDAS answers *decision* questions; applications often want the vertices.
Self-reduction recovers them: repeatedly try removing chunks of vertices —
if the structure is still detected without them, they were not needed.
Halving the chunk size on failure gives ``O(n_candidates)`` detector calls
in the worst case but ``O(k log n)`` when deletions mostly succeed.

Because the detector is one-sided Monte Carlo, each query is run at a
small per-query ``eps``; a failed detection on the *full* graph aborts
with :class:`~repro.errors.DetectionError` rather than peeling garbage.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import DetectionError
from repro.graph.csr import CSRGraph
from repro.util.rng import as_stream

DetectFn = Callable[[CSRGraph], bool]
# signature: detect(subgraph) -> bool, on a graph with *original* ids kept
# via the mask trick below (vertices are isolated, not renumbered).


def _mask_graph(graph: CSRGraph, keep: np.ndarray) -> CSRGraph:
    """Graph with all edges touching non-kept vertices removed (ids stable)."""
    e = graph.edges()
    ok = keep[e[:, 0]] & keep[e[:, 1]]
    return CSRGraph.from_edges(graph.n, e[ok], name=f"{graph.name}|mask")


def extract_witness(
    graph: CSRGraph,
    detect: DetectFn,
    k: int,
    rng=None,
    max_queries: Optional[int] = None,
) -> np.ndarray:
    """Peel the graph down to a ``k``-vertex witness of ``detect``.

    Parameters
    ----------
    graph:
        Host graph; ``detect(masked_graph)`` must answer whether the target
        structure survives among the still-active vertices.
    detect:
        Detection callable (e.g. a :func:`~repro.core.midas.detect_path`
        wrapper with a fixed seed policy).
    k:
        Witness size; peeling stops once ``k`` active vertices remain.

    Returns the sorted vertex ids of a witness.  Raises
    :class:`~repro.errors.DetectionError` if the structure is not detected
    on the full graph or the query budget is exhausted.
    """
    rng = as_stream(rng, "witness")
    n = graph.n
    keep = np.ones(n, dtype=bool)
    if not detect(graph):
        raise DetectionError("structure not detected on the full graph; nothing to extract")
    budget = max_queries if max_queries is not None else 4 * n + 64
    queries = 0

    active = rng.permutation(n)
    chunk = max(1, len(active) // 2)
    pos = 0
    progressed_this_pass = False
    while keep.sum() > k:
        if pos >= len(active):
            # reshuffle the survivors and shrink the chunk
            if chunk == 1 and not progressed_this_pass:
                raise DetectionError(
                    f"peeling stalled with {int(keep.sum())} active vertices (> k={k}); "
                    "the detector may be answering inconsistently"
                )
            active = rng.permutation(np.nonzero(keep)[0])
            pos = 0
            progressed_this_pass = False
            chunk = max(1, chunk // 2)
        cand = np.array([v for v in active[pos : pos + chunk] if keep[v]], dtype=np.int64)
        pos += chunk
        if len(cand) == 0:
            continue
        if keep.sum() - len(cand) < k:
            # would drop below k vertices; try a smaller bite
            chunk = max(1, chunk // 2)
            continue
        trial = keep.copy()
        trial[cand] = False
        queries += 1
        if queries > budget:
            raise DetectionError(f"witness extraction exceeded {budget} detector queries")
        if detect(_mask_graph(graph, trial)):
            keep = trial
            progressed_this_pass = True
        elif chunk > 1:
            chunk = max(1, chunk // 2)
    return np.nonzero(keep)[0]
