"""Process-parallel phase execution past the GIL.

The threaded backend proved the execution contract: phase windows are
independent, their values combine by XOR (commutative and associative),
so merge order cannot change the result — bit-identical to sequential.
But numpy kernels only release the GIL inside individual ufuncs; the
gather/reshape/dispatch glue between them serializes, capping threaded
speedup.  This module runs the same contract across *processes*:

* the graph's CSR arrays (and any problem payload arrays, e.g. scan-stat
  weights) are published **once** via ``multiprocessing.shared_memory``
  — workers attach zero-copy, nothing is pickled per phase;
* problem specs close over the graph and cannot cross a process
  boundary, so workers rebuild them from the spec's picklable
  ``recipe`` (:func:`repro.core.problems.spec_from_recipe`) against the
  shared graph, caching per recipe;
* each phase task ships only the round fingerprint (``k``, ``v``, ``y``
  — a few KB) and its ``(q_start, n2)`` window, and returns the phase
  value plus ``perf_counter`` stamps (CLOCK_MONOTONIC on Linux, so
  parent and workers share a timebase for trace lanes).

The parent owns every shared segment's lifecycle: workers only attach
(the resource tracker is shared with the parent under every start
method, so attach-registration is idempotent) and the backend unlinks
every segment on close.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.problems import spec_from_recipe
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph

# environment hook for the crash-regression test: a worker that sees this
# set dies hard (os._exit skips atexit/finally), exactly like a segfault
# or OOM-kill would look to the parent pool
_CRASH_ENV = "REPRO_TEST_CRASH_WORKER"


@dataclass(frozen=True)
class ShmArray:
    """A picklable reference to a numpy array in a shared-memory segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def publish_array(arr: np.ndarray) -> Tuple[ShmArray, shared_memory.SharedMemory]:
    """Copy ``arr`` into a fresh shared segment; caller owns the handle."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return ShmArray(shm.name, tuple(arr.shape), arr.dtype.str), shm


# --------------------------------------------------------------- worker side
# Per-worker caches, populated lazily.  Under the default fork start method
# these start empty in each child; under spawn the module is re-imported.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_WORKER_GRAPH: Optional[CSRGraph] = None
_SPEC_CACHE: Dict[bytes, Any] = {}
# Last metrics snapshot shipped back to the parent.  Each task returns
# the *delta* of the worker's default registry against this baseline and
# advances it, so increments made inside workers (field builds, kernel
# calibration, anything instrumented) reach the parent exactly once.
_METRICS_BASE = None


def _attach(ref: ShmArray) -> np.ndarray:
    """Attach to a published segment (cached per worker), return the view."""
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    # Attaching re-registers the name with the resource tracker.  The
    # tracker is *shared* with the parent under every start method (the
    # tracker fd rides along in the spawn preparation data), its cache is
    # a set, and the parent's unlink unregisters exactly once — so the
    # phantom-owner double-unlink of bpo-38119 cannot happen here and no
    # worker-side unregister is needed (one would instead strip the
    # parent's registration and make its unlink noisy).
    shm = shared_memory.SharedMemory(name=ref.name)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
    _ATTACHED[ref.name] = (shm, view)
    return view


def _worker_init(n: int, indptr_ref: ShmArray, indices_ref: ShmArray,
                 graph_name: str) -> None:
    """Pool initializer: attach the CSR graph once per worker."""
    global _WORKER_GRAPH
    indptr = _attach(indptr_ref)
    indices = _attach(indices_ref)
    # CSRGraph keeps already-conforming int64 arrays as-is (no copy), so
    # the worker's graph stays backed by the shared segments
    _WORKER_GRAPH = CSRGraph(n, indptr, indices, name=graph_name)


def _materialize(params: Dict[str, Any]) -> Dict[str, Any]:
    return {
        key: _attach(val) if isinstance(val, ShmArray) else val
        for key, val in params.items()
    }


def _spec_for(wired: bytes):
    """Rebuild (and cache) the problem spec for a pickled wire descriptor."""
    spec = _SPEC_CACHE.get(wired)
    if spec is None:
        from repro.ff.gf2m import GF2m

        kind, params, (m, modulus, kernel) = pickle.loads(wired)
        field = GF2m(m, modulus=modulus, kernel_strategy=kernel)
        spec = spec_from_recipe(
            _WORKER_GRAPH, (kind, _materialize(dict(params))), field=field
        )
        _SPEC_CACHE[wired] = spec
    return spec


def _metrics_delta():
    """Diff the worker's default registry against the last-shipped
    baseline; advance the baseline.  Returns None when nothing changed
    (the common case after warm-up) so the wire stays small."""
    global _METRICS_BASE
    from repro.obs.metrics import get_default_registry, snapshot_delta

    snap = get_default_registry().snapshot()
    delta = snapshot_delta(snap, _METRICS_BASE)
    _METRICS_BASE = snap
    return delta or None


def _phase_task(wired: bytes, k: int, v: np.ndarray, y: np.ndarray,
                q_start: int, n2: int, want_spans: bool = False):
    """Evaluate one phase window.

    Returns ``(value, t0, t1, pid, spans, mdelta)``: the phase value,
    kernel perf stamps, worker pid, a list of serialized qtrace spans
    (empty unless ``want_spans``), and the worker registry's metric
    delta since the previous task (None when unchanged).  Spans and
    deltas are buffered worker-side and shipped on the task wire — the
    only channel back to the parent.
    """
    if os.environ.get(_CRASH_ENV):
        os._exit(23)
    from repro.ff.fingerprint import Fingerprint
    from repro.obs.metrics import get_default_registry

    pid = os.getpid()
    spans = []
    tb0 = perf_counter()
    spec = _spec_for(wired)
    tb1 = perf_counter()
    if want_spans and tb1 - tb0 > 1e-6:
        spans.append({
            "span_id": os.urandom(8).hex(), "parent_id": None,
            "name": "worker.spec_build", "t_start": tb0, "t_end": tb1,
            "pid": pid, "lane": f"worker-{pid}", "trace_id": "",
        })
    fp = Fingerprint(k=k, field=spec.field, v=v, y=y)
    t0 = perf_counter()
    value = spec.seq_phase(fp, q_start, n2)
    t1 = perf_counter()
    get_default_registry().counter(
        "midas_worker_phases_total", "Phase windows evaluated in process workers"
    ).inc()
    if want_spans:
        spans.append({
            "span_id": os.urandom(8).hex(), "parent_id": None,
            "name": "worker.kernel", "t_start": t0, "t_end": t1,
            "pid": pid, "lane": f"worker-{pid}", "trace_id": "",
            "tags": {"q_start": q_start, "n2": n2, "k": k},
        })
    return value, t0, t1, pid, spans, _metrics_delta()


# --------------------------------------------------------------- parent side
class ProcessPhasePool:
    """A pool of worker processes sharing one published graph.

    ``wire_spec`` converts a :class:`ProblemSpec` into a picklable wire
    descriptor (ndarray payloads are swapped for :class:`ShmArray`
    references, published on first sight); ``submit`` ships one phase
    window.  ``close`` tears down the pool and unlinks every segment.
    """

    def __init__(self, graph: CSRGraph, workers: int,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ConfigurationError(f"process pool needs >= 1 worker, got {workers}")
        self.graph = graph
        self.workers = int(workers)
        self._segments = []  # SharedMemory handles we own
        self._published: Dict[int, ShmArray] = {}  # id(arr) -> ref
        self._keepalive = []  # source arrays, so the id() keys stay valid
        # id(spec) -> (spec, wire descriptor); the spec is pinned so a
        # freed spec's id can never alias a cache entry (scan drivers
        # build one short-lived spec per grid cell)
        self._wire_cache: Dict[int, Tuple[Any, bytes]] = {}
        indptr_ref = self._publish(graph.indptr)
        indices_ref = self._publish(graph.indices)
        ctx = get_context(start_method)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(graph.n, indptr_ref, indices_ref, graph.name),
        )

    def _publish(self, arr: np.ndarray) -> ShmArray:
        ref = self._published.get(id(arr))
        if ref is None:
            ref, shm = publish_array(arr)
            self._segments.append(shm)
            self._published[id(arr)] = ref
            self._keepalive.append(arr)
        return ref

    def wire_spec(self, spec) -> bytes:
        """Pickle a spec's recipe with ndarray payloads in shared memory."""
        cached = self._wire_cache.get(id(spec))
        if cached is not None:
            return cached[1]
        if spec.recipe is None:
            raise ConfigurationError(
                f"problem {spec.name!r} carries no recipe; hand-built specs "
                "cannot run on mode='process' (closures do not cross process "
                "boundaries) — use the factory constructors in repro.core.problems"
            )
        kind, params = spec.recipe
        wire_params = tuple(
            sorted(
                (
                    key,
                    self._publish(val) if isinstance(val, np.ndarray) else val,
                )
                for key, val in params.items()
            )
        )
        f = spec.field
        wired = pickle.dumps(
            (kind, wire_params, (f.m, f.modulus, f.kernel_strategy)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._wire_cache[id(spec)] = (spec, wired)
        return wired

    def submit(self, wired: bytes, fp, q_start: int, n2: int,
               want_spans: bool = False):
        """Submit one phase window; future resolves to
        ``(value, t0, t1, pid, spans, mdelta)`` — see :func:`_phase_task`."""
        return self._executor.submit(
            _phase_task, wired, fp.k, fp.v, fp.y, q_start, n2, want_spans
        )

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._published = {}
        self._keepalive = []
        self._wire_cache = {}


__all__ = ["ProcessPhasePool", "ShmArray", "publish_array"]
