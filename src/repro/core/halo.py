"""Per-rank partitioned graph views with halo (ghost) exchange lists.

Algorithm 3's message pattern is: after each DP level, every vertex with a
neighbour on another processor sends its fresh polynomial value there.  A
:class:`HaloView` precomputes, for one rank:

* ``own`` — the global ids this rank owns (its partition part, sorted);
* ``ghost`` — global ids of off-part neighbours of owned vertices;
* a local CSR over owned rows whose column indices point into the
  concatenated ``[own | ghost]`` local id space — so a DP level is the same
  two vectorized ops as the sequential kernel, just on local arrays;
* ``send_lists[peer]`` — positions (into ``own``) of the vertices whose
  values must go to ``peer`` each level;
* ``recv_lists[peer]`` — positions (into ``ghost``) where values arriving
  from ``peer`` land.

Both sides order a given peer's list by global vertex id, so a received
buffer scatters with one fancy-indexed assignment and the exchange is
deterministic.  All views are built in one pass over the edge list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition


@dataclass
class HaloView:
    """One rank's local slice of a partitioned graph (see module docs)."""

    rank: int
    own: np.ndarray  # (n_own,) global ids, sorted
    ghost: np.ndarray  # (n_ghost,) global ids, sorted
    indptr: np.ndarray  # (n_own + 1,) local CSR
    indices: np.ndarray  # local column ids: < n_own own, >= n_own ghost
    send_lists: Dict[int, np.ndarray]  # peer -> positions into own
    recv_lists: Dict[int, np.ndarray]  # peer -> positions into ghost

    @property
    def n_own(self) -> int:
        return len(self.own)

    @property
    def n_ghost(self) -> int:
        return len(self.ghost)

    @property
    def n_local(self) -> int:
        return self.n_own + self.n_ghost

    @property
    def peers(self) -> List[int]:
        """Ranks this rank exchanges halo data with, sorted."""
        return sorted(set(self.send_lists) | set(self.recv_lists))

    def boundary_out_entries(self) -> int:
        """Total (vertex, peer) send slots per level — the modeled message volume."""
        return sum(len(v) for v in self.send_lists.values())

    def split_adjacency(self):
        """Split the local CSR into local-column and ghost-column halves.

        Returns ``(indptr_own, indices_own, indptr_ghost, indices_ghost)``
        where the *own* half keeps column ids into ``own`` (< n_own) and
        the *ghost* half's ids are re-based into ``ghost`` (0-based).

        Because GF addition is XOR, a row's neighbour sum decomposes as
        ``reduce(own half) XOR reduce(ghost half)`` — the own half can be
        computed before any message arrives, which is what the
        communication-overlapping evaluator exploits.  Computed lazily and
        cached on the instance.
        """
        cached = getattr(self, "_split", None)
        if cached is not None:
            return cached
        n_own = self.n_own
        is_own = self.indices < n_own
        counts_own = np.zeros(n_own, dtype=np.int64)
        counts_ghost = np.zeros(n_own, dtype=np.int64)
        row_of = np.repeat(np.arange(n_own), np.diff(self.indptr))
        np.add.at(counts_own, row_of[is_own], 1)
        np.add.at(counts_ghost, row_of[~is_own], 1)
        indptr_own = np.zeros(n_own + 1, dtype=np.int64)
        np.cumsum(counts_own, out=indptr_own[1:])
        indptr_ghost = np.zeros(n_own + 1, dtype=np.int64)
        np.cumsum(counts_ghost, out=indptr_ghost[1:])
        # within-row order is preserved by the stable boolean selection
        indices_own = self.indices[is_own]
        indices_ghost = self.indices[~is_own] - n_own
        split = (indptr_own, indices_own, indptr_ghost, indices_ghost)
        object.__setattr__(self, "_split", split)
        return split


def build_halo_views(graph: CSRGraph, partition: Partition) -> List[HaloView]:
    """Build every rank's :class:`HaloView` in one pass over the edges."""
    # imported here, not at module top: repro.obs must stay import-light
    # from the hot core modules (see obs.metrics module docs)
    import time

    from repro.obs.metrics import get_default_registry

    if partition.graph is not graph and partition.graph.n != graph.n:
        raise PartitionError("partition does not match graph")
    t0 = time.perf_counter()
    p = partition.n_parts
    owner = partition.owner
    e = graph.edges()
    ou = owner[e[:, 0]]
    ov = owner[e[:, 1]]
    cut = ou != ov

    # (vertex, dst_rank) pairs: each endpoint of a cut edge must be sent to
    # the other endpoint's owner.
    send_v = np.concatenate([e[cut, 0], e[cut, 1]])
    send_to = np.concatenate([ov[cut], ou[cut]])
    if len(send_v):
        key = send_v * p + send_to
        uniq = np.unique(key)
        send_v = uniq // p
        send_to = uniq % p
    views: List[HaloView] = []
    for r in range(p):
        own = partition.part_nodes(r)
        pos_of_global = -np.ones(graph.n, dtype=np.int64)
        pos_of_global[own] = np.arange(len(own))

        # ghosts of r: vertices sent *to* r
        mask_in = send_to == r
        ghost = np.sort(send_v[mask_in])
        ghost_pos = {}
        if len(ghost):
            pos_of_global[ghost] = len(own) + np.arange(len(ghost))

        # local CSR over own rows
        deg = graph.indptr[own + 1] - graph.indptr[own]
        indptr = np.zeros(len(own) + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        cols = np.empty(indptr[-1], dtype=np.int64)
        for li, g in enumerate(own):
            cols[indptr[li] : indptr[li + 1]] = graph.indices[
                graph.indptr[g] : graph.indptr[g + 1]
            ]
        local_cols = pos_of_global[cols]
        if np.any(local_cols < 0):  # pragma: no cover - invariant
            raise PartitionError("halo construction missed a neighbour (internal error)")

        # send lists: my vertices that must go to each peer, ordered by
        # global id (matching the receiver's sorted ghost layout)
        mask_out = (owner[send_v] == r) if len(send_v) else np.zeros(0, dtype=bool)
        sv = send_v[mask_out]
        st = send_to[mask_out]
        send_lists: Dict[int, np.ndarray] = {}
        for peer in np.unique(st):
            vs = np.sort(sv[st == peer])
            send_lists[int(peer)] = pos_of_global[vs]  # positions into own

        # recv lists: where each peer's (sorted) buffer lands in my ghost array
        recv_lists: Dict[int, np.ndarray] = {}
        gv = send_v[mask_in]
        gfrom = owner[gv] if len(gv) else np.zeros(0, dtype=np.int64)
        for peer in np.unique(gfrom):
            vs = np.sort(gv[gfrom == peer])
            recv_lists[int(peer)] = pos_of_global[vs] - len(own)  # positions into ghost

        views.append(
            HaloView(
                rank=r,
                own=own,
                ghost=ghost,
                indptr=indptr,
                indices=local_cols,
                send_lists=send_lists,
                recv_lists=recv_lists,
            )
        )

    reg = get_default_registry()
    reg.counter("midas_halo_builds_total", "Halo-view constructions").inc()
    reg.histogram(
        "midas_halo_build_seconds", "Wall time of build_halo_views"
    ).labels(n1=p).observe(time.perf_counter() - t0)
    reg.gauge(
        "midas_halo_ghost_nodes", "Total ghost slots across ranks (last build)"
    ).labels(n1=p).set(sum(v.n_ghost for v in views))
    reg.gauge(
        "midas_halo_boundary_nodes", "Distinct boundary vertices (last build)"
    ).labels(n1=p).set(int(len(np.unique(send_v))) if len(send_v) else 0)
    return views
