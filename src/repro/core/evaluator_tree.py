"""PAREVALUATEPOLYNOMIALTREE (paper Algorithm 4), vectorized.

The k-tree polynomial follows the template decomposition of
:func:`repro.graph.templates.decompose_template` (paper Fig 2):

* single-node subtree rooted at template node ``a``:
  ``P(i, {a}) = x_i`` — evaluated as ``y[i, a] * [ <v_i, q> even ]``
  (one fingerprint level per *template node*, so distinct homomorphisms
  carry distinct monomials);
* composite subtree ``H'`` with children ``H'_1`` (same root) and ``H'_2``
  (rooted at the detached neighbour):
  ``P(i, H') = sum_{u in NBR(i)} P(i, H'_1) * P(u, H'_2)``
  — one gather + XOR-segment-reduce of the branch child, then one field
  multiply with the same-root child.

Specs are evaluated children-first; arrays are freed as soon as their last
consumer has run, keeping peak memory at ``O(k)`` arrays of ``(n, N_2)``.
The k-path is the special case of a path template (and the test-suite
checks the two evaluators agree on it).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.ff.fingerprint import Fingerprint
from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.core.halo import HaloView
from repro.graph.templates import SubtreeSpec, TreeTemplate, decompose_template
from repro.runtime.comm import AllReduce, Irecv, Recv, Send, Wait


def _last_use(specs: Sequence[SubtreeSpec]) -> Dict[int, int]:
    """Map each spec id to the index of its last consumer (for freeing)."""
    last: Dict[int, int] = {}
    for s in specs:
        if not s.is_leaf:
            last[s.child_same] = s.sid
            last[s.child_branch] = s.sid
    return last


def tree_eval_phase(
    graph: CSRGraph, template: TreeTemplate, fp: Fingerprint, q_start: int, n2: int,
    specs: Sequence[SubtreeSpec] = None,
) -> np.ndarray:
    """Evaluate the k-tree polynomial for iterations ``[q_start, q_start+n2)``.

    Returns ``(n2,)``: per-iteration values of ``sum_i P(i, H)``.
    """
    if fp.k != template.k:
        raise ConfigurationError(
            f"fingerprint k={fp.k} does not match template k={template.k}"
        )
    if fp.levels < template.k:
        raise ConfigurationError(
            f"tree evaluation needs one fingerprint level per template node "
            f"({template.k}); fingerprint has {fp.levels}"
        )
    field = fp.field
    if specs is None:
        specs = decompose_template(template)
    last = _last_use(specs)
    values: Dict[int, np.ndarray] = {}
    for s in specs:
        if s.is_leaf:
            values[s.sid] = fp.level_base_block(s.root, q_start, n2)
        else:
            gathered = values[s.child_branch][graph.indices]
            acc = xor_segment_reduce(gathered, graph.indptr)
            values[s.sid] = field.mul(values[s.child_same], acc)
            # free children whose last consumer was this spec
            for c in (s.child_same, s.child_branch):
                if last.get(c) == s.sid and c != s.sid:
                    values.pop(c, None)
    root_vals = values[specs[-1].sid]
    return field.xor_sum(root_vals, axis=0)


def tree_phase_value(
    graph: CSRGraph, template: TreeTemplate, fp: Fingerprint, q_start: int, n2: int,
    specs: Sequence[SubtreeSpec] = None,
) -> int:
    """The phase's scalar ``SUM_t`` for the tree polynomial."""
    return int(np.bitwise_xor.reduce(tree_eval_phase(graph, template, fp, q_start, n2, specs)))


def make_tree_phase_program(
    views: List[HaloView], template: TreeTemplate, fp: Fingerprint, q_start: int, n2: int,
    specs: Sequence[SubtreeSpec] = None,
):
    """SPMD program for one k-tree phase.

    The message pattern generalizes the path program: before evaluating a
    composite spec, the branch child's boundary values are halo-exchanged
    (once per spec, batched over ``N_2`` iterations).  Tags carry the spec
    id so overlapping exchanges of different subtrees cannot mix.
    """
    field = fp.field
    if specs is None:
        specs = decompose_template(template)
    branch_children = sorted({s.child_branch for s in specs if not s.is_leaf})
    specs_local = list(specs)
    last = _last_use(specs_local)

    def program(ctx):
        view = views[ctx.rank]
        own_vals: Dict[int, np.ndarray] = {}
        ghost_vals: Dict[int, np.ndarray] = {}
        for s in specs_local:
            if s.is_leaf:
                own_vals[s.sid] = fp.level_base_block(s.root, q_start, n2, nodes=view.own)
            else:
                if ctx.tracer is not None:
                    ctx.annotate(f"subtree{s.sid}")
                b = s.child_branch
                if b not in ghost_vals:
                    # halo-exchange the branch child's boundary values
                    gv = np.zeros((view.n_ghost, n2), dtype=field.dtype)
                    src = own_vals[b]
                    for peer, idxs in view.send_lists.items():
                        yield Send(peer, ("t", b), src[idxs])
                    for peer, slots in view.recv_lists.items():
                        msg = yield Recv(peer, ("t", b))
                        gv[slots] = msg
                    ghost_vals[b] = gv
                combined = np.concatenate([own_vals[b], ghost_vals[b]], axis=0)
                gathered = combined[view.indices]
                acc = xor_segment_reduce(gathered, view.indptr)
                own_vals[s.sid] = field.mul(own_vals[s.child_same], acc)
                for c in (s.child_same, s.child_branch):
                    if last.get(c) == s.sid:
                        own_vals.pop(c, None)
                        ghost_vals.pop(c, None)
        root_vals = own_vals[specs_local[-1].sid]
        local = int(np.bitwise_xor.reduce(field.xor_sum(root_vals, axis=0))) if view.n_own else 0
        total = yield AllReduce(np.uint64(local), op="xor", nbytes=8)
        return int(total)

    return program


def make_tree_phase_program_overlapped(
    views: List[HaloView], template: TreeTemplate, fp: Fingerprint, q_start: int, n2: int,
    specs: Sequence[SubtreeSpec] = None,
):
    """Communication-overlapping k-tree phase program.

    Before evaluating a composite spec, the branch child's boundary values
    are sent and receives are posted; the own-column half of the neighbour
    reduction runs in the overlap window, and the ghost-column half folds
    in after the waits (XOR composes the halves exactly).  Bit-identical
    to :func:`make_tree_phase_program`.
    """
    field = fp.field
    if specs is None:
        specs = decompose_template(template)
    specs_local = list(specs)
    last = _last_use(specs_local)

    def program(ctx):
        view = views[ctx.rank]
        iptr_own, idx_own, iptr_gh, idx_gh = view.split_adjacency()
        own_vals: Dict[int, np.ndarray] = {}
        ghost_vals: Dict[int, np.ndarray] = {}
        for s in specs_local:
            if s.is_leaf:
                own_vals[s.sid] = fp.level_base_block(s.root, q_start, n2, nodes=view.own)
            else:
                if ctx.tracer is not None:
                    ctx.annotate(f"subtree{s.sid}")
                b = s.child_branch
                if b not in ghost_vals:
                    src = own_vals[b]
                    for peer, idxs in view.send_lists.items():
                        yield Send(peer, ("t", b), src[idxs])
                    requests = {}
                    for peer in view.recv_lists:
                        requests[peer] = yield Irecv(peer, ("t", b))
                    # overlap window: own-column half of this spec's reduce
                    acc = xor_segment_reduce(src[idx_own], iptr_own)
                    gv = np.zeros((view.n_ghost, n2), dtype=field.dtype)
                    for peer, slots in view.recv_lists.items():
                        msg = yield Wait(requests[peer])
                        gv[slots] = msg
                    ghost_vals[b] = gv
                else:
                    acc = xor_segment_reduce(own_vals[b][idx_own], iptr_own)
                if len(idx_gh):
                    acc = acc ^ xor_segment_reduce(ghost_vals[b][idx_gh], iptr_gh)
                own_vals[s.sid] = field.mul(own_vals[s.child_same], acc)
                for c in (s.child_same, s.child_branch):
                    if last.get(c) == s.sid:
                        own_vals.pop(c, None)
                        ghost_vals.pop(c, None)
        root_vals = own_vals[specs_local[-1].sid]
        local = int(np.bitwise_xor.reduce(field.xor_sum(root_vals, axis=0))) if view.n_own else 0
        total = yield AllReduce(np.uint64(local), op="xor", nbytes=8)
        return int(total)

    return program
