"""Result dataclasses returned by the MIDAS drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class RoundRecord:
    """Per-round transcript entry: the final field value and its timing."""

    round_index: int
    value: int  # GF(2^l) scalar; nonzero => witness found this round
    virtual_seconds: float = 0.0

    @property
    def hit(self) -> bool:
        return self.value != 0


@dataclass
class DetectionResult:
    """Outcome of a k-path / k-tree detection run.

    ``found`` is the algorithm's answer.  One-sided error: ``found=True`` is
    always correct (a nonzero evaluation certifies a multilinear term);
    ``found=False`` is wrong with probability at most ``eps``.
    """

    problem: str
    k: int
    found: bool
    rounds: List[RoundRecord]
    eps: float
    mode: str = "sequential"
    n_processors: int = 1
    n1: int = 1
    n2: int = 1
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds_run(self) -> int:
        return len(self.rounds)

    @property
    def first_hit_round(self) -> Optional[int]:
        for r in self.rounds:
            if r.hit:
                return r.round_index
        return None

    def summary(self) -> str:
        verdict = "FOUND" if self.found else "not found"
        return (
            f"{self.problem}(k={self.k}): {verdict} after {self.rounds_run} round(s) "
            f"[mode={self.mode}, N={self.n_processors}, N1={self.n1}, N2={self.n2}, "
            f"virtual={self.virtual_seconds:.4f}s, wall={self.wall_seconds:.3f}s]"
        )


@dataclass
class ScanGridResult:
    """Outcome of the scan-statistics grid detection (Algorithm 5).

    ``detected[j, z]`` is True when some connected subgraph of exactly
    ``j`` vertices and total (rounded) weight ``z`` exists — with the same
    one-sided error as :class:`DetectionResult` per cell.
    """

    k: int
    z_max: int
    detected: np.ndarray  # (k+1, z_max+1) bool; rows 0 unused
    rounds_run: int
    eps: float
    mode: str = "sequential"
    n_processors: int = 1
    n1: int = 1
    n2: int = 1
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def feasible_cells(self):
        """Iterate detected (size j, weight z) pairs."""
        js, zs = np.nonzero(self.detected)
        return list(zip(js.tolist(), zs.tolist()))

    def best_cell(self, score_fn):
        """Maximize ``score_fn(weight=z, size=j)`` over detected cells.

        Returns ``(best_score, j, z)`` or ``(-inf, None, None)`` when the
        grid is empty.
        """
        best = (-np.inf, None, None)
        for j, z in self.feasible_cells():
            s = float(score_fn(z, j))
            if s > best[0]:
                best = (s, j, z)
        return best

    def summary(self) -> str:
        return (
            f"scan-grid(k={self.k}, z<={self.z_max}): {int(self.detected.sum())} feasible "
            f"(size, weight) cells after {self.rounds_run} round(s) "
            f"[mode={self.mode}, virtual={self.virtual_seconds:.4f}s]"
        )
