"""PAREVALUATEPOLYNOMIALSCANSTAT (paper Algorithm 5), vectorized.

The scan-statistics polynomial tracks connected subgraphs by *size* ``j``
and integer *weight* ``z``:

    ``P(i, 1, z) = x_i`` for ``z = w(i)``, else 0
    ``P(i, j, z) = sum_u sum_{j'} sum_{z'} P(i, j', z') P(u, j-j', z-z')``

Because multiplication distributes over the neighbour sum, the inner loop
factorizes: with ``S(u-side) = XOR-segment-reduce of P(., j-j', .)`` the
update is a *z-convolution* of two ``(n, Z+1, N_2)`` arrays, vectorized
over nodes, weight, and the iteration batch.

Two deliberate deviations from the raw pseudocode (documented in
DESIGN.md):

* a random join coefficient ``y[i, j]`` multiplies each size-``j``
  combination — without it, the two build orders of a single edge
  ``{a, b}`` produce identical monomials and cancel in characteristic 2;
* only the size row ``j = dim`` (the group dimension this evaluation runs
  with) is returned, matching the paper's ``return sum_q sum_i
  P(i,q,k,z)``: rows ``j < dim`` always sum to zero over ``2^dim``
  iterations (a rank-``j`` term survives ``2^{dim-j}`` iterations — an even
  count).  The driver assembles the full (size, weight) grid from one run
  per size.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.ff.fingerprint import Fingerprint
from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.core.halo import HaloView
from repro.runtime.comm import AllReduce, Irecv, Recv, Send, Wait


def _check_weights(graph: CSRGraph, weights: np.ndarray, z_max: int) -> np.ndarray:
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(
            f"weights must be one integer per vertex ({graph.n}), got shape {w.shape}"
        )
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative integers")
    if z_max < 0:
        raise ConfigurationError(f"z_max must be >= 0, got {z_max}")
    return w


def _base_row(fp: Fingerprint, w: np.ndarray, z_max: int, q_start: int, n2: int,
              nodes: np.ndarray = None) -> np.ndarray:
    """``P(., 1, ., .)`` as an (n_rows, Z+1, n2) array."""
    base = fp.level_base_block(0, q_start, n2, nodes=nodes)  # (rows, n2)
    rows = base.shape[0]
    wloc = w if nodes is None else w[np.asarray(nodes, np.int64)]
    out = np.zeros((rows, z_max + 1, n2), dtype=fp.field.dtype)
    ok = wloc <= z_max
    idx = np.nonzero(ok)[0]
    out[idx, wloc[idx], :] = base[idx]
    return out


def _advance_size(field, p_by_size: Dict[int, np.ndarray], s_by_size: Dict[int, np.ndarray],
                  j: int, z_max: int, join_coeff: np.ndarray) -> np.ndarray:
    """Compute ``P(., j, ., .)`` from smaller sizes (shared by both modes).

    ``p_by_size[j']`` are own-row arrays, ``s_by_size[j']`` the
    neighbour-summed arrays aligned with the same rows.
    """
    some = next(iter(p_by_size.values()))
    acc = np.zeros_like(some)
    for j1 in range(1, j):
        j2 = j - j1
        a = p_by_size[j1]
        s = s_by_size[j2]
        for z1 in range(z_max + 1):
            col = a[:, z1, :]
            if not col.any():
                continue
            acc[:, z1:, :] ^= field.mul(col[:, None, :], s[:, : z_max + 1 - z1, :])
    return field.mul(join_coeff[:, None, None], acc)


def scanstat_eval_phase(
    graph: CSRGraph, weights: np.ndarray, fp: Fingerprint, z_max: int,
    q_start: int, n2: int,
) -> np.ndarray:
    """Evaluate ``P(dim, z)`` for all ``z`` over one iteration window.

    ``fp.k`` is the size being detected (the group dimension).  Returns a
    ``(z_max + 1, n2)`` field array: ``out[z, t]`` is
    ``sum_i P(i, q_start + t, dim, z)``.
    """
    field = fp.field
    dim = fp.k
    if fp.levels < dim + 1:
        raise ConfigurationError(
            f"scan-stat evaluation needs {dim + 1} fingerprint levels (base + join "
            f"coefficients per size), fingerprint has {fp.levels}"
        )
    w = _check_weights(graph, weights, z_max)
    p: Dict[int, np.ndarray] = {1: _base_row(fp, w, z_max, q_start, n2)}
    s: Dict[int, np.ndarray] = {}
    for j in range(2, dim + 1):
        j_prev = j - 1
        gathered = p[j_prev][graph.indices]  # (nnz, Z+1, n2)
        s[j_prev] = xor_segment_reduce(gathered, graph.indptr)
        p[j] = _advance_size(field, p, s, j, z_max, fp.y[:, j])
    out = field.xor_sum(p[dim], axis=0)  # (Z+1, n2)
    return out


def scanstat_phase_value(
    graph: CSRGraph, weights: np.ndarray, fp: Fingerprint, z_max: int,
    q_start: int, n2: int,
) -> np.ndarray:
    """Per-weight scalar contributions of the phase: ``(z_max + 1,)``."""
    vals = scanstat_eval_phase(graph, weights, fp, z_max, q_start, n2)
    return np.bitwise_xor.reduce(vals, axis=1)


def make_scanstat_phase_program(
    views: List[HaloView], weights: np.ndarray, fp: Fingerprint, z_max: int,
    q_start: int, n2: int,
):
    """SPMD program for one scan-statistics phase.

    Identical structure to the path program, but each level's halo message
    carries the whole weight axis: ``(boundary, Z+1, N_2)`` field elements —
    the ``W(V)`` factor in Lemma 3's communication bound.
    """
    field = fp.field
    dim = fp.k
    w = np.asarray(weights, dtype=np.int64)

    def program(ctx):
        view = views[ctx.rank]
        p_own: Dict[int, np.ndarray] = {
            1: _base_row(fp, w, z_max, q_start, n2, nodes=view.own)
        }
        s_own: Dict[int, np.ndarray] = {}
        join = fp.y[:, : dim + 1][np.asarray(view.own, np.int64)]
        for j in range(2, dim + 1):
            if ctx.tracer is not None:
                ctx.annotate(f"size{j}")
            j_prev = j - 1
            src = p_own[j_prev]
            ghost = np.zeros((view.n_ghost, z_max + 1, n2), dtype=field.dtype)
            for peer, idxs in view.send_lists.items():
                yield Send(peer, ("s", j_prev), src[idxs])
            for peer, slots in view.recv_lists.items():
                msg = yield Recv(peer, ("s", j_prev))
                ghost[slots] = msg
            combined = np.concatenate([src, ghost], axis=0)
            gathered = combined[view.indices]
            s_own[j_prev] = xor_segment_reduce(gathered, view.indptr)
            p_own[j] = _advance_size(field, p_own, s_own, j, z_max, join[:, j])
        local = (
            np.bitwise_xor.reduce(field.xor_sum(p_own[dim], axis=0), axis=1)
            if view.n_own
            else np.zeros(z_max + 1, dtype=field.dtype)
        )
        total = yield AllReduce(local.astype(np.uint8), op="xor")
        return np.asarray(total, dtype=field.dtype)

    return program


def make_scanstat_phase_program_overlapped(
    views: List[HaloView], weights: np.ndarray, fp: Fingerprint, z_max: int,
    q_start: int, n2: int,
):
    """Communication-overlapping scan-statistics phase program.

    Per size level: send boundary values, post receives, reduce the
    own-column half of the neighbour sum (over the whole weight axis) in
    the overlap window, then fold in the ghost half after the waits.
    Bit-identical to :func:`make_scanstat_phase_program`; the hideable
    window is largest here because the messages carry the full ``Z+1``
    weight axis (Lemma 3's ``W(V)`` factor).
    """
    field = fp.field
    dim = fp.k
    w = np.asarray(weights, dtype=np.int64)

    def program(ctx):
        view = views[ctx.rank]
        iptr_own, idx_own, iptr_gh, idx_gh = view.split_adjacency()
        p_own: Dict[int, np.ndarray] = {
            1: _base_row(fp, w, z_max, q_start, n2, nodes=view.own)
        }
        s_own: Dict[int, np.ndarray] = {}
        join = fp.y[:, : dim + 1][np.asarray(view.own, np.int64)]
        for j in range(2, dim + 1):
            if ctx.tracer is not None:
                ctx.annotate(f"size{j}")
            j_prev = j - 1
            src = p_own[j_prev]
            for peer, idxs in view.send_lists.items():
                yield Send(peer, ("s", j_prev), src[idxs])
            requests = {}
            for peer in view.recv_lists:
                requests[peer] = yield Irecv(peer, ("s", j_prev))
            acc = xor_segment_reduce(src[idx_own], iptr_own)
            ghost = np.zeros((view.n_ghost, z_max + 1, n2), dtype=field.dtype)
            for peer, slots in view.recv_lists.items():
                msg = yield Wait(requests[peer])
                ghost[slots] = msg
            if len(idx_gh):
                acc = acc ^ xor_segment_reduce(ghost[idx_gh], iptr_gh)
            s_own[j_prev] = acc
            p_own[j] = _advance_size(field, p_own, s_own, j, z_max, join[:, j])
        local = (
            np.bitwise_xor.reduce(field.xor_sum(p_own[dim], axis=0), axis=1)
            if view.n_own
            else np.zeros(z_max + 1, dtype=field.dtype)
        )
        total = yield AllReduce(local.astype(np.uint8), op="xor")
        return np.asarray(total, dtype=field.dtype)

    return program
