"""MIDAS core: the paper's contribution.

* :mod:`repro.core.schedule` — the round/batch/phase decomposition (Fig 1);
* :mod:`repro.core.halo` — per-rank partitioned graph views with the
  boundary send/recv lists that Algorithm 3's message pattern needs;
* :mod:`repro.core.evaluator_path` — PAREVALUATEPOLYNOMIALPATH (Alg 3);
* :mod:`repro.core.evaluator_tree` — PAREVALUATEPOLYNOMIALTREE (Alg 4);
* :mod:`repro.core.evaluator_scanstat` — PAREVALUATEPOLYNOMIALSCANSTAT
  (Alg 5);
* :mod:`repro.core.midas` — the MIDAS driver (Alg 2) in three modes:
  ``sequential`` (vectorized single-process), ``simulated`` (real SPMD
  execution on the runtime simulator), ``modeled`` (sequential detection +
  analytic virtual time for cluster-scale sweeps);
* :mod:`repro.core.model` — the analytic performance model (Theorem 2 with
  calibrated constants);
* :mod:`repro.core.witness` — witness extraction by deletion peeling.
"""

from repro.core.halo import HaloView, build_halo_views
from repro.core.mld import (
    CircuitStep,
    MLDCircuit,
    algorithm1_reference,
    detect_multilinear,
)
from repro.core.midas import (
    MidasRuntime,
    detect_path,
    detect_scan_cell,
    detect_tree,
    max_weight_path,
    scan_grid,
    sequential_detect_path,
)
from repro.core.model import PerformanceEstimate, estimate_runtime
from repro.core.result import DetectionResult, ScanGridResult
from repro.core.schedule import PhaseSchedule
from repro.core.witness import extract_witness

__all__ = [
    "HaloView",
    "build_halo_views",
    "CircuitStep",
    "MLDCircuit",
    "algorithm1_reference",
    "detect_multilinear",
    "MidasRuntime",
    "detect_path",
    "detect_scan_cell",
    "detect_tree",
    "max_weight_path",
    "scan_grid",
    "sequential_detect_path",
    "PerformanceEstimate",
    "estimate_runtime",
    "DetectionResult",
    "ScanGridResult",
    "PhaseSchedule",
    "extract_witness",
]
