"""MIDAS core: the paper's contribution.

* :mod:`repro.core.schedule` — the round/batch/phase decomposition (Fig 1);
* :mod:`repro.core.halo` — per-rank partitioned graph views with the
  boundary send/recv lists that Algorithm 3's message pattern needs;
* :mod:`repro.core.evaluator_path` — PAREVALUATEPOLYNOMIALPATH (Alg 3);
* :mod:`repro.core.evaluator_tree` — PAREVALUATEPOLYNOMIALTREE (Alg 4);
* :mod:`repro.core.evaluator_scanstat` — PAREVALUATEPOLYNOMIALSCANSTAT
  (Alg 5);
* :mod:`repro.core.problems` — each application as a :class:`ProblemSpec`
  (data, not a bespoke driver);
* :mod:`repro.core.engine` — the unified detection engine: one
  round → batch → phase loop with pluggable execution backends
  (``sequential``, ``simulated``, ``modeled``, ``threaded``);
* :mod:`repro.core.midas` — the MIDAS drivers (Alg 2), thin wrappers
  over the engine;
* :mod:`repro.core.model` — the analytic performance model (Theorem 2 with
  calibrated constants);
* :mod:`repro.core.witness` — witness extraction by deletion peeling.
"""

from repro.core.engine import (
    DetectionEngine,
    ExecutionBackend,
    ModeledBackend,
    SequentialBackend,
    SimulatedBackend,
    ThreadedBackend,
)
from repro.core.halo import HaloView, build_halo_views
from repro.core.mld import (
    CircuitStep,
    MLDCircuit,
    algorithm1_reference,
    detect_multilinear,
)
from repro.core.midas import (
    MidasRuntime,
    detect_path,
    detect_scan_cell,
    detect_tree,
    max_weight_path,
    scan_grid,
    sequential_detect_path,
)
from repro.core.model import PerformanceEstimate, estimate_runtime
from repro.core.problems import (
    ProblemSpec,
    path_problem,
    scanstat_problem,
    tree_problem,
    weighted_path_problem,
)
from repro.core.result import DetectionResult, ScanGridResult
from repro.core.schedule import PhaseSchedule
from repro.core.witness import extract_witness

__all__ = [
    "DetectionEngine",
    "ExecutionBackend",
    "SequentialBackend",
    "SimulatedBackend",
    "ModeledBackend",
    "ThreadedBackend",
    "ProblemSpec",
    "path_problem",
    "tree_problem",
    "weighted_path_problem",
    "scanstat_problem",
    "HaloView",
    "build_halo_views",
    "CircuitStep",
    "MLDCircuit",
    "algorithm1_reference",
    "detect_multilinear",
    "MidasRuntime",
    "detect_path",
    "detect_scan_cell",
    "detect_tree",
    "max_weight_path",
    "scan_grid",
    "sequential_detect_path",
    "PerformanceEstimate",
    "estimate_runtime",
    "DetectionResult",
    "ScanGridResult",
    "PhaseSchedule",
    "extract_witness",
]
