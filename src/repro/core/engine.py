"""The unified detection engine: one round → batch → phase loop for all
MIDAS problems, with pluggable execution backends.

The paper's contribution is a single execution discipline (Fig. 1,
Table I) applied uniformly to every application.  This module writes
that discipline exactly once:

* :class:`MidasRuntime` — the user-facing execution configuration
  (mode, ``(N, N1, N2)``, cluster, observability, fault tolerance);
* :class:`DetectionEngine` — owns amplification rounds, seeded RNG-stream
  derivation, metrics families, run-level trace splicing, fault-tolerance
  accounting, and the per-stage schedule; consumes a
  :class:`~repro.core.problems.ProblemSpec`;
* :class:`ExecutionBackend` subclasses — how one round's phases actually
  execute:

  ``SequentialBackend``
      Single-process vectorized evaluation, one phase at a time.
  ``ThreadedBackend``
      A round's independent phase windows run concurrently on a
      :class:`~concurrent.futures.ThreadPoolExecutor`.  The GF(2^l)
      kernels are numpy table lookups that release the GIL, and XOR
      accumulation is commutative and associative, so results are
      bit-identical to sequential regardless of completion order while
      wall-clock drops on multi-core hosts.
  ``SimulatedBackend``
      The real SPMD decomposition on the runtime simulator, with halo
      messages, XOR all-reduces, checkpoint/retry under fault injection,
      and virtual-time accounting.
  ``ModeledBackend``
      Sequential evaluation plus the analytic Theorem-2 model for
      virtual time (cluster-scale sweeps).

Every driver in :mod:`repro.core.midas` is a thin wrapper over this
engine, so every feature — overlap, fault tolerance, metrics, tracing,
new backends — lands here exactly once and applies to all problems.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from repro.core.model import PartitionStats, PerformanceEstimate, estimate_runtime
from repro.core.halo import build_halo_views
from repro.core.problems import ProblemSpec, Value
from repro.core.schedule import PhaseSchedule, pow2_floor, rounds_for_epsilon
from repro.errors import (
    ConfigurationError,
    FaultInjectedError,
    RankFailedError,
    SanitizerError,
    WatchdogExpired,
    WorkerCrashedError,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import make_partition
from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.runtime.cluster import VirtualCluster, laptop
from repro.runtime.costmodel import KernelCalibration
from repro.runtime.durable import decode_value
from repro.runtime.faults import FaultInjector, FaultPlan, backoff_jitter
from repro.runtime.scheduler import Simulator
from repro.runtime.tracing import Scope, TraceRecorder
from repro.util.log import get_logger
from repro.util.rng import RngStream
from repro.util.timing import Stopwatch

_LOG = get_logger(__name__)

_MODES = ("sequential", "simulated", "modeled", "threaded", "process")
_SANITIZE = ("off", "warn", "strict")
_KERNELS = ("auto", "table", "logexp", "bitsliced")


@dataclass
class MidasRuntime:
    """Parallel execution configuration for the MIDAS driver.

    ``n2=None`` picks a sensible default: the figures' BSMax
    (``2^k N1 / N``) in simulated/modeled modes, a 64-wide batch in
    sequential and threaded modes.  ``overlap=True`` uses the
    communication-overlapping halo exchange (Irecv/Wait with
    local/ghost-split reductions) in simulated runs of all evaluators;
    results are bit-identical either way.

    ``mode="threaded"`` executes each round's independent phase windows
    concurrently on ``workers`` threads (default: the host's CPU count)
    for real wall-clock speedup on multi-core hosts; detection output is
    bit-identical to ``sequential`` (property-tested).

    ``mode="process"`` runs the same phase windows on ``workers``
    *processes* — past the GIL that caps threaded speedup on the
    inter-ufunc glue.  The graph's CSR arrays are published once via
    shared memory, workers rebuild specs from their picklable recipes,
    and the parent XOR-merges phase values in completion order: the same
    commutativity argument, the same bit-identical guarantee
    (property-tested).  ``process_start`` selects the multiprocessing
    start method (``None`` = platform default, e.g. ``fork`` on Linux).
    A worker death (segfault, OOM-kill) surfaces as a typed
    :class:`~repro.errors.WorkerCrashedError`, never a hang.

    ``kernel`` picks the GF(2^l) kernel strategy: ``"table"``,
    ``"logexp"``, ``"bitsliced"``, or ``"auto"`` — the default — which
    asks the kernel calibration per ``(m, N2)`` window
    (:meth:`resolve_kernel`), choosing bit-sliced planes for
    plane-resident evaluators at wide batches and the dense table
    otherwise.  All kernels are bit-identical (property-tested); only
    wall-clock changes.

    Observability: attach a :class:`~repro.runtime.tracing.TraceRecorder`
    as ``recorder`` to collect a run-level, schedule-scoped timeline
    (per-phase simulator recordings spliced onto global ranks and a
    global clock; per-phase wall timings in other modes).  Driver
    metrics always land in ``metrics`` when set, else the process-wide
    :func:`repro.obs.metrics.get_default_registry` — the same registry
    the kernel-calibration instrumentation writes to.  Neither affects
    detection output (property-tested bit-identical).

    Fault tolerance (simulated mode only): attach a
    :class:`~repro.runtime.faults.FaultPlan` as ``fault_plan`` and the
    engine runs every phase window under injection, checkpointing
    completed windows and re-executing only the ones whose simulator run
    died with a :class:`~repro.errors.FaultInjectedError` — with the
    same seeded randomness, so results under any recoverable plan are
    bit-identical to the fault-free run.  Retries are bounded by
    ``max_retries`` per window; each retry adds an exponential-backoff
    penalty of ``retry_backoff * 2^attempt`` virtual seconds to the
    makespan, modeling failure detection + restart cost.

    Sanitization: ``sanitize="warn"`` or ``"strict"`` attaches a
    :class:`~repro.sanitize.CommSanitizer` to every simulated run (comm
    discipline checked on every yielded op; strict raises a typed
    :class:`~repro.errors.SanitizerError` at the first violation, warn
    accumulates a report) and stamps a ``sanitizer`` section into result
    details / the RunReport plus ``sanitizer_*`` metric families.
    Sanitizer hooks charge no virtual time, so sanitized runs keep
    identical clocks and results.  ``digest_log`` optionally attaches a
    :class:`~repro.sanitize.DigestLog` that records per-phase and
    per-round accumulator digests for deterministic-replay verification
    (:func:`repro.sanitize.verify_replay`).
    """

    n_processors: int = 1
    n1: int = 1
    n2: Optional[int] = None
    mode: str = "sequential"
    cluster: Optional[VirtualCluster] = None
    partition_method: str = "random"
    calibration: Optional[KernelCalibration] = None
    measure_compute: bool = False
    trace: bool = False
    partition_seed: int = 7777
    overlap: bool = False
    recorder: Optional[TraceRecorder] = None
    metrics: Optional[MetricsRegistry] = None
    fault_plan: Optional[FaultPlan] = None
    max_retries: int = 5
    retry_backoff: float = 1e-3
    workers: Optional[int] = None
    kernel: str = "auto"
    process_start: Optional[str] = None
    sanitize: str = "off"
    digest_log: Optional[object] = None
    live: Optional[object] = None
    live_port: Optional[int] = None
    progress_path: Optional[str] = None
    profiler: Optional[object] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    resume: bool = False
    allow_restart: bool = False
    checkpoint: Optional[object] = None
    deadline: Optional[float] = None
    hang_timeout: Optional[float] = None
    watchdog: Optional[object] = None
    session: Optional["EngineSession"] = None
    qtrace: Optional[object] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.sanitize not in _SANITIZE:
            raise ConfigurationError(
                f"sanitize must be one of {_SANITIZE}, got {self.sanitize!r}"
            )
        if self.fault_plan is not None and self.mode != "simulated":
            raise ConfigurationError(
                f"fault_plan requires mode='simulated' (faults are injected into "
                f"the runtime simulator), got mode={self.mode!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.kernel not in _KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {_KERNELS}, got {self.kernel!r}"
            )
        if self.process_start is not None:
            import multiprocessing

            valid = multiprocessing.get_all_start_methods()
            if self.process_start not in valid:
                raise ConfigurationError(
                    f"process_start must be one of {valid}, got {self.process_start!r}"
                )
        if self.live_port is not None and not (0 <= self.live_port <= 65535):
            raise ConfigurationError(
                f"live_port must be a port number (0 = ephemeral), got {self.live_port}"
            )
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.checkpoint_dir is None and self.checkpoint is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint_dir (or checkpoint manager)"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {self.deadline}")
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ConfigurationError(
                f"hang_timeout must be > 0, got {self.hang_timeout}"
            )

    def schedule_for(self, k: int) -> PhaseSchedule:
        total = 1 << k
        n2 = self.n2
        if n2 is None:
            if self.mode in ("sequential", "threaded", "process"):
                n2 = min(total, 64)
            else:
                n2 = PhaseSchedule.bs_max(k, self.n_processors, self.n1)
        # the divisors of 2^k are exactly the powers of two, so the largest
        # divisor <= n2 is the largest power of two <= n2
        n2 = pow2_floor(max(1, min(n2, total)))
        return PhaseSchedule(k, self.n_processors, self.n1, n2)

    def get_cluster(self) -> VirtualCluster:
        if self.cluster is not None:
            return self.cluster
        # a generously sized default so any (N, N1) fits
        nodes = max(1, -(-self.n_processors // 8))
        return laptop(nodes)

    def get_calibration(self) -> KernelCalibration:
        if self.calibration is not None:
            return self.calibration
        if self.session is not None:
            return self.session.get_calibration()
        return KernelCalibration.synthetic()

    def get_metrics(self) -> MetricsRegistry:
        return self.metrics if self.metrics is not None else get_default_registry()

    def get_recorder(self) -> Optional[TraceRecorder]:
        """The attached recorder, or None when absent/disabled."""
        rec = self.recorder
        return rec if (rec is not None and rec.enabled) else None

    def get_workers(self) -> int:
        """Worker count for the threaded and process backends."""
        return self.workers if self.workers is not None else (os.cpu_count() or 1)

    def resolve_kernel(self, m: int, n2: int, plane: bool = False) -> str:
        """The GF kernel strategy for a ``(m, n2)`` evaluation window.

        An explicit ``kernel`` wins unconditionally; ``"auto"`` consults
        the kernel calibration.  ``plane=True`` means the caller's
        evaluator can keep the DP state plane-resident (currently the
        k-path evaluator) — only then may auto pick ``"bitsliced"``, and
        only in the real-execution modes (the simulated/modeled SPMD
        programs evaluate element-wise).
        """
        if self.kernel != "auto":
            return self.kernel
        plane_resident = plane and self.mode in ("sequential", "threaded", "process")
        return self.get_calibration().choose_kernel(m, n2, plane_resident=plane_resident)

    def get_live(self):
        """The live telemetry bus, built lazily from ``live`` /
        ``live_port`` / ``progress_path`` (``None`` when none are set).

        A ``live_port`` starts the HTTP exporter immediately; the bound
        port (useful with ``live_port=0``) is ``rt.live.port``.  The bus
        is stored back on the runtime so every engine sharing this
        runtime reports into one cumulative RunStatus.
        """
        if self.live is None and (self.live_port is not None
                                  or self.progress_path is not None):
            from repro.obs.live import LiveRun  # lazy: optional layer

            self.live = LiveRun(progress_path=self.progress_path,
                                metrics=self.get_metrics())
        if self.live is not None and self.live_port is not None:
            self.live.serve(self.live_port)  # idempotent
        return self.live

    def get_profiler(self):
        """The wall-clock profiler (always present; created on first use).

        Every engine run is profiled by default — span overhead is
        nanoseconds against the kernels it wraps (see
        :mod:`repro.obs.profile`) and the ``wall_*`` RunRecord values
        depend on it.
        """
        if self.profiler is None:
            from repro.obs.profile import WallProfiler  # lazy: optional layer

            self.profiler = WallProfiler()
        return self.profiler

    def get_checkpoint(self):
        """The durable checkpoint manager, built lazily from
        ``checkpoint_dir`` (``None`` when checkpointing is off).

        Construction *loads* existing state when ``resume=True`` — so a
        corrupt checkpoint surfaces as a typed
        :class:`~repro.errors.CheckpointCorruptError` here, before any
        work starts, unless ``allow_restart`` discards it.  The manager
        is stored back on the runtime so every engine sharing this
        runtime checkpoints into one state file.
        """
        if self.checkpoint is None and self.checkpoint_dir is not None:
            from repro.runtime.durable import CheckpointManager  # lazy: optional

            self.checkpoint = CheckpointManager(
                self.checkpoint_dir, every=self.checkpoint_every,
                resume=self.resume, allow_restart=self.allow_restart,
            )
        return self.checkpoint

    def get_watchdog(self):
        """The wall-clock watchdog, built lazily from ``deadline`` /
        ``hang_timeout`` (``None`` when neither is set).  Shared across
        every engine on this runtime: the deadline bounds the whole run,
        not one stage."""
        if self.watchdog is None and (self.deadline is not None
                                      or self.hang_timeout is not None):
            from repro.runtime.durable import Watchdog  # lazy: optional layer

            self.watchdog = Watchdog(deadline=self.deadline,
                                     hang_timeout=self.hang_timeout)
        return self.watchdog

    def close_live(self) -> None:
        """Stop the HTTP exporter, the progress stream, and the watchdog
        monitor thread, if any."""
        if self.live is not None:
            self.live.close()
        if self.watchdog is not None:
            self.watchdog.stop()


def _reduce_cost(rt: MidasRuntime, nbytes: int) -> float:
    cluster = rt.get_cluster()
    return cluster.cost_model(min(rt.n_processors, cluster.total_cores)).collective(
        "allreduce", rt.n_processors, nbytes
    )


class _FaultContext:
    """Per-detection fault-tolerance state: the shared injector, the
    ``fault_*`` metric families, and the resilience accounting that ends
    up in ``details["resilience"]`` / the RunReport.

    ``injector`` is ``None`` when no plan is attached — the phase runner
    then degenerates to a single plain attempt with zero overhead.
    """

    def __init__(self, rt: MidasRuntime, reg: MetricsRegistry, problem: str) -> None:
        self.problem = problem
        self.injector = FaultInjector(rt.fault_plan) if rt.fault_plan else None
        self.max_retries = rt.max_retries
        self.backoff0 = rt.retry_backoff
        self.injected_ctr = reg.counter(
            "fault_injected_total", "Faults fired by the injector, by kind"
        )
        self.failures_ctr = reg.counter(
            "fault_phase_failures_total", "Phase attempts killed by injected faults"
        )
        self.retries_ctr = reg.counter(
            "fault_retries_total", "Phase re-executions after a fault"
        ).labels(problem=problem)
        self.lost_ctr = reg.counter(
            "fault_work_lost_seconds_total",
            "Virtual seconds of partial work discarded with failed attempts",
        ).labels(problem=problem)
        self.backoff_ctr = reg.counter(
            "fault_backoff_seconds_total",
            "Virtual seconds spent in exponential backoff before retries",
        ).labels(problem=problem)
        self.recomputed_ctr = reg.counter(
            "fault_work_recomputed_seconds_total",
            "Virtual seconds of successful re-execution after faults",
        ).labels(problem=problem)
        # running totals for the resilience report
        self.injected: dict = {}
        self.phase_failures = 0
        self.retries = 0
        self.work_lost = 0.0
        self.backoff_seconds = 0.0
        self.work_recomputed = 0.0

    def record_injected(self, counts: dict) -> None:
        for kind, n in counts.items():
            self.injected_ctr.labels(kind=kind, problem=self.problem).inc(n)
            self.injected[kind] = self.injected.get(kind, 0) + n

    def resilience(self, virtual_total: float) -> dict:
        """The RunReport resilience section (see module docs)."""
        overhead = self.work_lost + self.backoff_seconds
        clean = max(virtual_total - overhead, 0.0)
        return {
            "faults_injected": dict(self.injected),
            "phase_failures": self.phase_failures,
            "retries": self.retries,
            "work_lost_seconds": self.work_lost,
            "work_recomputed_seconds": self.work_recomputed,
            "backoff_seconds": self.backoff_seconds,
            "makespan_overhead_seconds": overhead,
            "overhead_fraction": overhead / clean if clean > 0 else 0.0,
        }


def _run_phase_resilient(rt: MidasRuntime, fc: _FaultContext, prog, key: str,
                         sim_cost_model, want_trace: bool, sanitizer=None,
                         prof=None, heartbeat=None):
    """Run one phase window to completion under the fault plan.

    Retries the window (same program, seeded-identical randomness) on any
    :class:`~repro.errors.FaultInjectedError` — or on a run that
    "completed" with crashed ranks — up to ``max_retries`` times, adding
    exponential backoff to the virtual clock.  Returns ``(res, sim,
    extra_virtual, failed_events)`` where ``extra_virtual`` is the lost +
    backoff virtual time that precedes the successful attempt on the
    run-level timeline and ``failed_events`` the (shifted-from-zero)
    trace events of failed attempts for splicing.
    """
    attempt = 0
    extra = 0.0
    failed_events = []
    while True:
        run_inj = (
            fc.injector.for_run(f"{key}/a{attempt}") if fc.injector is not None else None
        )
        sim = Simulator(
            rt.n1, cost_model=sim_cost_model,
            measure_compute=rt.measure_compute,
            trace=want_trace, faults=run_inj, sanitizer=sanitizer,
            heartbeat=heartbeat,
        )
        err = None
        res = None
        try:
            if prof is not None:
                # callsite is the problem, not the phase key — one
                # aggregate row per problem, not per phase window
                with prof.span("simulate", phase="rounds", callsite=fc.problem):
                    res = sim.run(prog)
            else:
                res = sim.run(prog)
            if res.crashed_ranks:
                # the program "finished" but ranks died: their partial
                # results are unusable — treat like a failed collective
                err = RankFailedError(
                    f"rank(s) {list(res.crashed_ranks)} crashed during phase {key}",
                    ranks=res.crashed_ranks,
                )
        except FaultInjectedError as exc:
            err = exc
        if run_inj is not None and run_inj.counts:
            fc.record_injected(run_inj.counts)
        if err is None:
            if attempt > 0:
                fc.work_recomputed += res.makespan
                fc.recomputed_ctr.inc(res.makespan)
            return res, sim, extra, failed_events
        fc.phase_failures += 1
        fc.failures_ctr.labels(error=type(err).__name__, problem=fc.problem).inc()
        clocks = sim.partial_clocks
        lost = float(clocks.max()) if len(clocks) else 0.0
        fc.work_lost += lost
        fc.lost_ctr.inc(lost)
        if want_trace:
            failed_events.append(
                (extra, attempt, list(sim.trace.events), list(sim.trace.edges))
            )
        if attempt >= fc.max_retries:
            _LOG.error("phase %s failed after %d attempts: %s", key, attempt + 1, err)
            raise err
        backoff = fc.backoff0 * (2.0 ** attempt)
        if fc.injector is not None:
            # seeded jitter in [0, 1): co-scheduled retries across ranks /
            # processes desynchronize, yet the draw is keyed by (plan seed,
            # phase key, attempt) so every re-execution of this plan — and
            # a crash-resumed one — charges the identical backoff
            backoff *= 1.0 + backoff_jitter(fc.injector.plan.seed, key, attempt)
        extra += lost + backoff
        fc.backoff_seconds += backoff
        fc.backoff_ctr.inc(backoff)
        fc.retries += 1
        fc.retries_ctr.inc()
        attempt += 1
        _LOG.info(
            "phase %s attempt %d failed (%s: %s); retrying with %.3g s backoff",
            key, attempt, type(err).__name__, err, backoff,
        )


@dataclass
class _Stage:
    """One (spec, schedule) evaluation inside a run — e.g. one grid size."""

    spec: ProblemSpec
    sched: PhaseSchedule
    rounds: int
    key_prefix: str  # fault-injection key namespace ("", "size3/", ...)
    label: str  # trace-scope label ("", "size3", ...)
    phase_hist: object  # midas_phase_seconds histogram, pre-labeled
    estimate: Optional[PerformanceEstimate] = None


@dataclass
class StageResult:
    """Per-round accumulator values of one engine stage."""

    values: List[Value]
    virtuals: List[float]
    schedule: PhaseSchedule
    estimate: Optional[PerformanceEstimate] = None

    @property
    def rounds_run(self) -> int:
        return len(self.values)


class ExecutionBackend:
    """How one amplification round's phases execute.

    Subclasses implement :meth:`run_round`; the engine owns everything
    else (round loop, RNG, metrics, accumulation, early exit).
    """

    name = "?"

    def __init__(self, engine: "DetectionEngine") -> None:
        self.engine = engine

    def prepare(self, stage: _Stage) -> None:
        """Per-stage setup (partitioning, pools); may be called repeatedly."""

    def run_round(self, stage: _Stage, fp, ell: int):
        """Execute round ``ell`` and return ``(value, virtual_seconds)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (thread pools)."""


class SequentialBackend(ExecutionBackend):
    """Single-process vectorized evaluation, one phase window at a time."""

    name = "sequential"

    def run_round(self, stage: _Stage, fp, ell: int):
        e = self.engine
        spec, sched = stage.spec, stage.sched
        rec = e.rec
        value = spec.acc_init()
        for t in range(sched.n_phases):
            q0, q1 = sched.phase_window(t)
            p0 = time.perf_counter()
            with e.prof.span("kernel", phase="rounds", callsite=spec.name):
                contrib = spec.seq_phase(fp, q0, sched.n2)
            value = spec.combine(value, contrib)
            dt = time.perf_counter() - p0
            stage.phase_hist.observe(dt)
            e.note_phase(stage, ell, t, contrib)
            if rec is not None:
                rec.record(0, "compute", e.cursor, e.cursor + dt,
                           scope=Scope(round=ell, phase=t, q0=q0, q1=q1,
                                       label=stage.label))
                e.cursor += dt
        return value, 0.0


class ModeledBackend(SequentialBackend):
    """Sequential evaluation; virtual time from the Theorem-2 model."""

    name = "modeled"

    def run_round(self, stage: _Stage, fp, ell: int):
        value, _ = super().run_round(stage, fp, ell)
        virtual = (
            stage.estimate.total_seconds / stage.rounds
            if stage.estimate is not None
            else 0.0
        )
        return value, virtual


class ThreadedBackend(ExecutionBackend):
    """Run a round's independent phase windows concurrently.

    The phase kernels are numpy table-lookup pipelines that release the
    GIL, and the round accumulator is an XOR fold — commutative and
    associative — so accumulating in completion order is bit-identical
    to the sequential order while phases execute in parallel.
    """

    name = "threaded"

    def __init__(self, engine: "DetectionEngine") -> None:
        super().__init__(engine)
        self._pool: Optional[ThreadPoolExecutor] = None

    def prepare(self, stage: _Stage) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.engine.rt.get_workers(),
                thread_name_prefix="midas-phase",
            )

    def run_round(self, stage: _Stage, fp, ell: int):
        e = self.engine
        spec, sched = stage.spec, stage.sched
        round0 = time.perf_counter()

        def run_phase(t: int):
            q0, q1 = sched.phase_window(t)
            p0 = time.perf_counter()
            with e.prof.span("kernel", phase="rounds", callsite=spec.name):
                v = spec.seq_phase(fp, q0, sched.n2)
            p1 = time.perf_counter()
            return t, q0, q1, v, p0 - round0, p1 - round0, threading.current_thread().name

        futures = [self._pool.submit(run_phase, t) for t in range(sched.n_phases)]
        value = spec.acc_init()
        timings = []
        for fut in as_completed(futures):
            t, q0, q1, v, s0, s1, worker = fut.result()
            value = spec.combine(value, v)
            stage.phase_hist.observe(s1 - s0)
            timings.append((t, q0, q1, s0, s1, worker))
            # digests are keyed by phase index, so completion order is moot
            e.note_phase(stage, ell, t, v)
        elapsed = time.perf_counter() - round0
        if e.rec is not None:
            # record after the barrier (the recorder is not thread-safe):
            # one timeline lane per worker thread, wall offsets preserved
            lanes = {w: i for i, w in enumerate(sorted({tm[5] for tm in timings}))}
            for t, q0, q1, s0, s1, worker in sorted(timings, key=lambda tm: tm[3]):
                e.rec.record(lanes[worker], "compute", e.cursor + s0, e.cursor + s1,
                             scope=Scope(round=ell, phase=t, q0=q0, q1=q1,
                                         label=stage.label))
            if timings:
                # the round's accumulator join waits on the slowest phase
                slow = max(timings, key=lambda tm: tm[4])
                e.rec.record_edge("barrier", lanes[slow[5]], e.cursor + slow[4],
                                  0, e.cursor + elapsed, info=f"r{ell} join")
            e.cursor += elapsed
        return value, 0.0

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """Run a round's phase windows on worker *processes* (past the GIL).

    Same contract as :class:`ThreadedBackend` — independent windows, XOR
    merge in completion order, bit-identical to sequential — but the
    phase kernels run in separate interpreters: the graph is shared via
    :class:`~repro.core.process_backend.ProcessPhasePool`'s shared-memory
    segments, specs are rebuilt in workers from their picklable recipes,
    and only the round fingerprint crosses the boundary per task.
    """

    name = "process"

    def __init__(self, engine: "DetectionEngine") -> None:
        super().__init__(engine)
        self._pool = None
        # id(spec) -> (spec, wire descriptor); the spec is pinned so a
        # recycled id cannot alias a stale descriptor across grid cells
        self._wired: Dict[int, tuple] = {}

    def prepare(self, stage: _Stage) -> None:
        if stage.spec.recipe is None:
            raise ConfigurationError(
                f"problem {stage.spec.name!r} carries no recipe and cannot run "
                "on mode='process'; use the factory constructors in "
                "repro.core.problems"
            )
        if self._pool is None:
            from repro.core.process_backend import ProcessPhasePool

            with self.engine.prof.span("pool", phase="setup", callsite="process"):
                self._pool = ProcessPhasePool(
                    self.engine.graph,
                    self.engine.rt.get_workers(),
                    start_method=self.engine.rt.process_start,
                )
        if id(stage.spec) not in self._wired:
            self._wired[id(stage.spec)] = (
                stage.spec, self._pool.wire_spec(stage.spec)
            )

    def run_round(self, stage: _Stage, fp, ell: int):
        from concurrent.futures.process import BrokenProcessPool

        e = self.engine
        spec, sched = stage.spec, stage.sched
        wired = self._wired[id(stage.spec)][1]
        want_spans = e.qt is not None
        round0 = time.perf_counter()
        futures = {
            self._pool.submit(wired, fp, sched.phase_window(t)[0], sched.n2,
                              want_spans): t
            for t in range(sched.n_phases)
        }
        value = spec.acc_init()
        timings = []
        try:
            with e.prof.span("kernel", phase="rounds", callsite=spec.name):
                for fut in as_completed(futures):
                    t = futures[fut]
                    q0, q1 = sched.phase_window(t)
                    raw, p0, p1, pid, wspans, mdelta = fut.result()
                    v = spec.rank_value(raw)
                    value = spec.combine(value, v)
                    if mdelta:
                        # increments made inside the worker (field builds,
                        # calibration, phase counters) land in the parent's
                        # run registry exactly once
                        from repro.obs.metrics import merge_into

                        merge_into(e.reg, mdelta)
                    if wspans and e.qt is not None:
                        e.qt.add_spans(wspans)
                    # perf_counter is CLOCK_MONOTONIC on Linux: worker and
                    # parent stamps share a timebase (clamped for safety)
                    s0, s1 = max(p0 - round0, 0.0), max(p1 - round0, 0.0)
                    stage.phase_hist.observe(s1 - s0)
                    timings.append((t, q0, q1, s0, s1, f"pid-{pid}"))
                    # digests are keyed by phase index: completion order moot
                    e.note_phase(stage, ell, t, v)
        except BrokenProcessPool as exc:
            self.close()
            from repro.obs.qtrace import get_flight_recorder

            fr = get_flight_recorder()
            fr.record("worker_crash", problem=spec.name, round=ell,
                      graph=getattr(e.graph, "name", None),
                      trace_id=e.qt.trace_id if e.qt is not None else None)
            fr.dump("worker_crash", extra={
                "open_spans": [s.to_dict() for s in e.qt.open_spans()]
                if e.qt is not None else [],
            })
            raise WorkerCrashedError(
                f"a worker process died while evaluating round {ell} of "
                f"{spec.name!r} (see stderr for the worker's fate); the "
                "process pool is closed"
            ) from exc
        elapsed = time.perf_counter() - round0
        if e.rec is not None:
            lanes = {w: i for i, w in enumerate(sorted({tm[5] for tm in timings}))}
            for t, q0, q1, s0, s1, worker in sorted(timings, key=lambda tm: tm[3]):
                e.rec.record(lanes[worker], "compute", e.cursor + s0, e.cursor + s1,
                             scope=Scope(round=ell, phase=t, q0=q0, q1=q1,
                                         label=stage.label))
            if timings:
                slow = max(timings, key=lambda tm: tm[4])
                e.rec.record_edge("barrier", lanes[slow[5]], e.cursor + slow[4],
                                  0, e.cursor + elapsed, info=f"r{ell} join")
            e.cursor += elapsed
        return value, 0.0

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._wired = {}


class SimulatedBackend(ExecutionBackend):
    """The real SPMD decomposition on the runtime simulator."""

    name = "simulated"

    def __init__(self, engine: "DetectionEngine") -> None:
        super().__init__(engine)
        self._cost_model = None

    def prepare(self, stage: _Stage) -> None:
        e = self.engine
        e.ensure_views()
        if self._cost_model is None:
            self._cost_model = e.rt.get_cluster().cost_model(e.rt.n1)

    def run_round(self, stage: _Stage, fp, ell: int):
        e = self.engine
        rt, rec, fc = e.rt, e.rec, e.fc
        spec, sched = stage.spec, stage.sched
        factory = (
            spec.program_factory_overlapped if rt.overlap else spec.program_factory
        )
        want_trace = rt.trace or rec is not None
        value = spec.acc_init()
        round_virtual = 0.0
        for bi, batch in enumerate(sched.batches()):
            if rec is not None and e.last_join is not None:
                # phase barrier: every rank of this batch starts when the
                # previous batch's slowest phase (or the round reduce) ended
                jr, jt = e.last_join
                for r in range(len(batch) * rt.n1):
                    rec.record_edge("barrier", jr, jt, r, e.cursor,
                                    info=f"r{ell}/b{bi}")
            batch_time = 0.0
            batch_slow = (0, 0.0)  # (global rank, end time) of slowest phase
            for gi, t in enumerate(batch):
                q0, q1 = sched.phase_window(t)
                prog = factory(e.views, fp, q0, sched.n2)
                res, sim, extra, failed = _run_phase_resilient(
                    rt, fc, prog, f"{stage.key_prefix}r{ell}/b{bi}/p{t}",
                    self._cost_model, want_trace=want_trace, sanitizer=e.san,
                    prof=e.prof, heartbeat=e._hb,
                )
                contrib = spec.rank_value(res.results[0])
                value = spec.combine(value, contrib)
                e.note_phase(stage, ell, t, contrib)
                phase_end = extra + res.makespan
                if phase_end >= batch_time:
                    slow_local = int(res.clocks.argmax()) if len(res.clocks) else 0
                    batch_slow = (gi * rt.n1 + slow_local, phase_end)
                batch_time = max(batch_time, phase_end)
                stage.phase_hist.observe(res.makespan)
                if rt.trace:
                    e.trace_compute += res.summary.total_compute
                    e.trace_comm += res.summary.total_comm
                if rec is not None:
                    # splice the phase's group onto global ranks/clock;
                    # failed attempts first, at their own offsets
                    for shift, attempt, events, fedges in failed:
                        rec.extend(
                            events, t_shift=e.cursor + shift,
                            rank_offset=gi * rt.n1,
                            scope=Scope(round=ell, batch=bi, phase=t, q0=q0,
                                        q1=q1,
                                        label=_compose_label(
                                            stage.label, f"failed-attempt{attempt}")),
                            edges=fedges,
                        )
                    rec.extend(
                        sim.trace.events, t_shift=e.cursor + extra,
                        rank_offset=gi * rt.n1,
                        scope=Scope(round=ell, batch=bi, phase=t, q0=q0, q1=q1,
                                    label=stage.label),
                        edges=sim.trace.edges,
                    )
                if want_trace:
                    e.bytes_ctr.inc(res.summary.total_bytes)
            round_virtual += batch_time
            e.cursor += batch_time
            e.last_join = (batch_slow[0], e.cursor)
        red = _reduce_cost(rt, spec.reduce_nbytes)
        round_virtual += red
        if rec is not None:
            if e.last_join is not None:
                # the round reduce joins on the slowest phase of the batch
                rec.record_edge("collective", e.last_join[0], e.cursor,
                                -1, e.cursor + red, info="round-reduce")
            rec.record(-1, "collective", e.cursor, e.cursor + red,
                       info="round-reduce", nbytes=spec.reduce_nbytes,
                       scope=Scope(round=ell,
                                   label=(f"{stage.label} reduce" if stage.label
                                          else "round-reduce")))
        e.cursor += red
        e.last_join = (-1, e.cursor)
        return value, round_virtual


def _compose_label(stage_label: str, suffix: str) -> str:
    return f"{stage_label} {suffix}" if stage_label else suffix


_BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    "sequential": SequentialBackend,
    "simulated": SimulatedBackend,
    "modeled": ModeledBackend,
    "threaded": ThreadedBackend,
    "process": ProcessBackend,
}


class EngineSession:
    """Reusable prepared stage state for one ``(graph, decomposition)``.

    A one-shot :class:`DetectionEngine` rebuilds the partition, the halo
    views, the GF(2^l) field tables, and the kernel calibration on every
    driver call — fine for a single CLI invocation, wasteful for a
    service answering many queries against the same preloaded graph.  A
    session hoists exactly the state that is (a) expensive to build and
    (b) *immutable once built*:

    * the vertex partition (deterministic in ``(graph, n1,
      partition_method, partition_seed)`` — the session's RNG lineage);
    * the halo views derived from it (simulated mode);
    * GF(2^l) table sets, cached per field degree;
    * the kernel calibration used by the modeled estimates.

    Everything *mutable* during a run — accumulators, round RNG children,
    fault state, live status, the virtual clock — stays on the engine
    (or its runtime), so any number of concurrent engines may share one
    session safely; the internal lock only guards lazy construction.
    Attach a session via ``MidasRuntime(session=...)``; the engine
    validates that the runtime's decomposition matches the session's at
    construction time and raises :class:`ConfigurationError` on drift
    (a partition built for a different ``n1`` would silently skew the
    simulated decomposition).

    Determinism contract: results with and without a session are
    bit-identical — the partition inputs are the same, and field tables
    of equal degree are equal.  Property-tested in
    ``tests/test_engine_sessions.py``.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        n1: int = 1,
        partition_method: str = "random",
        partition_seed: int = 7777,
        calibration: Optional[KernelCalibration] = None,
        kernel: str = "auto",
    ) -> None:
        if kernel not in _KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {_KERNELS}, got {kernel!r}"
            )
        self.graph = graph
        self.n1 = n1
        self.partition_method = partition_method
        self.partition_seed = partition_seed
        self.kernel = kernel
        self._calibration = calibration
        self._partition = None
        self._views = None
        # (field degree, kernel strategy) -> GF2m tables: fields with
        # different kernels are distinct objects (GF2m equality includes
        # the strategy), so they must not share a cache slot
        self._fields: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.uses = 0  # engines ever attached (for /api/service stats)

    @classmethod
    def for_runtime(cls, graph: CSRGraph, rt: "MidasRuntime") -> "EngineSession":
        """A session matching ``rt``'s decomposition knobs."""
        return cls(graph, n1=rt.n1, partition_method=rt.partition_method,
                   partition_seed=rt.partition_seed,
                   calibration=rt.calibration, kernel=rt.kernel)

    def compatible(self, graph: CSRGraph, rt: "MidasRuntime") -> Optional[str]:
        """``None`` when this session may serve ``(graph, rt)``, else the
        human-readable mismatch."""
        if graph is not self.graph:
            return "session was prepared for a different graph object"
        for attr in ("n1", "partition_method", "partition_seed", "kernel"):
            if getattr(rt, attr) != getattr(self, attr):
                return (f"runtime {attr}={getattr(rt, attr)!r} != session "
                        f"{attr}={getattr(self, attr)!r}")
        return None

    def attach(self) -> None:
        with self._lock:
            self.uses += 1

    # ------------------------------------------------------ prepared state
    def ensure_partition(self, prof=None):
        """The session's vertex partition, built once under the lock."""
        with self._lock:
            if self._partition is None:
                span = (prof.span("partition", phase="setup",
                                  callsite=self.partition_method)
                        if prof is not None else _null_span())
                with span:
                    self._partition = make_partition(
                        self.graph, self.n1, self.partition_method,
                        rng=RngStream(self.partition_seed, name="partition"),
                    )
            return self._partition

    def ensure_views(self, prof=None, problem: str = ""):
        """The halo views over :meth:`ensure_partition`, built once."""
        part = self.ensure_partition(prof)
        with self._lock:
            if self._views is None:
                span = (prof.span("halo", phase="setup", callsite=problem)
                        if prof is not None else _null_span())
                with span:
                    self._views = build_halo_views(self.graph, part)
            return self._views

    def field_for_k(self, k: int, strategy: Optional[str] = None):
        """The GF(2^l) table set for iteration exponent ``k``, cached per
        ``(field degree, kernel strategy)`` (many ``k`` share one degree).

        ``strategy`` is the *resolved* kernel for this use site (from
        :meth:`MidasRuntime.resolve_kernel`); ``None`` falls back to the
        session's ``kernel`` knob taken literally (``"auto"`` builds a
        default-strategy field).
        """
        from repro.ff.gf2m import default_field_for_k, field_degree_for_k

        if strategy is None:
            strategy = self.kernel
        deg = field_degree_for_k(k)
        key = (deg, strategy)
        with self._lock:
            fld = self._fields.get(key)
            if fld is None:
                kernel = None if strategy == "auto" else strategy
                fld = self._fields[key] = default_field_for_k(k, kernel_strategy=kernel)
            return fld

    def get_calibration(self) -> KernelCalibration:
        with self._lock:
            if self._calibration is None:
                self._calibration = KernelCalibration.synthetic()
            return self._calibration

    def describe(self) -> dict:
        """JSON-safe session stats for the service's ``/api/service``."""
        with self._lock:
            return {
                "n1": self.n1,
                "partition_method": self.partition_method,
                "partition_seed": self.partition_seed,
                "kernel": self.kernel,
                "partition_built": self._partition is not None,
                "views_built": self._views is not None,
                "fields_cached": sorted(f"{deg}/{strat}" for deg, strat in self._fields),
                "uses": self.uses,
            }


class _null_span:
    """Context-manager no-op stand-in for a profiler span."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class DetectionEngine:
    """The round → batch → phase evaluation loop, written once.

    One engine instance serves one driver call: it owns the lazily built
    partition/halo views, the run-level virtual clock that trace events
    are spliced onto, the shared metric families, and (in simulated mode)
    the fault-tolerance context.  :meth:`run_stage` executes the
    amplification rounds of one :class:`~repro.core.problems.ProblemSpec`;
    multi-stage drivers (the scan grid's one-spec-per-size loop) call it
    repeatedly and all stages share the same run-level accounting.

    Use as a context manager so backend resources (the threaded
    backend's pool) are released deterministically.
    """

    def __init__(self, graph: CSRGraph, rt: MidasRuntime, problem: str) -> None:
        self.graph = graph
        self.rt = rt
        self.problem = problem
        self.rec = rt.get_recorder()
        self.reg = rt.get_metrics()
        self.fc = (
            _FaultContext(rt, self.reg, problem) if rt.mode == "simulated" else None
        )
        self.san = None
        self.san_report = None
        self._san_synced = False
        self.digests = rt.digest_log
        self._value_digest = None
        if rt.sanitize != "off" or self.digests is not None:
            # imported lazily: repro.sanitize.replay imports this module
            from repro.sanitize.comm import CommSanitizer, SanitizerReport
            from repro.sanitize.replay import value_digest
            self._value_digest = value_digest
            if rt.sanitize != "off":
                self.san_report = SanitizerReport()
                if rt.mode == "simulated":
                    # comm checking only has a substrate in simulated mode;
                    # other modes still get the report/metrics plumbing
                    self.san = CommSanitizer(rt.sanitize, self.san_report)
        try:
            self.backend = _BACKENDS[rt.mode](self)
        except KeyError:  # unreachable given MidasRuntime validation
            raise ConfigurationError(f"no backend for mode {rt.mode!r}") from None
        self.session = rt.session
        if self.session is not None:
            mismatch = self.session.compatible(graph, rt)
            if mismatch is not None:
                raise ConfigurationError(f"engine session mismatch: {mismatch}")
            self.session.attach()
        self.partition = None
        self.views = None
        self.prof = rt.get_profiler()
        self.live = rt.get_live()
        # per-query trace (repro.obs.qtrace.QueryTrace) threaded in by the
        # service broker; None for standalone runs
        self.qt = rt.qtrace
        if self.qt is not None and self.live is not None:
            self.live.trace_id = self.qt.trace_id
        self.round_sw = Stopwatch()  # wall clock around the round loop
        if self.live is not None:
            self.live.run_started(problem, rt.mode,
                                  graph_nodes=graph.n,
                                  graph_edges=graph.num_edges)
        self.degraded: Optional[dict] = None
        self.ckpt = rt.get_checkpoint()
        self.ekey = None
        if self.ckpt is not None:
            self.ekey = self.ckpt.attach_engine(self)
            self.ckpt.restore_into(self)
        self.wd = rt.get_watchdog()
        if self.wd is not None:
            # on a hard hang the monitor thread still flushes a checkpoint;
            # the raise itself happens at the next cooperative check()
            self.wd.start(on_trip=(self.ckpt.save if self.ckpt is not None
                                   else None))
        self._hb = (self._heartbeat
                    if (self.live is not None or self.wd is not None) else None)
        self.cursor = 0.0  # run-level virtual clock for the spliced trace
        self.last_join = None  # (rank, time) the next batch's barrier hangs on
        self.virtual_total = 0.0
        self.trace_compute = 0.0
        self.trace_comm = 0.0
        self.rounds_ctr = self.reg.counter(
            "midas_rounds_total", "Amplification rounds executed"
        ).labels(problem=problem, mode=rt.mode)
        self.bytes_ctr = self.reg.counter(
            "midas_comm_bytes_total", "Wire bytes sent in simulated phases"
        ).labels(problem=problem)

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "DetectionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.live is not None:
            if exc_type is None:
                if self.degraded is not None:
                    state, error = "degraded", self.degraded["detail"]
                else:
                    state, error = "done", ""
            elif issubclass(exc_type, KeyboardInterrupt):
                state, error = "interrupted", "KeyboardInterrupt"
            else:
                state, error = "failed", f"{exc_type.__name__}: {exc}"
            self.live.run_ended(state, error=error)
        if exc_type is not None and issubclass(exc_type, SanitizerError):
            from repro.obs.qtrace import get_flight_recorder

            fr = get_flight_recorder()
            fr.record("sanitizer_error", problem=self.problem, detail=str(exc))
            fr.dump("sanitizer_error")
        self.close()

    def close(self) -> None:
        self.backend.close()
        self._sync_sanitizer_metrics()

    def _sync_sanitizer_metrics(self) -> None:
        """Publish the sanitizer report into ``sanitizer_*`` metric families
        (once; drivers that never call :meth:`fill_details` still report)."""
        rep = self.san_report
        if rep is None or self._san_synced:
            return
        self._san_synced = True
        self.reg.counter(
            "sanitizer_ops_checked_total", "Ops inspected by the comm sanitizer"
        ).labels(problem=self.problem, mode=self.rt.mode).inc(rep.ops_checked)
        self.reg.counter(
            "sanitizer_runs_total", "Simulated runs executed under the sanitizer"
        ).labels(problem=self.problem, mode=self.rt.mode).inc(rep.runs)
        for kind, n in rep.counts().items():
            self.reg.counter(
                "sanitizer_violations_total", "Sanitizer violations, by kind"
            ).labels(kind=kind, problem=self.problem).inc(n)

    # ----------------------------------------------------------- liveness
    def _heartbeat(self) -> None:
        """The simulator's heartbeat hook: tick the live status and the
        watchdog, and surface an expired watchdog *inside* the phase —
        :class:`~repro.errors.WatchdogExpired` is not a
        :class:`~repro.errors.FaultInjectedError`, so the retry loop
        never swallows it and the round loop degrades promptly."""
        if self.live is not None:
            self.live.heartbeat()
        if self.wd is not None:
            self.wd.beat()
            self.wd.check()

    def _note_degraded(self, exc: WatchdogExpired, rounds_done: int) -> None:
        """Convert a watchdog trip into degraded-run state: remember the
        reason plus the live ``0.8^rounds`` miss bound and force a
        checkpoint so the partial work is durable and resumable."""
        from repro.obs.live import ROUND_FAILURE  # lazy: optional layer

        self.degraded = {
            "reason": exc.reason,
            "detail": str(exc),
            "rounds_completed": int(rounds_done),
            "p_failure_bound": float(ROUND_FAILURE ** rounds_done),
        }
        _LOG.warning(
            "watchdog tripped (%s) — degrading after %d completed round(s); "
            "p(miss) <= %.3g", exc.reason, rounds_done,
            self.degraded["p_failure_bound"],
        )
        from repro.obs.qtrace import get_flight_recorder

        fr = get_flight_recorder()
        fr.record("watchdog_trip", problem=self.problem, reason=exc.reason,
                  rounds_completed=int(rounds_done),
                  trace_id=self.qt.trace_id if self.qt is not None else None)
        fr.dump("watchdog_trip", extra={"degraded": dict(self.degraded)})
        if self.ckpt is not None:
            self.ckpt.save()

    # ------------------------------------------------------------- digests
    def note_phase(self, stage: "_Stage", ell: int, t: int, contribution) -> None:
        """Record one phase contribution's digest (no-op without a log)
        and tick the live phase counter/heartbeat.  Called from worker
        threads in threaded mode — both sinks are thread-safe."""
        if self.wd is not None:
            self.wd.beat()
            self.wd.check()
        if self.digests is not None:
            self.digests.record_phase(
                stage.label, ell, t // stage.sched.concurrency, t,
                self._value_digest(contribution),
            )
        if self.live is not None:
            self.live.phase_done(ell, t)

    def note_result(self, found: bool) -> None:
        """Publish the detection's final answer to the live bus."""
        if self.live is not None:
            self.live.note_result(found)

    def note_round(self, stage: "_Stage", ell: int, value) -> None:
        """Record one round accumulator's digest (no-op without a log)."""
        if self.digests is not None:
            self.digests.record_round(stage.label, ell,
                                      self._value_digest(value))

    # ------------------------------------------------------------ resources
    def ensure_partition(self):
        if self.partition is None:
            if self.session is not None:
                # session-cached: built once per (graph, n1, method, seed),
                # identical to the one-shot construction below
                self.partition = self.session.ensure_partition(self.prof)
            else:
                with self.prof.span("partition", phase="setup",
                                    callsite=self.rt.partition_method):
                    self.partition = make_partition(
                        self.graph, self.rt.n1, self.rt.partition_method,
                        rng=RngStream(self.rt.partition_seed, name="partition"),
                    )
        return self.partition

    def ensure_views(self):
        if self.views is None:
            if self.session is not None:
                self.views = self.session.ensure_views(self.prof, self.problem)
            else:
                with self.prof.span("halo", phase="setup", callsite=self.problem):
                    self.views = build_halo_views(self.graph,
                                                  self.ensure_partition())
        return self.views

    # ------------------------------------------------------------ main loop
    def run_stage(
        self,
        spec: ProblemSpec,
        rounds: int,
        rng: RngStream,
        *,
        eps: float = 0.2,
        stop: Optional[Callable[[Value], bool]] = None,
        key_prefix: str = "",
        label: str = "",
        want_estimate: bool = False,
    ) -> StageResult:
        """Run ``rounds`` amplification rounds of ``spec``.

        ``rng`` is the stage's stream; round ``ell`` draws its fingerprint
        from ``rng.child(f"round{ell}")`` — identical in every mode, so
        answers never depend on the backend or the ``(N, N1, N2)``
        decomposition.  ``stop`` is the early-exit predicate on the round
        accumulator (e.g. *any witness* for detection, *this weight cell*
        for single-cell queries).
        """
        rt = self.rt
        sched = rt.schedule_for(spec.k)
        phase_hist = self.reg.histogram(
            "midas_phase_seconds", "Per-phase time (virtual makespan or wall)"
        ).labels(problem=self.problem, mode=rt.mode, k=spec.k, n1=rt.n1, n2=sched.n2)
        estimate = None
        if want_estimate:
            stats = PartitionStats.from_partition(self.ensure_partition())
            cluster = rt.get_cluster()
            estimate = estimate_runtime(
                stats, sched, rt.get_calibration(),
                cluster.cost_model(min(rt.n_processors, cluster.total_cores)),
                eps=eps, problem=spec.model_problem, levels=spec.model_levels,
                z_axis=spec.model_z_axis,
            )
        stage = _Stage(spec, sched, rounds, key_prefix, label, phase_hist, estimate)
        # the stage key is consumed unconditionally (creation order), so a
        # resumed process walks the same key sequence as the killed one
        skey = self.ckpt.stage_key(self.ekey, label) if self.ckpt is not None else None
        if self.degraded is not None:
            # a previous stage tripped the watchdog: start no new work
            return StageResult([], [], sched, estimate)
        self.backend.prepare(stage)
        if self.live is not None:
            self.live.stage_started(label or self.problem, spec.k, rounds,
                                    sched.n_phases, eps=eps)
        stage_sw = Stopwatch()  # this stage's rounds only, for the ETA

        values: List[Value] = []
        virtuals: List[float] = []
        start_round = 0
        if skey is not None:
            st = self.ckpt.restored_stage(self.ekey, skey)
            if st is not None:
                values = [decode_value(v, spec) for v in st["values"]]
                virtuals = [float(x) for x in st["virtuals"]]
                # children are spawn-order-derived: re-requesting the
                # restored rounds' streams leaves the parent positioned
                # exactly where the killed run left it
                for ell in range(len(values)):
                    rng.child(f"round{ell}")
                self.virtual_total += sum(virtuals)
                start_round = len(values)
                if self.live is not None and start_round:
                    self.live.rounds_restored(start_round, self.virtual_total)
                _LOG.info("%s: restored %d checkpointed round(s)",
                          self.problem, start_round)
                if st.get("hit") or st.get("complete"):
                    return StageResult(values, virtuals, sched, estimate)

        stage_span = (self.qt.span("engine.stage", lane="engine",
                                   label=label or self.problem, k=spec.k,
                                   mode=rt.mode, rounds=rounds)
                      if self.qt is not None else None)
        for ell in range(start_round, rounds):
            if self.wd is not None:
                try:
                    self.wd.check()
                except WatchdogExpired as exc:
                    self._note_degraded(exc, len(values))
                    break
            fp = spec.draw_fingerprint(self.graph.n, rng.child(f"round{ell}"))
            round_t0 = time.perf_counter()
            try:
                with self.round_sw, stage_sw, self.prof.span(
                        "round", phase="rounds", callsite=label or self.problem):
                    value, round_virtual = self.backend.run_round(stage, fp, ell)
            except WatchdogExpired as exc:
                # the in-flight round's partial work is discarded; a resume
                # re-runs it from the same round-scoped stream, bit-identical
                self._note_degraded(exc, len(values))
                break
            if stage_span is not None:
                self.qt.add_span("engine.round", round_t0, time.perf_counter(),
                                 parent=stage_span.context, lane="engine",
                                 round=ell)
            self.note_round(stage, ell, value)
            self.rounds_ctr.inc()
            self.virtual_total += round_virtual
            values.append(value)
            virtuals.append(round_virtual)
            hit = stop is not None and stop(value)
            if self.live is not None:
                remaining = 0 if hit else rounds - (ell + 1)
                mean_virtual = (sum(virtuals) / len(virtuals)) if virtuals else 0.0
                self.live.round_done(
                    ell, hit, self.virtual_total,
                    eta_seconds=stage_sw.mean * remaining,
                    eta_virtual_seconds=mean_virtual * remaining,
                )
                if self.fc is not None and self.fc.injector is not None:
                    self.live.fault_update(
                        self.fc.phase_failures, self.fc.retries,
                        sum(self.fc.injected.values()),
                    )
            if skey is not None:
                self.ckpt.note_round(self.ekey, skey, value, round_virtual,
                                     hit=hit,
                                     complete=hit or (ell + 1 == rounds))
            _LOG.debug("%s k=%d round %d/%d", self.problem, spec.k, ell + 1, rounds)
            if hit:
                _LOG.info("%s k=%d: witness found in round %d",
                          self.problem, spec.k, ell + 1)
                break
        if stage_span is not None:
            stage_span.tag(rounds_done=len(values),
                           degraded=self.degraded is not None).finish()
        return StageResult(values, virtuals, sched, estimate)

    # ------------------------------------------------------------- details
    def fill_details(self, det: dict, estimate=None) -> dict:
        """Stamp run-level context (partition stats, trace summary,
        resilience accounting) into a result's ``details`` dict."""
        if self.partition is not None:
            det.setdefault("max_load", self.partition.max_load)
            det.setdefault("max_deg", self.partition.max_degree)
        if self.round_sw.calls:
            det.setdefault("wall", {
                "rounds_seconds": self.round_sw.elapsed,
                "rounds": self.round_sw.calls,
                "mean_round_seconds": self.round_sw.mean,
            })
        if estimate is not None:
            det.setdefault("estimate", estimate)
        if self.rt.mode == "simulated" and self.rt.trace:
            busy = self.trace_compute + self.trace_comm
            det.setdefault("trace_compute_seconds", self.trace_compute)
            det.setdefault("trace_comm_seconds", self.trace_comm)
            det.setdefault("trace_comm_fraction",
                           self.trace_comm / busy if busy > 0 else 0.0)
        if self.fc is not None and self.fc.injector is not None:
            det["resilience"] = self.fc.resilience(self.virtual_total)
        if self.san_report is not None:
            det["sanitizer"] = self.san_report.to_dict()
        if self.degraded is not None:
            det["degraded"] = dict(self.degraded)
        if self.ckpt is not None and self.ckpt.resumed_from:
            det["resumed_from"] = self.ckpt.resumed_from
        return det

    def want_estimate_default(self) -> bool:
        """The scalar drivers' estimate policy: modeled always, simulated
        when a recorder is attached (the RunReport wants model-vs-actual)."""
        return self.rt.mode == "modeled" or (
            self.rt.mode == "simulated" and self.rec is not None
        )


__all__ = [
    "MidasRuntime",
    "DetectionEngine",
    "EngineSession",
    "ExecutionBackend",
    "SequentialBackend",
    "SimulatedBackend",
    "ModeledBackend",
    "ThreadedBackend",
    "StageResult",
    "rounds_for_epsilon",
]
