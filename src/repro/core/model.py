"""Analytic performance model — Theorem 2 / Lemmas 1-3 with real constants.

The paper bounds MIDAS's compute and communication by

    T_comp = O( c1 * (2^k N1 / N) * L * MAXLOAD * log(1/eps) )
    T_comm = O( c2 * (2^k N1 / (N N2)) * L * MAXDEG * log(1/eps) )

with ``L`` the number of DP levels (``k`` for paths, ``|T|`` for trees,
``W^2 k^2``-ish for scan statistics).  This module instantiates those
bounds with *measured* constants:

* ``c1(N2)`` comes from :class:`~repro.runtime.costmodel.KernelCalibration`
  (per-(vertex, iteration) DP cost at batching factor ``N2`` — the curve
  that produces the paper's Figures 6-8 batching gain);
* per-message ``alpha``/``beta`` come from the cluster's
  :class:`~repro.runtime.costmodel.CostModel`.

Used by the ``modeled`` MIDAS mode and by every scaling benchmark: the
model evaluates in microseconds, so 512-processor sweeps over
250M-edge-scale inputs are instant, while the *same* decomposition runs for
real (small scale) in the simulator to validate correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.core.schedule import PhaseSchedule, rounds_for_epsilon
from repro.graph.partition import Partition
from repro.runtime.costmodel import CostModel, KernelCalibration


@dataclass(frozen=True)
class PartitionStats:
    """The partition-level quantities the model depends on.

    Build from a real partition (:meth:`from_partition`) or analytically
    for a random partition of a given graph size (:meth:`random_model`,
    the paper's Lemma 1 regime) — the latter lets benchmarks model paper-
    scale datasets without materializing them.

    ``boundary_max`` is the per-level message *volume*: the largest, over
    parts, count of unique (vertex, peer-part) send slots — what the halo
    exchange actually transmits.  It is at most ``max_deg`` (a vertex with
    several cut edges to one peer is sent once) and is the quantity the
    communication model multiplies by ``beta``.
    """

    n: int
    m: int
    n1: int
    max_load: int
    max_deg: int
    n_peers_max: int
    boundary_max: int = 0

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 0 or self.n1 < 1:
            raise ConfigurationError("invalid partition stats")
        if self.boundary_max == 0:
            object.__setattr__(self, "boundary_max", self.max_deg)

    @staticmethod
    def from_partition(p: Partition) -> "PartitionStats":
        views_peers = min(p.n_parts - 1, p.max_degree)
        # exact unique (vertex, peer) send slots per part
        e = p.graph.edges()
        ou, ov = p.owner[e[:, 0]], p.owner[e[:, 1]]
        cut = ou != ov
        send_v = np.concatenate([e[cut, 0], e[cut, 1]])
        send_to = np.concatenate([ov[cut], ou[cut]])
        boundary_max = 0
        if len(send_v):
            key = send_v.astype(np.int64) * p.n_parts + send_to
            uniq = np.unique(key)
            owners = p.owner[uniq // p.n_parts]
            counts = np.bincount(owners, minlength=p.n_parts)
            boundary_max = int(counts.max())
        return PartitionStats(
            n=p.graph.n,
            m=p.graph.num_edges,
            n1=p.n_parts,
            max_load=p.max_load,
            max_deg=p.max_degree,
            n_peers_max=views_peers,
            boundary_max=boundary_max,
        )

    @staticmethod
    def random_model(n: int, m: int, n1: int) -> "PartitionStats":
        """Expected stats of a uniform random partition (Lemma 1).

        ``MAXLOAD ~ n/N1`` (plus a small concentration term) and
        ``MAXDEG ~ (2m/N1)(1 - 1/N1)`` — each part touches ``2m/N1`` edge
        endpoints, of which a ``(1 - 1/N1)`` fraction cross parts.  The
        unique boundary volume deduplicates multiple cut edges from one
        vertex to one peer: with ``c`` expected cross edges per vertex
        spread over ``n1 - 1`` peers, each vertex occupies
        ``(n1-1)(1 - (1 - 1/(n1-1))^c)`` send slots.
        """
        if n1 > n:
            raise ConfigurationError(f"more parts ({n1}) than vertices ({n})")
        load = n / n1
        max_load = int(math.ceil(load + 3.0 * math.sqrt(max(load, 1.0))))
        max_deg = int(math.ceil((2.0 * m / n1) * (1.0 - 1.0 / n1)))
        if n1 == 1:
            boundary = 0
        else:
            c = (2.0 * m / n) * (1.0 - 1.0 / n1)  # cross edges per vertex
            peers = n1 - 1
            slots_per_vertex = peers * (1.0 - (1.0 - 1.0 / peers) ** c)
            boundary = int(math.ceil(load * slots_per_vertex))
        return PartitionStats(
            n=n,
            m=m,
            n1=n1,
            max_load=max_load,
            max_deg=max_deg,
            n_peers_max=min(n1 - 1, max_deg),
            boundary_max=max(boundary, 1) if n1 > 1 else 0,
        )


@dataclass(frozen=True)
class PerformanceEstimate:
    """Modeled virtual time of a full MIDAS run."""

    total_seconds: float
    compute_seconds: float
    comm_seconds: float
    phase_seconds: float
    reduce_seconds: float
    rounds: int
    schedule: PhaseSchedule
    memory_bytes_per_rank: int

    @property
    def comm_fraction(self) -> float:
        busy = self.compute_seconds + self.comm_seconds
        return self.comm_seconds / busy if busy > 0 else 0.0


def _problem_levels(problem: str, k: int, levels: Optional[int]) -> int:
    """Number of DP levels with a halo exchange before them."""
    if levels is not None:
        return max(1, levels)
    if problem == "path":
        return max(1, k - 1)
    if problem == "tree":
        # a k-node template decomposes into k-1 composite subtrees
        return max(1, k - 1)
    if problem == "scanstat":
        return max(1, k - 1)
    raise ConfigurationError(f"unknown problem {problem!r}")


def estimate_runtime(
    stats: PartitionStats,
    schedule: PhaseSchedule,
    calibration: KernelCalibration,
    cost_model: CostModel,
    eps: float = 0.2,
    problem: str = "path",
    levels: Optional[int] = None,
    z_axis: int = 1,
    elem_bytes: int = 1,
    overlap: bool = False,
) -> PerformanceEstimate:
    """Model the virtual runtime of one full MIDAS detection.

    Parameters mirror the driver's: ``z_axis`` is the weight-axis width of
    scan statistics (1 for path/tree); for scan statistics the per-level
    compute also carries the z-convolution factor ``z_axis * (j-1)/2``,
    folded in through an average multiplier.

    ``overlap=True`` models the Irecv/Wait exchange of the overlapped
    evaluators: per level the cost is ``max(compute, comm)`` instead of
    ``compute + comm`` — the flight time hides behind the own-column
    reduction (and vice versa).  In the returned estimate the hidden part
    is removed from the communication share.
    """
    if schedule.n1 != stats.n1:
        raise ConfigurationError(
            f"schedule N1={schedule.n1} does not match partition stats n1={stats.n1}"
        )
    n2 = schedule.n2
    nlev = _problem_levels(problem, schedule.k, levels)
    c1 = calibration.c1(n2)

    # --- compute per phase -------------------------------------------------
    conv_factor = 1.0
    if problem == "scanstat":
        # z-convolution: ~ (j-1)/2 partial products over z_axis shifts each
        conv_factor = z_axis * max(1.0, (schedule.k - 1) / 2.0)
    compute_phase = c1 * stats.max_load * n2 * nlev * z_axis * conv_factor

    # --- communication per phase ------------------------------------------
    spec = cost_model.spec
    msg_bytes = stats.boundary_max * n2 * elem_bytes * z_axis
    comm_level = spec.alpha * max(1, stats.n_peers_max) + spec.beta * msg_bytes
    comm_phase = comm_level * nlev

    if overlap:
        compute_level = compute_phase / nlev
        level_seconds = max(compute_level, comm_level)
        phase_seconds = level_seconds * nlev
        # attribute the visible (non-hidden) remainder to communication
        comm_phase = max(0.0, phase_seconds - compute_phase)
    else:
        phase_seconds = compute_phase + comm_phase
    rounds = rounds_for_epsilon(eps)

    # --- final reduce (across all N processors, once per round) ------------
    reduce_seconds = cost_model.collective(
        "allreduce", schedule.n_processors, 8 * z_axis
    )

    round_seconds = schedule.n_batches * phase_seconds + reduce_seconds
    total = rounds * round_seconds

    # --- memory ------------------------------------------------------------
    ghosts = min(stats.boundary_max, stats.n)
    arrays = nlev + 1 if problem != "scanstat" else 2 * (schedule.k + 1)
    mem = (stats.max_load + ghosts) * n2 * elem_bytes * z_axis * max(2, arrays // 2)
    mem += 16 * (stats.max_load + stats.max_deg)  # local CSR + lists

    return PerformanceEstimate(
        total_seconds=total,
        compute_seconds=rounds * schedule.n_batches * compute_phase,
        comm_seconds=rounds * (schedule.n_batches * comm_phase + reduce_seconds),
        phase_seconds=phase_seconds,
        reduce_seconds=reduce_seconds,
        rounds=rounds,
        schedule=schedule,
        memory_bytes_per_rank=int(mem),
    )
