"""Weighted k-path evaluation (the paper's Problem 1 max-weight variant).

Section II-A1 lists "finding a maximum weight embedding in a weighted
version of the graph" as a variant the approach extends to, and Problem 3
asks for "the maximum weight of any multilinear term".  With non-negative
integer node weights this is a weight-resolved path DP — the k-path
analogue of Algorithm 5's weight axis:

    ``P(i, 1, z) = x_i`` for ``z = w(i)``, else 0
    ``P(i, j, z) = x_i * sum_u P(u, j-1, z - w(i))``

Summed over the ``2^k`` iterations, cell ``z`` of the degree-``k`` row is
nonzero iff a simple k-path of total node weight exactly ``z`` exists;
the maximum nonzero ``z`` is the answer.  The per-node shift ``z - w(i)``
is vectorized as one fancy-indexed gather along the weight axis.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.ff.fingerprint import Fingerprint
from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.core.halo import HaloView
from repro.runtime.comm import AllReduce, Irecv, Recv, Send, Wait


def weighted_path_eval_phase(
    graph: CSRGraph,
    weights: np.ndarray,
    fp: Fingerprint,
    z_max: int,
    q_start: int,
    n2: int,
) -> np.ndarray:
    """Evaluate the weight-resolved k-path polynomial over one phase.

    Returns a ``(z_max + 1, n2)`` field array: ``out[z, t]`` is
    ``sum_i P(i, q_start + t, k, z)``.
    """
    field = fp.field
    k = fp.k
    if fp.levels < k:
        raise ConfigurationError(f"fingerprint has {fp.levels} levels; k={k} needed")
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(
            f"weights must be one integer per vertex ({graph.n}), got {w.shape}"
        )
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative integers")
    if z_max < 0:
        raise ConfigurationError(f"z_max must be >= 0, got {z_max}")

    n = graph.n
    base0 = fp.level_base_block(0, q_start, n2)  # (n, n2)
    p = np.zeros((n, z_max + 1, n2), dtype=field.dtype)
    ok = w <= z_max
    idx = np.nonzero(ok)[0]
    p[idx, w[idx], :] = base0[idx]

    # per-node shifted gather: shifted[i, z, :] = s[i, z - w(i), :] (0 pad)
    z_grid = np.arange(z_max + 1, dtype=np.int64)
    src_z = z_grid[None, :] - w[:, None]  # (n, Z+1)
    valid = src_z >= 0
    src_z_safe = np.where(valid, src_z, 0)
    row_idx = np.arange(n, dtype=np.int64)[:, None]

    for j in range(1, k):
        gathered = p[graph.indices]  # (nnz, Z+1, n2)
        s = xor_segment_reduce(gathered, graph.indptr)  # (n, Z+1, n2)
        shifted = s[row_idx, src_z_safe, :]
        shifted[~valid] = 0
        base_j = fp.level_base_block(j, q_start, n2)  # (n, n2)
        p = field.mul(base_j[:, None, :], shifted)
    return field.xor_sum(p, axis=0)  # (Z+1, n2)


def weighted_path_phase_value(
    graph: CSRGraph,
    weights: np.ndarray,
    fp: Fingerprint,
    z_max: int,
    q_start: int,
    n2: int,
) -> np.ndarray:
    """Per-weight scalar contributions of the phase: ``(z_max + 1,)``."""
    vals = weighted_path_eval_phase(graph, weights, fp, z_max, q_start, n2)
    return np.bitwise_xor.reduce(vals, axis=1)


def make_weighted_path_phase_program(
    views: List[HaloView], weights: np.ndarray, fp: Fingerprint, z_max: int,
    q_start: int, n2: int,
):
    """SPMD program for one weight-resolved k-path phase.

    Same halo pattern as the plain path program but each level's message
    carries the whole weight axis (``(boundary, Z+1, N_2)``), and the
    per-node shift ``z - w(i)`` is applied to the combined own+ghost
    neighbour sum.  Bit-identical to :func:`weighted_path_phase_value`.
    """
    field = fp.field
    k = fp.k
    w = np.asarray(weights, dtype=np.int64)

    def program(ctx):
        view = views[ctx.rank]
        own_ids = np.asarray(view.own, dtype=np.int64)
        n_own = view.n_own
        w_own = w[own_ids]
        base0 = fp.level_base_block(0, q_start, n2, nodes=view.own)
        p = np.zeros((n_own, z_max + 1, n2), dtype=field.dtype)
        ok = np.nonzero(w_own <= z_max)[0]
        p[ok, w_own[ok], :] = base0[ok]

        z_grid = np.arange(z_max + 1, dtype=np.int64)
        src_z = z_grid[None, :] - w_own[:, None]
        valid = src_z >= 0
        src_z_safe = np.where(valid, src_z, 0)
        row_idx = np.arange(n_own, dtype=np.int64)[:, None]

        for j in range(1, k):
            if ctx.tracer is not None:
                ctx.annotate(f"level{j}")
            ghost = np.zeros((view.n_ghost, z_max + 1, n2), dtype=field.dtype)
            for peer, idxs in view.send_lists.items():
                yield Send(peer, ("w", j - 1), p[idxs])
            for peer, slots in view.recv_lists.items():
                msg = yield Recv(peer, ("w", j - 1))
                ghost[slots] = msg
            combined = np.concatenate([p, ghost], axis=0)
            s = xor_segment_reduce(combined[view.indices], view.indptr)
            shifted = s[row_idx, src_z_safe, :]
            shifted[~valid] = 0
            base_j = fp.level_base_block(j, q_start, n2, nodes=view.own)
            p = field.mul(base_j[:, None, :], shifted)
        local = (
            np.bitwise_xor.reduce(field.xor_sum(p, axis=0), axis=1)
            if n_own
            else np.zeros(z_max + 1, dtype=field.dtype)
        )
        total = yield AllReduce(local.astype(np.uint8), op="xor")
        return np.asarray(total, dtype=field.dtype)

    return program


def make_weighted_path_phase_program_overlapped(
    views: List[HaloView], weights: np.ndarray, fp: Fingerprint, z_max: int,
    q_start: int, n2: int,
):
    """Communication-overlapping weight-resolved k-path phase program.

    Per level: send boundary rows, post nonblocking receives, reduce the
    own-column half of the neighbour sum (over the whole weight axis)
    during the flight window, fold in the ghost half after the waits,
    then apply the per-node ``z - w(i)`` shift to the combined sum.
    Bit-identical to :func:`make_weighted_path_phase_program`.
    """
    field = fp.field
    k = fp.k
    w = np.asarray(weights, dtype=np.int64)

    def program(ctx):
        view = views[ctx.rank]
        iptr_own, idx_own, iptr_gh, idx_gh = view.split_adjacency()
        own_ids = np.asarray(view.own, dtype=np.int64)
        n_own = view.n_own
        w_own = w[own_ids]
        base0 = fp.level_base_block(0, q_start, n2, nodes=view.own)
        p = np.zeros((n_own, z_max + 1, n2), dtype=field.dtype)
        ok = np.nonzero(w_own <= z_max)[0]
        p[ok, w_own[ok], :] = base0[ok]

        z_grid = np.arange(z_max + 1, dtype=np.int64)
        src_z = z_grid[None, :] - w_own[:, None]
        valid = src_z >= 0
        src_z_safe = np.where(valid, src_z, 0)
        row_idx = np.arange(n_own, dtype=np.int64)[:, None]

        for j in range(1, k):
            if ctx.tracer is not None:
                ctx.annotate(f"level{j}")
            for peer, idxs in view.send_lists.items():
                yield Send(peer, ("w", j - 1), p[idxs])
            requests = {}
            for peer in view.recv_lists:
                requests[peer] = yield Irecv(peer, ("w", j - 1))
            # overlap window: the own-column half needs no remote data
            s = xor_segment_reduce(p[idx_own], iptr_own)
            ghost = np.zeros((view.n_ghost, z_max + 1, n2), dtype=field.dtype)
            for peer, slots in view.recv_lists.items():
                msg = yield Wait(requests[peer])
                ghost[slots] = msg
            if len(idx_gh):
                s = s ^ xor_segment_reduce(ghost[idx_gh], iptr_gh)
            shifted = s[row_idx, src_z_safe, :]
            shifted[~valid] = 0
            base_j = fp.level_base_block(j, q_start, n2, nodes=view.own)
            p = field.mul(base_j[:, None, :], shifted)
        local = (
            np.bitwise_xor.reduce(field.xor_sum(p, axis=0), axis=1)
            if n_own
            else np.zeros(z_max + 1, dtype=field.dtype)
        )
        total = yield AllReduce(local.astype(np.uint8), op="xor")
        return np.asarray(total, dtype=field.dtype)

    return program
