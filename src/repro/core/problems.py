"""The problem layer of the unified detection engine.

Every MIDAS application — k-path, k-tree, weighted k-path, scan
statistics — is the *same* Koutis/Williams evaluation loop over a
different DP: ``2^k`` iterations organized round → batch → phase, a
fresh fingerprint per amplification round, XOR accumulation of the
per-phase polynomial values.  A :class:`ProblemSpec` captures everything
that differs between applications as data:

* the iteration-space exponent ``k`` (``2^k`` iterations);
* how to draw the round fingerprint (``levels``, ``field``);
* the accumulator semantics — a scalar GF(2^l) value XORed per phase
  (path/tree) or a ``(z_max + 1)``-wide weight-axis vector XORed
  elementwise (weighted paths, scan statistics);
* the sequential phase kernel and the SPMD program factories (plain and
  communication-overlapped) the simulated backend feeds to the runtime
  simulator;
* the analytic-model parameters (Theorem 2) for the modeled backend.

The :class:`~repro.core.engine.DetectionEngine` consumes a spec and runs
it on any backend; the drivers in :mod:`repro.core.midas` are thin
wrappers that build a spec and post-process the per-round values.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.core.evaluator_path import (
    make_path_phase_program,
    make_path_phase_program_overlapped,
    path_phase_value,
)
from repro.core.evaluator_scanstat import (
    make_scanstat_phase_program,
    make_scanstat_phase_program_overlapped,
    scanstat_phase_value,
)
from repro.core.evaluator_tree import (
    make_tree_phase_program,
    make_tree_phase_program_overlapped,
    tree_phase_value,
)
from repro.core.evaluator_wpath import (
    make_weighted_path_phase_program,
    make_weighted_path_phase_program_overlapped,
    weighted_path_phase_value,
)
from repro.ff.fingerprint import Fingerprint
from repro.ff.gf2m import default_field_for_k
from repro.graph.csr import CSRGraph
from repro.graph.templates import TreeTemplate, decompose_template

#: a per-phase contribution / per-round accumulator: GF scalar or weight axis
Value = Union[int, np.ndarray]


@dataclass
class ProblemSpec:
    """One MIDAS application, expressed as data for the detection engine.

    ``payload == 1`` means the accumulator is a scalar GF(2^l) value
    (plain detection); ``payload == z_max + 1`` means it is a weight-axis
    vector and all combination is elementwise XOR.  Both are commutative
    and associative, which is what lets the threaded backend accumulate
    phase results in completion order yet stay bit-identical.
    """

    name: str  # metrics / trace label family ("k-path", "scanstat", ...)
    k: int  # iteration-space exponent: the round covers 2^k iterations
    levels: int  # fingerprint levels to draw per round
    field: Any  # GF(2^l) arithmetic table set
    payload: int  # accumulator width: 1 = scalar, else z_max + 1
    seq_phase: Callable[[Fingerprint, int, int], Value]  # (fp, q0, n2) -> value
    program_factory: Callable[..., Any]  # (views, fp, q0, n2) -> rank program
    program_factory_overlapped: Callable[..., Any]
    model_problem: str = "path"  # `problem` arg of estimate_runtime
    model_levels: Optional[int] = None  # `levels` arg of estimate_runtime
    model_z_axis: int = 1  # `z_axis` arg of estimate_runtime
    vector: bool = False  # accumulator is a weight axis even when payload == 1
    details: Dict[str, object] = dc_field(default_factory=dict)
    # picklable rebuild instructions ``(kind, params)`` for worker processes:
    # the closures above capture the graph and cannot cross a process
    # boundary, so the process backend ships this instead and calls
    # spec_from_recipe against the shared-memory graph (None = spec was
    # hand-built and cannot run on mode="process")
    recipe: Optional[tuple] = None

    # ------------------------------------------------------------ semantics
    @property
    def scalar(self) -> bool:
        # `payload == 1` alone is wrong: a weight-axis problem with
        # z_max = 0 (all-zero weights) has a length-1 vector accumulator,
        # not a GF scalar
        return self.payload == 1 and not self.vector

    @property
    def reduce_nbytes(self) -> int:
        """Wire bytes of the per-round XOR all-reduce."""
        return 8 * self.payload

    def draw_fingerprint(self, n: int, rng) -> Fingerprint:
        return Fingerprint.draw(n, self.k, rng, levels=self.levels, field=self.field)

    def acc_init(self) -> Value:
        if self.scalar:
            return 0
        return np.zeros(self.payload, dtype=self.field.dtype)

    def combine(self, acc: Value, contribution: Value) -> Value:
        """XOR-fold one phase contribution into the round accumulator."""
        return acc ^ contribution

    def rank_value(self, raw) -> Value:
        """Coerce a rank program's all-reduced result to accumulator form."""
        if self.scalar:
            return int(raw)
        return np.asarray(raw, dtype=self.field.dtype)

    def hit(self, value: Value) -> bool:
        """Does this round's accumulator certify a witness?"""
        if self.scalar:
            return value != 0
        return bool(np.any(np.asarray(value) != 0))


# -------------------------------------------------------------- instances
def path_problem(graph: CSRGraph, k: int, field: Any = None) -> ProblemSpec:
    """Simple k-vertex path detection (paper Algorithm 3).

    ``field`` optionally supplies a prebuilt GF(2^l) table set (an
    :class:`~repro.core.engine.EngineSession` caches one per degree so
    repeated queries skip table construction); the default builds a
    fresh ``default_field_for_k(k)``.  Either way the tables are
    identical, so results never depend on who built them.
    """
    fld = field if field is not None else default_field_for_k(k)
    return ProblemSpec(
        name="k-path",
        k=k,
        levels=k,
        field=fld,
        payload=1,
        seq_phase=lambda fp, q0, n2: path_phase_value(graph, fp, q0, n2),
        program_factory=make_path_phase_program,
        program_factory_overlapped=make_path_phase_program_overlapped,
        model_problem="k-path",
        model_levels=k - 1,
        recipe=("k-path", {"k": k}),
    )


def tree_problem(graph: CSRGraph, template: TreeTemplate,
                 field: Any = None) -> ProblemSpec:
    """Non-induced tree template embedding (paper Algorithm 4).

    ``field`` is an optional prebuilt table set — see :func:`path_problem`.
    """
    specs = decompose_template(template)
    k = template.k
    fld = field if field is not None else default_field_for_k(k)
    return ProblemSpec(
        name="k-tree",
        k=k,
        levels=k,
        field=fld,
        payload=1,
        seq_phase=lambda fp, q0, n2: tree_phase_value(
            graph, template, fp, q0, n2, specs
        ),
        program_factory=lambda views, fp, q0, n2: make_tree_phase_program(
            views, template, fp, q0, n2, specs
        ),
        program_factory_overlapped=lambda views, fp, q0, n2: (
            make_tree_phase_program_overlapped(views, template, fp, q0, n2, specs)
        ),
        model_problem="k-tree",
        model_levels=k - 1,
        details={"template": template.name, "n_subtrees": len(specs)},
        recipe=(
            "k-tree",
            {
                "k": template.k,
                "edges": tuple(tuple(e) for e in template.edges),
                "root": template.root,
                "name": template.name,
            },
        ),
    )


def weighted_path_problem(
    graph: CSRGraph, weights: np.ndarray, k: int, z_max: int,
    field: Any = None,
) -> ProblemSpec:
    """Weight-resolved k-path detection (Problem 1's max-weight variant).

    ``field`` is an optional prebuilt table set — see :func:`path_problem`.
    """
    w = np.asarray(weights, dtype=np.int64)
    fld = field if field is not None else default_field_for_k(k)
    return ProblemSpec(
        name="weighted-path",
        k=k,
        levels=k,
        field=fld,
        payload=z_max + 1,
        seq_phase=lambda fp, q0, n2: weighted_path_phase_value(
            graph, w, fp, z_max, q0, n2
        ),
        program_factory=lambda views, fp, q0, n2: make_weighted_path_phase_program(
            views, w, fp, z_max, q0, n2
        ),
        program_factory_overlapped=lambda views, fp, q0, n2: (
            make_weighted_path_phase_program_overlapped(views, w, fp, z_max, q0, n2)
        ),
        model_problem="k-path",
        model_levels=k - 1,
        model_z_axis=z_max + 1,
        vector=True,
        recipe=("weighted-path", {"k": k, "z_max": z_max, "weights": w}),
    )


def scanstat_problem(
    graph: CSRGraph, weights: np.ndarray, size: int, z_max: int,
    field: Any = None,
) -> ProblemSpec:
    """One size row of the scan-statistics grid (paper Algorithm 5).

    ``size`` is the group dimension: the evaluation runs ``2^size``
    iterations and resolves every weight cell ``z <= z_max`` of that row
    at once (the driver assembles the full grid from one spec per size).
    """
    w = np.asarray(weights, dtype=np.int64)
    fld = field if field is not None else default_field_for_k(max(size, 2))
    return ProblemSpec(
        name="scanstat",
        k=size,
        levels=size + 1,  # base row + per-size join coefficients
        field=fld,
        payload=z_max + 1,
        seq_phase=lambda fp, q0, n2: scanstat_phase_value(
            graph, w, fp, z_max, q0, n2
        ),
        program_factory=lambda views, fp, q0, n2: make_scanstat_phase_program(
            views, w, fp, z_max, q0, n2
        ),
        program_factory_overlapped=lambda views, fp, q0, n2: (
            make_scanstat_phase_program_overlapped(views, w, fp, z_max, q0, n2)
        ),
        model_problem="scanstat",
        model_levels=None,
        model_z_axis=z_max + 1,
        vector=True,
        recipe=("scanstat", {"size": size, "z_max": z_max, "weights": w}),
    )


def spec_from_recipe(graph: CSRGraph, recipe: tuple, field: Any = None) -> ProblemSpec:
    """Rebuild a :class:`ProblemSpec` from its picklable ``recipe``.

    Worker processes call this against their shared-memory graph view;
    the result is behaviourally identical to the parent's spec (same
    factory, same parameters), so phase values are bit-identical.
    """
    kind, params = recipe
    if kind == "k-path":
        return path_problem(graph, params["k"], field=field)
    if kind == "k-tree":
        template = TreeTemplate(
            params["k"], params["edges"], root=params["root"], name=params["name"]
        )
        return tree_problem(graph, template, field=field)
    if kind == "weighted-path":
        return weighted_path_problem(
            graph, params["weights"], params["k"], params["z_max"], field=field
        )
    if kind == "scanstat":
        return scanstat_problem(
            graph, params["weights"], params["size"], params["z_max"], field=field
        )
    raise ValueError(f"unknown problem recipe kind {kind!r}")
