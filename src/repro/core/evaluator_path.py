"""PAREVALUATEPOLYNOMIALPATH (paper Algorithm 3), vectorized.

The k-path polynomial is evaluated per iteration ``q`` via the DP

    ``P(i, 1) = x_i``  and  ``P(i, j) = x_i * sum_{u in NBR(i)} P(u, j-1)``

where ``x_i`` evaluates, at iteration ``q`` and DP level ``j``, to
``y[i, j] * [ <v_i, q> even ]`` (see :mod:`repro.ff.fingerprint`).  A whole
*phase* of ``N_2`` iterations is evaluated at once: ``P`` is an
``(n, N_2)`` field array and each level is exactly three vectorized ops —
gather, XOR-segment-reduce, field-multiply.

Two entry points:

* :func:`path_eval_phase` — single-process, whole graph (used by the
  sequential and modeled drivers, and as the ground truth the parallel
  version must match bit-for-bit);
* :func:`make_path_phase_program` — the SPMD rank program for the runtime
  simulator, with per-level halo exchange of boundary values batched over
  the phase's ``N_2`` iterations (the paper's message coalescing).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.ff.fingerprint import Fingerprint
from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.core.halo import HaloView
from repro.runtime.comm import AllReduce, Irecv, Recv, Send, Wait


def path_eval_phase(graph: CSRGraph, fp: Fingerprint, q_start: int, n2: int) -> np.ndarray:
    """Evaluate the k-path polynomial for iterations ``[q_start, q_start+n2)``.

    Returns an ``(n2,)`` field array: entry ``t`` is
    ``sum_i P(i, q_start + t, k)``.  XORing these across all ``2^k``
    iterations gives the round's final value.

    Fields resolved to the ``"bitsliced"`` kernel take the plane-resident
    fast path: the DP state never leaves bit-plane layout, so each level is
    a plane gather + XOR-segment-reduce + carry-less multiply, and only the
    final ``(m, W)`` reduction is unpacked.  Both paths are bit-identical.
    """
    field = fp.field
    k = fp.k
    if fp.levels < k:
        raise ConfigurationError(f"fingerprint has {fp.levels} levels; k={k} needed")
    if getattr(field, "kernel_strategy", None) == "bitsliced":
        return _path_eval_phase_bitsliced(graph, fp, q_start, n2)
    p = fp.level_base_block(0, q_start, n2)  # (n, n2)
    for j in range(1, k):
        gathered = p[graph.indices]  # (nnz, n2)
        acc = xor_segment_reduce(gathered, graph.indptr)  # (n, n2)
        p = field.mul(fp.level_base_block(j, q_start, n2), acc)
    return field.xor_sum(p, axis=0)  # (n2,)


def _path_eval_phase_bitsliced(
    graph: CSRGraph, fp: Fingerprint, q_start: int, n2: int
) -> np.ndarray:
    """Plane-resident k-path phase: DP state stays ``(n, m, W)`` uint64.

    The per-level base block is built straight from the {0,1} indicator and
    the ``y`` column (:meth:`BitslicedGF2m.indicator_planes`) — the
    ``(n, n2)`` element array is never materialized.  The segment reduce
    sees the planes flattened to ``(nnz, m * W)``; XOR is bitwise so the
    reshape is free of semantics.
    """
    field = fp.field
    bs = field.bitsliced
    m, w = bs.m, bs.words(n2)
    n = graph.n
    iw = bs.pack_indicator(fp.base_block(q_start, n2))  # (n, W), per-phase
    p = bs.planes_from_words(iw, fp.y[:, 0])  # (n, m, W)
    for j in range(1, fp.k):
        gathered = p[graph.indices]  # (nnz, m, W)
        acc = xor_segment_reduce(
            gathered.reshape(len(graph.indices), m * w), graph.indptr
        ).reshape(n, m, w)
        p = bs.mul(bs.planes_from_words(iw, fp.y[:, j]), acc)
    return bs.unslice(bs.xor_sum(p, axis=0), n2, field.dtype)  # (n2,)


def path_phase_value(graph: CSRGraph, fp: Fingerprint, q_start: int, n2: int) -> int:
    """The phase's scalar contribution ``SUM_t`` (XOR over its iterations)."""
    return int(np.bitwise_xor.reduce(path_eval_phase(graph, fp, q_start, n2)))


def make_path_phase_program(views: List[HaloView], fp: Fingerprint, q_start: int, n2: int):
    """SPMD program factory for one k-path phase on ``len(views)`` ranks.

    Each rank owns ``views[rank]``; per DP level it computes its own rows,
    sends the new values of boundary vertices to each peer as one batched
    ``(boundary, N_2)`` message, and scatters received ghosts.  The program
    ends with an XOR all-reduce of the local partial sums, so every rank
    returns the same ``SUM_t`` scalar — bit-identical to
    :func:`path_phase_value` on the whole graph.
    """
    field = fp.field
    k = fp.k

    def program(ctx):
        view = views[ctx.rank]
        buf = np.zeros((view.n_local, n2), dtype=field.dtype)
        vals = fp.level_base_block(0, q_start, n2, nodes=view.own)
        for j in range(1, k):
            if ctx.tracer is not None:
                ctx.annotate(f"level{j}")
            # halo-exchange level j-1 values, then advance the DP
            buf[: view.n_own] = vals
            for peer, idxs in view.send_lists.items():
                yield Send(peer, j - 1, vals[idxs])
            for peer, slots in view.recv_lists.items():
                msg = yield Recv(peer, j - 1)
                buf[view.n_own + slots] = msg
            gathered = buf[view.indices]
            acc = xor_segment_reduce(gathered, view.indptr)
            vals = field.mul(
                fp.level_base_block(j, q_start, n2, nodes=view.own), acc
            )
        local = int(np.bitwise_xor.reduce(field.xor_sum(vals, axis=0))) if view.n_own else 0
        total = yield AllReduce(np.uint64(local), op="xor", nbytes=8)
        return int(total)

    return program


def make_path_phase_program_overlapped(
    views: List[HaloView], fp: Fingerprint, q_start: int, n2: int
):
    """Communication-overlapping variant of the k-path phase program.

    Per level: send boundary values, post nonblocking receives, reduce the
    *local-column* half of every row's neighbour sum while the messages fly,
    then wait and fold in the ghost-column half (GF addition is XOR, so the
    two halves compose exactly).  Results are bit-identical to
    :func:`make_path_phase_program`; on latency-bound configurations the
    makespan improves because local compute hides message flight time —
    the standard MPI_Irecv/MPI_Wait overlap optimization, here as an
    ablation of the paper's synchronous exchange.
    """
    field = fp.field
    k = fp.k

    def program(ctx):
        view = views[ctx.rank]
        iptr_own, idx_own, iptr_gh, idx_gh = view.split_adjacency()
        ghost = np.zeros((view.n_ghost, n2), dtype=field.dtype)
        vals = fp.level_base_block(0, q_start, n2, nodes=view.own)
        for j in range(1, k):
            if ctx.tracer is not None:
                ctx.annotate(f"level{j}")
            for peer, idxs in view.send_lists.items():
                yield Send(peer, j - 1, vals[idxs])
            requests = {}
            for peer in view.recv_lists:
                requests[peer] = yield Irecv(peer, j - 1)
            # overlap window: the own-column half needs no remote data
            acc = xor_segment_reduce(vals[idx_own], iptr_own)
            for peer, slots in view.recv_lists.items():
                msg = yield Wait(requests[peer])
                ghost[slots] = msg
            if len(idx_gh):
                acc ^= xor_segment_reduce(ghost[idx_gh], iptr_gh)
            vals = field.mul(
                fp.level_base_block(j, q_start, n2, nodes=view.own), acc
            )
        local = int(np.bitwise_xor.reduce(field.xor_sum(vals, axis=0))) if view.n_own else 0
        total = yield AllReduce(np.uint64(local), op="xor", nbytes=8)
        return int(total)

    return program
