"""The MIDAS iteration schedule (paper Fig 1 and Table I).

The ``2^k`` independent iterations of the matrix representation are
organized as:

* **phase** — ``N_2`` consecutive iterations whose communication is batched
  into single messages (the message-coalescing idea of Section IV);
* **batch** — ``N / N_1`` phases executed simultaneously, each on its own
  group of ``N_1`` processors;
* **round** — all ``2^k`` iterations once; repeated
  ``ceil(log(1/eps) / log(5/4))`` times to amplify the 1/5 per-round
  success probability to ``1 - eps``.

:class:`PhaseSchedule` validates a ``(k, N, N1, N2)`` combination eagerly
and exposes every derived quantity the driver, the performance model, and
the benchmarks need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.util.validation import check_positive_int, check_probability


def pow2_floor(n: int) -> int:
    """The largest power of two ``<= n`` (``n >= 1``).

    Because the divisors of ``2^k`` are exactly the powers of two, this is
    also the largest divisor of any ``2^k >= n`` that is ``<= n`` — the
    O(1) replacement for the drivers' old decrement-until-divides search.
    """
    if n < 1:
        raise ConfigurationError(f"pow2_floor needs n >= 1, got {n}")
    return 1 << (int(n).bit_length() - 1)


def rounds_for_epsilon(eps: float) -> int:
    """Number of amplification rounds: ``ceil(log(1/eps) / log(5/4))``.

    Each round succeeds with probability >= 1/5 when a witness exists, so
    after L rounds the failure probability is at most (4/5)^L <= eps.
    """
    eps = check_probability(eps, "eps")
    return max(1, math.ceil(math.log(1.0 / eps) / math.log(5.0 / 4.0)))


@dataclass(frozen=True)
class PhaseSchedule:
    """A validated ``(k, N, N1, N2)`` decomposition of the iteration space.

    Parameters (paper Table I)
    --------------------------
    k:
        Subgraph size; the iteration space is ``2^k``.
    n_processors:
        ``N`` — total processors.
    n1:
        ``N_1`` — parts in the graph partition (processors per phase).
    n2:
        ``N_2`` — iterations per phase (communication batching factor).
    """

    k: int
    n_processors: int
    n1: int
    n2: int

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        check_positive_int(self.n_processors, "n_processors")
        check_positive_int(self.n1, "n1")
        check_positive_int(self.n2, "n2")
        if self.k > 30:
            raise ConfigurationError(f"k={self.k} implies 2^{self.k} iterations; k <= 30 supported")
        if self.n1 > self.n_processors:
            raise ConfigurationError(
                f"N1 (={self.n1}) cannot exceed N (={self.n_processors})"
            )
        if self.n_processors % self.n1:
            raise ConfigurationError(
                f"N1 (={self.n1}) must divide N (={self.n_processors}) so batches are integral"
            )
        if self.n2 > self.total_iterations:
            raise ConfigurationError(
                f"N2 (={self.n2}) cannot exceed the 2^k={self.total_iterations} iterations"
            )
        if self.total_iterations % self.n2:
            raise ConfigurationError(
                f"N2 (={self.n2}) must divide 2^k={self.total_iterations}"
            )

    # ------------------------------------------------------------- derived
    @property
    def total_iterations(self) -> int:
        """``2^k`` — one per diagonal element of the matrix representation."""
        return 1 << self.k

    @property
    def n_phases(self) -> int:
        """``2^k / N2`` phases per round."""
        return self.total_iterations // self.n2

    @property
    def concurrency(self) -> int:
        """``N / N1`` phases running simultaneously (the batch width)."""
        return self.n_processors // self.n1

    @property
    def n_batches(self) -> int:
        """Batches per round: ``ceil(n_phases / concurrency)``."""
        return -(-self.n_phases // self.concurrency)

    def phase_window(self, t: int) -> Tuple[int, int]:
        """Iteration window ``[q_start, q_end)`` of phase ``t``."""
        if not (0 <= t < self.n_phases):
            raise ConfigurationError(f"phase {t} out of range [0, {self.n_phases})")
        return t * self.n2, (t + 1) * self.n2

    def batches(self) -> Iterator[List[int]]:
        """Yield the phase ids of each batch, in execution order."""
        for b in range(self.n_batches):
            lo = b * self.concurrency
            hi = min((b + 1) * self.concurrency, self.n_phases)
            yield list(range(lo, hi))

    @staticmethod
    def bs_max(k: int, n_processors: int, n1: int) -> int:
        """The figures' "BSMax": ``N2 = 2^k N1 / N`` — one batch per round.

        This is the largest batching factor that still uses all processors;
        clamped to at least 1 and to divide 2^k.
        """
        total = 1 << k
        n2 = max(1, total * n1 // n_processors) if n_processors <= total * n1 else 1
        # round down to a power of two: exactly the divisors of 2^k
        return pow2_floor(min(n2, total))

    def describe(self) -> str:
        return (
            f"PhaseSchedule(k={self.k}: 2^k={self.total_iterations} iterations; "
            f"N={self.n_processors}, N1={self.n1}, N2={self.n2} -> "
            f"{self.n_phases} phases, {self.concurrency} concurrent, "
            f"{self.n_batches} batches/round)"
        )
