"""The MIDAS driver (paper Algorithm 2).

One entry point per application:

* :func:`detect_path` — is there a simple path on ``k`` vertices?
* :func:`detect_tree` — does the template tree embed (non-induced)?
* :func:`scan_grid` — which (size ``j <= k``, weight ``z``) connected
  subgraphs exist? (feeds :mod:`repro.scanstat.detect`)

Each runs ``ceil(log(1/eps)/log(5/4))`` amplification rounds; a round draws
a fresh fingerprint and XORs the polynomial evaluation over all ``2^k``
iterations, organized by the :class:`~repro.core.schedule.PhaseSchedule`.

Execution modes (:class:`MidasRuntime`):

``sequential``
    Single-process vectorized evaluation (still batched ``N_2`` wide —
    batching is a *compute* optimization too).
``simulated``
    The real SPMD decomposition: the graph is partitioned into ``N_1``
    parts and every phase runs as ``N_1`` rank programs on the runtime
    simulator, with halo messages and an XOR all-reduce.  Detection output
    is bit-identical to ``sequential`` for the same seed (property-tested);
    virtual time reflects the modeled network.
``modeled``
    Sequential detection plus the analytic Theorem-2 model
    (:mod:`repro.core.model`) for virtual time — used for cluster-scale
    sweeps where 512 simulated ranks would be pointlessly slow.

Randomness is *round-scoped*: all modes draw identical fingerprints from
the caller's stream, so answers never depend on ``(N, N1, N2)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError, FaultInjectedError, RankFailedError
from repro.core.evaluator_path import (
    make_path_phase_program,
    make_path_phase_program_overlapped,
    path_phase_value,
)
from repro.core.evaluator_scanstat import (
    make_scanstat_phase_program,
    make_scanstat_phase_program_overlapped,
    scanstat_phase_value,
)
from repro.core.evaluator_tree import (
    make_tree_phase_program,
    make_tree_phase_program_overlapped,
    tree_phase_value,
)
from repro.core.evaluator_wpath import (
    make_weighted_path_phase_program,
    weighted_path_phase_value,
)
from repro.core.halo import build_halo_views
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.result import DetectionResult, RoundRecord, ScanGridResult
from repro.core.schedule import PhaseSchedule, rounds_for_epsilon
from repro.ff.fingerprint import Fingerprint
from repro.ff.gf2m import default_field_for_k
from repro.graph.csr import CSRGraph
from repro.graph.partition import make_partition
from repro.graph.templates import TreeTemplate, decompose_template
from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.runtime.cluster import VirtualCluster, laptop
from repro.runtime.costmodel import KernelCalibration
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.scheduler import Simulator
from repro.runtime.tracing import Scope, TraceRecorder
from repro.util.log import get_logger
from repro.util.rng import RngStream, as_stream

_LOG = get_logger(__name__)

_MODES = ("sequential", "simulated", "modeled")


@dataclass
class MidasRuntime:
    """Parallel execution configuration for the MIDAS driver.

    ``n2=None`` picks a sensible default: the figures' BSMax
    (``2^k N1 / N``) in parallel modes, a 64-wide batch sequentially.
    ``overlap=True`` uses the communication-overlapping halo exchange
    (Irecv/Wait with local/ghost-split reductions) in simulated runs of
    all three evaluators; results are bit-identical either way.

    Observability: attach a :class:`~repro.runtime.tracing.TraceRecorder`
    as ``recorder`` to collect a run-level, schedule-scoped timeline
    (per-phase simulator recordings spliced onto global ranks and a
    global clock; per-phase wall timings in sequential/modeled modes).
    Driver metrics always land in ``metrics`` when set, else the
    process-wide :func:`repro.obs.metrics.get_default_registry` — the
    same registry the kernel-calibration instrumentation writes to.
    Neither affects detection output (property-tested bit-identical).

    Fault tolerance (simulated mode only): attach a
    :class:`~repro.runtime.faults.FaultPlan` as ``fault_plan`` and the
    driver runs every phase window under injection, checkpointing
    completed windows and re-executing only the ones whose simulator run
    died with a :class:`~repro.errors.FaultInjectedError` — with the
    same seeded randomness, so results under any recoverable plan are
    bit-identical to the fault-free run.  Retries are bounded by
    ``max_retries`` per window; each retry adds an exponential-backoff
    penalty of ``retry_backoff * 2^attempt`` virtual seconds to the
    makespan, modeling failure detection + restart cost.
    """

    n_processors: int = 1
    n1: int = 1
    n2: Optional[int] = None
    mode: str = "sequential"
    cluster: Optional[VirtualCluster] = None
    partition_method: str = "random"
    calibration: Optional[KernelCalibration] = None
    measure_compute: bool = False
    trace: bool = False
    partition_seed: int = 7777
    overlap: bool = False
    recorder: Optional[TraceRecorder] = None
    metrics: Optional[MetricsRegistry] = None
    fault_plan: Optional[FaultPlan] = None
    max_retries: int = 5
    retry_backoff: float = 1e-3

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.fault_plan is not None and self.mode != "simulated":
            raise ConfigurationError(
                f"fault_plan requires mode='simulated' (faults are injected into "
                f"the runtime simulator), got mode={self.mode!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )

    def schedule_for(self, k: int) -> PhaseSchedule:
        total = 1 << k
        n2 = self.n2
        if n2 is None:
            if self.mode == "sequential":
                n2 = min(total, 64)
            else:
                n2 = PhaseSchedule.bs_max(k, self.n_processors, self.n1)
        n2 = min(n2, total)
        while total % n2:
            n2 -= 1
        return PhaseSchedule(k, self.n_processors, self.n1, max(1, n2))

    def get_cluster(self) -> VirtualCluster:
        if self.cluster is not None:
            return self.cluster
        # a generously sized default so any (N, N1) fits
        nodes = max(1, -(-self.n_processors // 8))
        return laptop(nodes)

    def get_calibration(self) -> KernelCalibration:
        return self.calibration if self.calibration is not None else KernelCalibration.synthetic()

    def get_metrics(self) -> MetricsRegistry:
        return self.metrics if self.metrics is not None else get_default_registry()

    def get_recorder(self) -> Optional[TraceRecorder]:
        """The attached recorder, or None when absent/disabled."""
        rec = self.recorder
        return rec if (rec is not None and rec.enabled) else None


def _prepare_parallel(graph: CSRGraph, rt: MidasRuntime):
    partition = make_partition(
        graph, rt.n1, rt.partition_method, rng=RngStream(rt.partition_seed, name="partition")
    )
    views = build_halo_views(graph, partition)
    return partition, views


def _reduce_cost(rt: MidasRuntime, nbytes: int) -> float:
    cluster = rt.get_cluster()
    return cluster.cost_model(min(rt.n_processors, cluster.total_cores)).collective(
        "allreduce", rt.n_processors, nbytes
    )


class _FaultContext:
    """Per-detection fault-tolerance state: the shared injector, the
    ``fault_*`` metric families, and the resilience accounting that ends
    up in ``details["resilience"]`` / the RunReport.

    ``injector`` is ``None`` when no plan is attached — the phase runner
    then degenerates to a single plain attempt with zero overhead.
    """

    def __init__(self, rt: MidasRuntime, reg: MetricsRegistry, problem: str) -> None:
        self.problem = problem
        self.injector = FaultInjector(rt.fault_plan) if rt.fault_plan else None
        self.max_retries = rt.max_retries
        self.backoff0 = rt.retry_backoff
        self.injected_ctr = reg.counter(
            "fault_injected_total", "Faults fired by the injector, by kind"
        )
        self.failures_ctr = reg.counter(
            "fault_phase_failures_total", "Phase attempts killed by injected faults"
        )
        self.retries_ctr = reg.counter(
            "fault_retries_total", "Phase re-executions after a fault"
        ).labels(problem=problem)
        self.lost_ctr = reg.counter(
            "fault_work_lost_seconds_total",
            "Virtual seconds of partial work discarded with failed attempts",
        ).labels(problem=problem)
        self.backoff_ctr = reg.counter(
            "fault_backoff_seconds_total",
            "Virtual seconds spent in exponential backoff before retries",
        ).labels(problem=problem)
        self.recomputed_ctr = reg.counter(
            "fault_work_recomputed_seconds_total",
            "Virtual seconds of successful re-execution after faults",
        ).labels(problem=problem)
        # running totals for the resilience report
        self.injected: dict = {}
        self.phase_failures = 0
        self.retries = 0
        self.work_lost = 0.0
        self.backoff_seconds = 0.0
        self.work_recomputed = 0.0

    def record_injected(self, counts: dict) -> None:
        for kind, n in counts.items():
            self.injected_ctr.labels(kind=kind, problem=self.problem).inc(n)
            self.injected[kind] = self.injected.get(kind, 0) + n

    def resilience(self, virtual_total: float) -> dict:
        """The RunReport resilience section (see module docs)."""
        overhead = self.work_lost + self.backoff_seconds
        clean = max(virtual_total - overhead, 0.0)
        return {
            "faults_injected": dict(self.injected),
            "phase_failures": self.phase_failures,
            "retries": self.retries,
            "work_lost_seconds": self.work_lost,
            "work_recomputed_seconds": self.work_recomputed,
            "backoff_seconds": self.backoff_seconds,
            "makespan_overhead_seconds": overhead,
            "overhead_fraction": overhead / clean if clean > 0 else 0.0,
        }


def _run_phase_resilient(rt: MidasRuntime, fc: _FaultContext, prog, key: str,
                         sim_cost_model, want_trace: bool):
    """Run one phase window to completion under the fault plan.

    Retries the window (same program, seeded-identical randomness) on any
    :class:`~repro.errors.FaultInjectedError` — or on a run that
    "completed" with crashed ranks — up to ``max_retries`` times, adding
    exponential backoff to the virtual clock.  Returns ``(res, sim,
    extra_virtual, failed_events)`` where ``extra_virtual`` is the lost +
    backoff virtual time that precedes the successful attempt on the
    run-level timeline and ``failed_events`` the (shifted-from-zero)
    trace events of failed attempts for splicing.
    """
    attempt = 0
    extra = 0.0
    failed_events = []
    while True:
        run_inj = (
            fc.injector.for_run(f"{key}/a{attempt}") if fc.injector is not None else None
        )
        sim = Simulator(
            rt.n1, cost_model=sim_cost_model,
            measure_compute=rt.measure_compute,
            trace=want_trace, faults=run_inj,
        )
        err = None
        res = None
        try:
            res = sim.run(prog)
            if res.crashed_ranks:
                # the program "finished" but ranks died: their partial
                # results are unusable — treat like a failed collective
                err = RankFailedError(
                    f"rank(s) {list(res.crashed_ranks)} crashed during phase {key}",
                    ranks=res.crashed_ranks,
                )
        except FaultInjectedError as exc:
            err = exc
        if run_inj is not None and run_inj.counts:
            fc.record_injected(run_inj.counts)
        if err is None:
            if attempt > 0:
                fc.work_recomputed += res.makespan
                fc.recomputed_ctr.inc(res.makespan)
            return res, sim, extra, failed_events
        fc.phase_failures += 1
        fc.failures_ctr.labels(error=type(err).__name__, problem=fc.problem).inc()
        clocks = sim.partial_clocks
        lost = float(clocks.max()) if len(clocks) else 0.0
        fc.work_lost += lost
        fc.lost_ctr.inc(lost)
        if want_trace:
            failed_events.append((extra, attempt, list(sim.trace.events)))
        if attempt >= fc.max_retries:
            _LOG.error("phase %s failed after %d attempts: %s", key, attempt + 1, err)
            raise err
        backoff = fc.backoff0 * (2.0 ** attempt)
        extra += lost + backoff
        fc.backoff_seconds += backoff
        fc.backoff_ctr.inc(backoff)
        fc.retries += 1
        fc.retries_ctr.inc()
        attempt += 1
        _LOG.info(
            "phase %s attempt %d failed (%s: %s); retrying with %.3g s backoff",
            key, attempt, type(err).__name__, err, backoff,
        )


def _run_scalar_detection(
    problem: str,
    graph: CSRGraph,
    k: int,
    eps: float,
    rng,
    rt: MidasRuntime,
    levels: int,
    seq_phase: Callable[[Fingerprint, int, int], int],
    program_factory,  # (views, fp, q0, n2) -> rank program
    early_exit: bool,
    details: Optional[dict] = None,
) -> DetectionResult:
    if graph.n < 1:
        raise ConfigurationError("graph must have at least one vertex")
    if k > graph.n:
        # more template vertices than graph vertices: trivially absent
        return DetectionResult(problem, k, False, [], eps, mode=rt.mode,
                               n_processors=rt.n_processors, n1=rt.n1, n2=rt.n2 or 0,
                               details={"reason": "k exceeds |V|"})
    sched = rt.schedule_for(k)
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, f"{problem}-detect")
    fld = default_field_for_k(k)
    wall0 = time.perf_counter()

    partition = views = None
    sim_cost_model = None
    if rt.mode == "simulated":
        partition, views = _prepare_parallel(graph, rt)
        sim_cost_model = rt.get_cluster().cost_model(rt.n1)

    rec = rt.get_recorder()
    reg = rt.get_metrics()
    fc = _FaultContext(rt, reg, problem) if rt.mode == "simulated" else None
    labels = dict(problem=problem, mode=rt.mode, k=k, n1=rt.n1, n2=sched.n2)
    phase_hist = reg.histogram(
        "midas_phase_seconds", "Per-phase time (virtual makespan or wall)"
    ).labels(**labels)
    rounds_ctr = reg.counter(
        "midas_rounds_total", "Amplification rounds executed"
    ).labels(problem=problem, mode=rt.mode)
    bytes_ctr = reg.counter(
        "midas_comm_bytes_total", "Wire bytes sent in simulated phases"
    ).labels(problem=problem)

    estimate = None
    if rt.mode == "modeled" or (rt.mode == "simulated" and rec is not None):
        if partition is None:
            partition = make_partition(
                graph, rt.n1, rt.partition_method,
                rng=RngStream(rt.partition_seed, name="partition"),
            )
        stats = PartitionStats.from_partition(partition)
        estimate = estimate_runtime(
            stats, sched, rt.get_calibration(),
            rt.get_cluster().cost_model(min(rt.n_processors, rt.get_cluster().total_cores)),
            eps=eps, problem=problem, levels=levels - 1,
        )

    records: List[RoundRecord] = []
    virtual_total = 0.0
    cursor = 0.0  # run-level virtual clock for the spliced trace
    trace_compute = trace_comm = 0.0
    for ell in range(rounds):
        fp = Fingerprint.draw(graph.n, k, rng.child(f"round{ell}"), levels=levels, field=fld)
        value = 0
        round_virtual = 0.0
        if rt.mode == "simulated":
            for bi, batch in enumerate(sched.batches()):
                batch_time = 0.0
                for gi, t in enumerate(batch):
                    q0, q1 = sched.phase_window(t)
                    prog = program_factory(views, fp, q0, sched.n2)
                    res, sim, extra, failed = _run_phase_resilient(
                        rt, fc, prog, f"r{ell}/b{bi}/p{t}", sim_cost_model,
                        want_trace=rt.trace or rec is not None,
                    )
                    value ^= int(res.results[0])
                    batch_time = max(batch_time, extra + res.makespan)
                    phase_hist.observe(res.makespan)
                    if rt.trace:
                        trace_compute += res.summary.total_compute
                        trace_comm += res.summary.total_comm
                    if rec is not None:
                        # splice the phase's group onto global ranks/clock;
                        # failed attempts first, at their own offsets
                        for shift, attempt, events in failed:
                            rec.extend(
                                events, t_shift=cursor + shift,
                                rank_offset=gi * rt.n1,
                                scope=Scope(round=ell, batch=bi, phase=t, q0=q0,
                                            q1=q1, label=f"failed-attempt{attempt}"),
                            )
                        rec.extend(
                            sim.trace.events, t_shift=cursor + extra,
                            rank_offset=gi * rt.n1,
                            scope=Scope(round=ell, batch=bi, phase=t, q0=q0, q1=q1),
                        )
                    if rt.trace or rec is not None:
                        bytes_ctr.inc(res.summary.total_bytes)
                round_virtual += batch_time
                cursor += batch_time
            red = _reduce_cost(rt, 8)
            round_virtual += red
            if rec is not None:
                rec.record(-1, "collective", cursor, cursor + red,
                           info="round-reduce", nbytes=8,
                           scope=Scope(round=ell, label="round-reduce"))
            cursor += red
        else:
            for t in range(sched.n_phases):
                q0, q1 = sched.phase_window(t)
                p0 = time.perf_counter()
                value ^= seq_phase(fp, q0, sched.n2)
                dt = time.perf_counter() - p0
                phase_hist.observe(dt)
                if rec is not None:
                    rec.record(0, "compute", cursor, cursor + dt,
                               scope=Scope(round=ell, phase=t, q0=q0, q1=q1))
                    cursor += dt
            if estimate is not None:
                round_virtual = estimate.total_seconds / rounds
        rounds_ctr.inc()
        virtual_total += round_virtual
        records.append(RoundRecord(ell, value, round_virtual))
        _LOG.debug("%s k=%d round %d/%d: value=%d", problem, k, ell + 1, rounds, value)
        if value != 0 and early_exit:
            _LOG.info("%s k=%d: witness found in round %d", problem, k, ell + 1)
            break

    det = details.copy() if details else {}
    if partition is not None:
        det.setdefault("max_load", partition.max_load)
        det.setdefault("max_deg", partition.max_degree)
    if estimate is not None:
        det.setdefault("estimate", estimate)
    if rt.mode == "simulated" and rt.trace:
        busy = trace_compute + trace_comm
        det.setdefault("trace_compute_seconds", trace_compute)
        det.setdefault("trace_comm_seconds", trace_comm)
        det.setdefault("trace_comm_fraction", trace_comm / busy if busy > 0 else 0.0)
    if fc is not None and fc.injector is not None:
        det["resilience"] = fc.resilience(virtual_total)
    return DetectionResult(
        problem=problem,
        k=k,
        found=any(r.hit for r in records),
        rounds=records,
        eps=eps,
        mode=rt.mode,
        n_processors=rt.n_processors,
        n1=rt.n1,
        n2=sched.n2,
        virtual_seconds=virtual_total,
        wall_seconds=time.perf_counter() - wall0,
        details=det,
    )


def detect_path(
    graph: CSRGraph,
    k: int,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    early_exit: bool = True,
) -> DetectionResult:
    """Decide whether ``graph`` contains a simple path on ``k`` vertices.

    One-sided Monte Carlo: "yes" answers are certificates; "no" answers are
    wrong with probability at most ``eps``.
    """
    rt = runtime or MidasRuntime()
    factory = (
        make_path_phase_program_overlapped if rt.overlap else make_path_phase_program
    )
    return _run_scalar_detection(
        "k-path", graph, k, eps, rng, rt, levels=k,
        seq_phase=lambda fp, q0, n2: path_phase_value(graph, fp, q0, n2),
        program_factory=factory,
        early_exit=early_exit,
    )


def detect_tree(
    graph: CSRGraph,
    template: TreeTemplate,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    early_exit: bool = True,
) -> DetectionResult:
    """Decide whether the template tree has a non-induced embedding."""
    rt = runtime or MidasRuntime()
    specs = decompose_template(template)
    tree_factory = (
        make_tree_phase_program_overlapped if rt.overlap else make_tree_phase_program
    )

    return _run_scalar_detection(
        "k-tree", graph, template.k, eps, rng, rt, levels=template.k,
        seq_phase=lambda fp, q0, n2: tree_phase_value(graph, template, fp, q0, n2, specs),
        program_factory=lambda views, fp, q0, n2: tree_factory(
            views, template, fp, q0, n2, specs
        ),
        early_exit=early_exit,
        details={"template": template.name, "n_subtrees": len(specs)},
    )


def sequential_detect_path(graph: CSRGraph, k: int, eps: float = 0.2, rng=None) -> bool:
    """Paper Algorithm 1 as a convenience boolean (sequential mode)."""
    return detect_path(graph, k, eps=eps, rng=rng).found


def max_weight_path(
    graph: CSRGraph,
    k: int,
    weights: np.ndarray,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    z_max: Optional[int] = None,
) -> Optional[int]:
    """Maximum total node weight of any simple k-path (Problem 1 variant).

    ``weights`` are non-negative integers (use
    :func:`repro.scanstat.weights.round_weights` for real weights).
    Returns ``None`` when no k-path is detected at all.  One-sided per
    weight cell: a returned value is certified achievable; the true
    maximum exceeds it with probability at most ``eps``.
    """
    rt = runtime or MidasRuntime()
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},), got {w.shape}")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    if k < 1 or k > graph.n:
        return None
    if z_max is None:
        z_max = int(np.sort(w)[-k:].sum())
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "max-weight-path")
    sched = rt.schedule_for(k)
    fld = default_field_for_k(k)

    views = sim_cost_model = None
    if rt.mode == "simulated":
        _partition, views = _prepare_parallel(graph, rt)
        sim_cost_model = rt.get_cluster().cost_model(rt.n1)

    hit = np.zeros(z_max + 1, dtype=bool)
    for ell in range(rounds):
        fp = Fingerprint.draw(graph.n, k, rng.child(f"round{ell}"), levels=k, field=fld)
        acc = np.zeros(z_max + 1, dtype=fld.dtype)
        if rt.mode == "simulated":
            for batch in sched.batches():
                for t in batch:
                    q0, _ = sched.phase_window(t)
                    prog = make_weighted_path_phase_program(
                        views, w, fp, z_max, q0, sched.n2
                    )
                    sim = Simulator(
                        rt.n1, cost_model=sim_cost_model,
                        measure_compute=rt.measure_compute, trace=rt.trace,
                    )
                    acc ^= np.asarray(sim.run(prog).results[0], dtype=fld.dtype)
        else:
            for t in range(sched.n_phases):
                q0, _ = sched.phase_window(t)
                acc ^= weighted_path_phase_value(graph, w, fp, z_max, q0, sched.n2)
        hit |= acc != 0
    zs = np.nonzero(hit)[0]
    return int(zs.max()) if len(zs) else None


def detect_scan_cell(
    graph: CSRGraph,
    weights: np.ndarray,
    size: int,
    weight: int,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
) -> bool:
    """Decide one (size, weight) cell: is there a connected subgraph of
    exactly ``size`` vertices and total weight ``weight``?

    This is the cheap single-cell query used by cluster extraction — it
    runs only the ``dim = size`` evaluation (``2^size`` iterations) instead
    of the whole grid, and exits on the first hitting round.
    """
    rt = runtime or MidasRuntime()
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},), got {w.shape}")
    if not (1 <= size <= graph.n) or weight < 0:
        return False
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "scan-cell")
    sched = rt.schedule_for(size)
    fld = default_field_for_k(max(size, 2))
    for ell in range(rounds):
        fp = Fingerprint.draw(graph.n, size, rng.child(f"round{ell}"), levels=size + 1,
                              field=fld)
        acc = np.zeros(weight + 1, dtype=fld.dtype)
        for t in range(sched.n_phases):
            q0, _ = sched.phase_window(t)
            acc ^= scanstat_phase_value(graph, w, fp, weight, q0, sched.n2)
        if acc[weight] != 0:
            return True
    return False


def scan_grid(
    graph: CSRGraph,
    weights: np.ndarray,
    k: int,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    z_max: Optional[int] = None,
    sizes=None,
) -> ScanGridResult:
    """Detect all (size ``j <= k``, weight ``z``) connected subgraphs.

    ``weights`` are non-negative integers (round real weights first with
    :mod:`repro.scanstat.weights`).  Size row ``j`` is decided by its own
    ``2^j``-iteration evaluation (see the note in
    :mod:`repro.core.evaluator_scanstat`): the total work is dominated by
    the ``j = k`` row, matching the paper's ``2^k`` complexity.

    ``sizes`` optionally restricts which size rows are evaluated (default
    ``1..k``); rows outside it stay undetected in the returned grid.
    """
    rt = runtime or MidasRuntime()
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},), got {w.shape}")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    if k < 1 or k > graph.n:
        raise ConfigurationError(f"k must be in [1, {graph.n}], got {k}")
    if z_max is None:
        top = np.sort(w)[-k:]
        z_max = int(top.sum())
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "scan-grid")
    wall0 = time.perf_counter()

    partition = views = sim_cost_model = None
    if rt.mode == "simulated":
        partition, views = _prepare_parallel(graph, rt)
        sim_cost_model = rt.get_cluster().cost_model(rt.n1)
    elif rt.mode == "modeled":
        partition = make_partition(
            graph, rt.n1, rt.partition_method,
            rng=RngStream(rt.partition_seed, name="partition"),
        )

    if sizes is None:
        sizes = range(1, k + 1)
    sizes = sorted({int(j) for j in sizes})
    if sizes and (sizes[0] < 1 or sizes[-1] > k):
        raise ConfigurationError(f"sizes must lie in [1, {k}], got {sizes}")

    rec = rt.get_recorder()
    reg = rt.get_metrics()
    fc = _FaultContext(rt, reg, "scanstat") if rt.mode == "simulated" else None
    rounds_ctr = reg.counter(
        "midas_rounds_total", "Amplification rounds executed"
    ).labels(problem="scanstat", mode=rt.mode)
    bytes_ctr = reg.counter(
        "midas_comm_bytes_total", "Wire bytes sent in simulated phases"
    ).labels(problem="scanstat")

    detected = np.zeros((k + 1, z_max + 1), dtype=bool)
    virtual_total = 0.0
    cursor = 0.0  # run-level virtual clock for the spliced trace
    for j in sizes:
        sub_rt = MidasRuntime(
            n_processors=rt.n_processors, n1=rt.n1, n2=rt.n2, mode=rt.mode,
            cluster=rt.cluster, partition_method=rt.partition_method,
            calibration=rt.calibration, measure_compute=rt.measure_compute,
            trace=rt.trace, partition_seed=rt.partition_seed,
            overlap=rt.overlap,
        )
        sched = sub_rt.schedule_for(j)
        fld = default_field_for_k(max(j, 2))
        size_rng = rng.child(f"size{j}")
        phase_hist = reg.histogram(
            "midas_phase_seconds", "Per-phase time (virtual makespan or wall)"
        ).labels(problem="scanstat", mode=rt.mode, k=j, n1=rt.n1, n2=sched.n2)
        estimate = None
        if rt.mode == "modeled":
            stats = PartitionStats.from_partition(partition)
            estimate = estimate_runtime(
                stats, sched, rt.get_calibration(),
                rt.get_cluster().cost_model(min(rt.n_processors, rt.get_cluster().total_cores)),
                eps=eps, problem="scanstat", z_axis=z_max + 1,
            )
        for ell in range(rounds):
            fp = Fingerprint.draw(
                graph.n, j, size_rng.child(f"round{ell}"), levels=j + 1, field=fld
            )
            acc = np.zeros(z_max + 1, dtype=fld.dtype)
            round_virtual = 0.0
            if rt.mode == "simulated":
                scan_factory = (
                    make_scanstat_phase_program_overlapped
                    if rt.overlap
                    else make_scanstat_phase_program
                )
                for bi, batch in enumerate(sched.batches()):
                    batch_time = 0.0
                    for gi, t in enumerate(batch):
                        q0, q1 = sched.phase_window(t)
                        prog = scan_factory(views, w, fp, z_max, q0, sched.n2)
                        res, sim, extra, failed = _run_phase_resilient(
                            rt, fc, prog, f"size{j}/r{ell}/b{bi}/p{t}",
                            sim_cost_model,
                            want_trace=rt.trace or rec is not None,
                        )
                        acc ^= np.asarray(res.results[0], dtype=fld.dtype)
                        batch_time = max(batch_time, extra + res.makespan)
                        phase_hist.observe(res.makespan)
                        if rec is not None:
                            for shift, attempt, events in failed:
                                rec.extend(
                                    events, t_shift=cursor + shift,
                                    rank_offset=gi * rt.n1,
                                    scope=Scope(round=ell, batch=bi, phase=t,
                                                q0=q0, q1=q1,
                                                label=f"size{j} failed-attempt{attempt}"),
                                )
                            rec.extend(
                                sim.trace.events, t_shift=cursor + extra,
                                rank_offset=gi * rt.n1,
                                scope=Scope(round=ell, batch=bi, phase=t,
                                            q0=q0, q1=q1, label=f"size{j}"),
                            )
                        if rt.trace or rec is not None:
                            bytes_ctr.inc(res.summary.total_bytes)
                    round_virtual += batch_time
                    cursor += batch_time
                red = _reduce_cost(rt, 8 * (z_max + 1))
                round_virtual += red
                if rec is not None:
                    rec.record(-1, "collective", cursor, cursor + red,
                               info="round-reduce", nbytes=8 * (z_max + 1),
                               scope=Scope(round=ell, label=f"size{j} reduce"))
                cursor += red
            else:
                for t in range(sched.n_phases):
                    q0, q1 = sched.phase_window(t)
                    p0 = time.perf_counter()
                    acc ^= scanstat_phase_value(graph, w, fp, z_max, q0, sched.n2)
                    dt = time.perf_counter() - p0
                    phase_hist.observe(dt)
                    if rec is not None:
                        rec.record(0, "compute", cursor, cursor + dt,
                                   scope=Scope(round=ell, phase=t, q0=q0, q1=q1,
                                               label=f"size{j}"))
                        cursor += dt
                if estimate is not None:
                    round_virtual = estimate.total_seconds / rounds
            rounds_ctr.inc()
            detected[j] |= acc != 0
            virtual_total += round_virtual

    grid_details = {"weights_total": int(w.sum())}
    if fc is not None and fc.injector is not None:
        grid_details["resilience"] = fc.resilience(virtual_total)
    return ScanGridResult(
        k=k,
        z_max=z_max,
        detected=detected,
        rounds_run=rounds,
        eps=eps,
        mode=rt.mode,
        n_processors=rt.n_processors,
        n1=rt.n1,
        n2=rt.n2 or 0,
        virtual_seconds=virtual_total,
        wall_seconds=time.perf_counter() - wall0,
        details=grid_details,
    )
