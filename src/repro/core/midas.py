"""The MIDAS drivers (paper Algorithm 2), as thin wrappers over the
unified detection engine.

One entry point per application:

* :func:`detect_path` — is there a simple path on ``k`` vertices?
* :func:`detect_tree` — does the template tree embed (non-induced)?
* :func:`max_weight_path` — maximum node weight of any simple k-path;
* :func:`detect_scan_cell` — one (size, weight) scan-statistics cell;
* :func:`scan_grid` — which (size ``j <= k``, weight ``z``) connected
  subgraphs exist? (feeds :mod:`repro.scanstat.detect`)

Each builds a :class:`~repro.core.problems.ProblemSpec` and hands it to
the :class:`~repro.core.engine.DetectionEngine`, which owns the
round → batch → phase loop once for all problems; execution modes
(``sequential`` / ``simulated`` / ``modeled`` / ``threaded``) are
pluggable backends of the engine — see :mod:`repro.core.engine` for the
mode semantics and :class:`MidasRuntime` knobs.  Because every driver
routes through the same engine, all of them honor ``overlap``,
``fault_plan``, ``recorder``, and ``metrics`` uniformly — as well as
durability: ``MidasRuntime(checkpoint_dir=...)`` commits a
crash-consistent checkpoint at every round boundary and
``resume=True`` restores it bit-identically, while ``deadline`` /
``hang_timeout`` arm a watchdog that degrades the run to a partial
result (annotated with the live ``0.8^rounds`` miss bound) instead of
overrunning — see :mod:`repro.runtime.durable`.

Randomness is *round-scoped*: all modes draw identical fingerprints from
the caller's stream, so answers never depend on ``(N, N1, N2)``, the
backend, or (for the threaded backend) thread completion order.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.engine import DetectionEngine, EngineSession, MidasRuntime
from repro.core.problems import (
    ProblemSpec,
    path_problem,
    scanstat_problem,
    tree_problem,
    weighted_path_problem,
)
from repro.core.result import DetectionResult, RoundRecord, ScanGridResult
from repro.core.schedule import rounds_for_epsilon
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.templates import TreeTemplate
from repro.util.log import get_logger
from repro.util.rng import as_stream

_LOG = get_logger(__name__)


def _field_for(rt: MidasRuntime, k: int, plane: bool = False):
    """The GF(2^l) tables for ``k`` with the kernel this runtime resolves.

    ``plane=True`` marks call sites whose evaluator can keep the DP
    plane-resident (the k-path drivers) — the only ones where ``auto``
    may choose ``"bitsliced"``.  With a session attached the field comes
    from its per-``(degree, strategy)`` cache; otherwise a fresh,
    identical table set is built here (``None`` would make the problem
    factory build a default-kernel field, losing the resolution).
    """
    from repro.ff.gf2m import field_degree_for_k

    deg = field_degree_for_k(k)
    strategy = rt.resolve_kernel(deg, rt.schedule_for(k).n2, plane=plane)
    if rt.session is not None:
        return rt.session.field_for_k(k, strategy=strategy)
    from repro.ff.gf2m import default_field_for_k

    return default_field_for_k(
        k, kernel_strategy=None if strategy == "auto" else strategy
    )


def _run_scalar_detection(
    graph: CSRGraph,
    spec: ProblemSpec,
    k: int,
    eps: float,
    rng,
    rt: MidasRuntime,
    early_exit: bool,
) -> DetectionResult:
    """Shared k-path / k-tree wrapper: engine run -> DetectionResult."""
    problem = spec.name
    if graph.n < 1:
        raise ConfigurationError("graph must have at least one vertex")
    if k > graph.n:
        # more template vertices than graph vertices: trivially absent
        det = dict(spec.details)
        det["reason"] = "k exceeds |V|"
        return DetectionResult(problem, k, False, [], eps, mode=rt.mode,
                               n_processors=rt.n_processors, n1=rt.n1, n2=rt.n2 or 0,
                               details=det)
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, f"{problem}-detect")
    wall0 = time.perf_counter()
    with DetectionEngine(graph, rt, problem) as engine:
        out = engine.run_stage(
            spec, rounds, rng, eps=eps,
            stop=spec.hit if early_exit else None,
            want_estimate=engine.want_estimate_default(),
        )
        records: List[RoundRecord] = [
            RoundRecord(i, v, rv)
            for i, (v, rv) in enumerate(zip(out.values, out.virtuals))
        ]
        det = engine.fill_details(dict(spec.details), estimate=out.estimate)
        engine.note_result(any(r.hit for r in records))
    return DetectionResult(
        problem=problem,
        k=k,
        found=any(r.hit for r in records),
        rounds=records,
        eps=eps,
        mode=rt.mode,
        n_processors=rt.n_processors,
        n1=rt.n1,
        n2=out.schedule.n2,
        virtual_seconds=engine.virtual_total,
        wall_seconds=time.perf_counter() - wall0,
        details=det,
    )


def detect_path(
    graph: CSRGraph,
    k: int,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    early_exit: bool = True,
) -> DetectionResult:
    """Decide whether ``graph`` contains a simple path on ``k`` vertices.

    One-sided Monte Carlo: "yes" answers are certificates; "no" answers are
    wrong with probability at most ``eps``.
    """
    rt = runtime or MidasRuntime()
    return _run_scalar_detection(
        graph, path_problem(graph, k, field=_field_for(rt, k, plane=True)),
        k, eps, rng, rt, early_exit
    )


def detect_tree(
    graph: CSRGraph,
    template: TreeTemplate,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    early_exit: bool = True,
) -> DetectionResult:
    """Decide whether the template tree has a non-induced embedding."""
    rt = runtime or MidasRuntime()
    return _run_scalar_detection(
        graph, tree_problem(graph, template,
                            field=_field_for(rt, template.k)),
        template.k, eps, rng, rt, early_exit
    )


def sequential_detect_path(graph: CSRGraph, k: int, eps: float = 0.2, rng=None) -> bool:
    """Paper Algorithm 1 as a convenience boolean (sequential mode)."""
    return detect_path(graph, k, eps=eps, rng=rng).found


def max_weight_path(
    graph: CSRGraph,
    k: int,
    weights: np.ndarray,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    z_max: Optional[int] = None,
) -> Optional[int]:
    """Maximum total node weight of any simple k-path (Problem 1 variant).

    ``weights`` are non-negative integers (use
    :func:`repro.scanstat.weights.round_weights` for real weights).
    Returns ``None`` when no k-path is detected at all.  One-sided per
    weight cell: a returned value is certified achievable; the true
    maximum exceeds it with probability at most ``eps``.
    """
    rt = runtime or MidasRuntime()
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},), got {w.shape}")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    if k < 1 or k > graph.n:
        return None
    if z_max is None:
        z_max = int(np.sort(w)[-k:].sum())
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "max-weight-path")
    spec = weighted_path_problem(graph, w, k, z_max,
                                 field=_field_for(rt, k))
    with DetectionEngine(graph, rt, spec.name) as engine:
        out = engine.run_stage(spec, rounds, rng, eps=eps,
                               want_estimate=engine.want_estimate_default())
        hit = np.zeros(z_max + 1, dtype=bool)
        for acc in out.values:
            hit |= acc != 0
        engine.note_result(bool(hit.any()))
    zs = np.nonzero(hit)[0]
    return int(zs.max()) if len(zs) else None


def detect_scan_cell(
    graph: CSRGraph,
    weights: np.ndarray,
    size: int,
    weight: int,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
) -> bool:
    """Decide one (size, weight) cell: is there a connected subgraph of
    exactly ``size`` vertices and total weight ``weight``?

    This is the cheap single-cell query used by cluster extraction — it
    runs only the ``dim = size`` evaluation (``2^size`` iterations) instead
    of the whole grid, and exits on the first hitting round.
    """
    rt = runtime or MidasRuntime()
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},), got {w.shape}")
    if not (1 <= size <= graph.n) or weight < 0:
        return False
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "scan-cell")
    spec = scanstat_problem(graph, w, size, z_max=weight,
                            field=_field_for(rt, max(size, 2)))
    with DetectionEngine(graph, rt, spec.name) as engine:
        out = engine.run_stage(spec, rounds, rng, eps=eps,
                               stop=lambda acc: acc[weight] != 0)
        engine.note_result(bool(out.values and out.values[-1][weight] != 0))
    return bool(out.values and out.values[-1][weight] != 0)


def scan_grid(
    graph: CSRGraph,
    weights: np.ndarray,
    k: int,
    eps: float = 0.2,
    rng=None,
    runtime: Optional[MidasRuntime] = None,
    z_max: Optional[int] = None,
    sizes=None,
) -> ScanGridResult:
    """Detect all (size ``j <= k``, weight ``z``) connected subgraphs.

    ``weights`` are non-negative integers (round real weights first with
    :mod:`repro.scanstat.weights`).  Size row ``j`` is decided by its own
    ``2^j``-iteration evaluation (see the note in
    :mod:`repro.core.evaluator_scanstat`): the total work is dominated by
    the ``j = k`` row, matching the paper's ``2^k`` complexity.

    ``sizes`` optionally restricts which size rows are evaluated (default
    ``1..k``); rows outside it stay undetected in the returned grid.
    """
    rt = runtime or MidasRuntime()
    w = np.asarray(weights, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ConfigurationError(f"weights must have shape ({graph.n},), got {w.shape}")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    if k < 1 or k > graph.n:
        raise ConfigurationError(f"k must be in [1, {graph.n}], got {k}")
    if z_max is None:
        top = np.sort(w)[-k:]
        z_max = int(top.sum())
    rounds = rounds_for_epsilon(eps)
    rng = as_stream(rng, "scan-grid")
    wall0 = time.perf_counter()

    if sizes is None:
        sizes = range(1, k + 1)
    sizes = sorted({int(j) for j in sizes})
    if sizes and (sizes[0] < 1 or sizes[-1] > k):
        raise ConfigurationError(f"sizes must lie in [1, {k}], got {sizes}")

    detected = np.zeros((k + 1, z_max + 1), dtype=bool)
    with DetectionEngine(graph, rt, "scanstat") as engine:
        for j in sizes:
            out = engine.run_stage(
                scanstat_problem(graph, w, j, z_max,
                                 field=_field_for(rt, max(j, 2))), rounds,
                rng.child(f"size{j}"), eps=eps,
                key_prefix=f"size{j}/", label=f"size{j}",
                want_estimate=(rt.mode == "modeled"),
            )
            for acc in out.values:
                detected[j] |= acc != 0
        engine.note_result(bool(detected.any()))
        grid_details = engine.fill_details({"weights_total": int(w.sum())})
        # the grid result keeps only run-wide keys, not per-size partition stats
        grid_details.pop("max_load", None)
        grid_details.pop("max_deg", None)
    return ScanGridResult(
        k=k,
        z_max=z_max,
        detected=detected,
        rounds_run=rounds,
        eps=eps,
        mode=rt.mode,
        n_processors=rt.n_processors,
        n1=rt.n1,
        n2=rt.n2 or 0,
        virtual_seconds=engine.virtual_total,
        wall_seconds=time.perf_counter() - wall0,
        details=grid_details,
    )


__all__ = [
    "MidasRuntime",
    "EngineSession",
    "detect_path",
    "detect_tree",
    "sequential_detect_path",
    "max_weight_path",
    "detect_scan_cell",
    "scan_grid",
]
