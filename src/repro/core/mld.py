"""The k-MLD problem as a first-class abstraction (paper Problem 3).

Two deliverables live here:

* :class:`MLDCircuit` — a generic recursively-defined polynomial: callers
  supply the DP structure (how level values are combined from neighbour
  sums), and :func:`detect_multilinear` evaluates it over the matrix
  representation without the caller touching fields or fingerprints.  The
  k-path and k-tree reductions are provided as constructors; new
  reductions (other subgraph families) plug in the same way.
* :func:`algorithm1_reference` — the paper's **Algorithm 1 verbatim**:
  evaluate over the *integers* with ``P(i,1) = 1 + (-1)^{v_i^T t_bin}``,
  accumulate ``P mod 2^{k+1}``, answer "yes" iff nonzero.  This is the
  Koutis formulation the paper presents before the Williams ``GF(2^l)``
  refinement that the production evaluators implement.  It is exponential
  in memory-free but slow (big-int coefficients are avoided by reducing
  mod ``2^{k+1}`` throughout), and exists as an executable specification:
  the test-suite cross-checks the production detector against it.

Note the known gap in the verbatim algorithm (also present in the paper's
pseudocode): over the integers mod ``2^{k+1}``, distinct multilinear terms
can pairwise cancel — most plainly, an undirected path and its reverse
contribute identically, making ``P ≡ 0 (mod 2^{k+1})`` even when paths
exist.  :func:`algorithm1_reference` therefore accepts ``directed=True``
(count each walk orientation from a fixed endpoint order) for testing the
positive direction, and the production path is the fingerprinted
``GF(2^l)`` version.  This is exactly the deviation DESIGN.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.schedule import rounds_for_epsilon
from repro.ff.fingerprint import Fingerprint, base_indicator_block
from repro.ff.gf2m import default_field_for_k
from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.graph.templates import TreeTemplate, decompose_template
from repro.util.rng import as_stream


@dataclass(frozen=True)
class CircuitStep:
    """One DP step of an :class:`MLDCircuit`.

    ``target`` is the slot written; ``operand`` the slot whose values are
    gathered over neighbours and summed; ``factor`` the slot multiplied
    with the neighbour sum (the paper's ``P(i, j') * sum_u P(u, j'')``
    shape).  ``variable_level`` is the fingerprint level whose ``x_i``
    base value multiplies into the result, or ``None`` if no fresh
    variable enters at this step (tree steps introduce variables only at
    leaves).
    """

    target: int
    factor: Optional[int]
    operand: int
    variable_level: Optional[int]


@dataclass(frozen=True)
class MLDCircuit:
    """A recursively defined polynomial of multilinear degree ``k``.

    ``leaves[slot] = level`` seeds slot ``slot`` with the variable at
    fingerprint level ``level``; ``steps`` then run in order; ``output``
    names the slot whose vertex-sum is the polynomial value.
    """

    k: int
    n_slots: int
    leaves: Sequence[tuple]
    steps: Sequence[CircuitStep]
    output: int
    levels: int
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if not (0 <= self.output < self.n_slots):
            raise ConfigurationError("output slot out of range")
        for slot, level in self.leaves:
            if not (0 <= slot < self.n_slots) or not (0 <= level < self.levels):
                raise ConfigurationError(f"bad leaf ({slot}, {level})")
        for s in self.steps:
            for ref in (s.target, s.operand):
                if not (0 <= ref < self.n_slots):
                    raise ConfigurationError(f"slot {ref} out of range")
            if s.factor is not None and not (0 <= s.factor < self.n_slots):
                raise ConfigurationError(f"slot {s.factor} out of range")
            if s.variable_level is not None and not (0 <= s.variable_level < self.levels):
                raise ConfigurationError(f"level {s.variable_level} out of range")

    # ------------------------------------------------------------ builders
    @staticmethod
    def k_path(k: int) -> "MLDCircuit":
        """The k-path reduction (Section III-D): levels = path positions."""
        leaves = [(0, 0)]
        steps = [
            CircuitStep(target=j, factor=None, operand=j - 1, variable_level=j)
            for j in range(1, k)
        ]
        return MLDCircuit(
            k=k, n_slots=k, leaves=leaves, steps=steps, output=k - 1,
            levels=k, name=f"k_path({k})",
        )

    @staticmethod
    def k_tree(template: TreeTemplate) -> "MLDCircuit":
        """The k-tree reduction (Section V-A) from a template decomposition."""
        specs = decompose_template(template)
        leaves = []
        steps = []
        for s in specs:
            if s.is_leaf:
                leaves.append((s.sid, s.root))
            else:
                steps.append(
                    CircuitStep(
                        target=s.sid, factor=s.child_same, operand=s.child_branch,
                        variable_level=None,
                    )
                )
        return MLDCircuit(
            k=template.k, n_slots=len(specs), leaves=leaves, steps=steps,
            output=specs[-1].sid, levels=template.k, name=f"k_tree({template.name})",
        )

    # ----------------------------------------------------------- evaluation
    def eval_phase(self, graph: CSRGraph, fp: Fingerprint, q_start: int, n2: int) -> np.ndarray:
        """Evaluate per-iteration values over a window: returns ``(n2,)``."""
        field = fp.field
        slots: List[Optional[np.ndarray]] = [None] * self.n_slots
        for slot, level in self.leaves:
            slots[slot] = fp.level_base_block(level, q_start, n2)
        for s in self.steps:
            src = slots[s.operand]
            if src is None:
                raise ConfigurationError(
                    f"step writes slot {s.target} before operand {s.operand} is set"
                )
            acc = xor_segment_reduce(src[graph.indices], graph.indptr)
            if s.factor is not None:
                if slots[s.factor] is None:
                    raise ConfigurationError(
                        f"step factor slot {s.factor} not yet set"
                    )
                acc = field.mul(slots[s.factor], acc)
            if s.variable_level is not None:
                acc = field.mul(
                    fp.level_base_block(s.variable_level, q_start, n2), acc
                )
            slots[s.target] = acc
        out = slots[self.output]
        if out is None:
            raise ConfigurationError("output slot never written")
        return field.xor_sum(out, axis=0)


def make_circuit_phase_program(views, circuit: MLDCircuit, fp: Fingerprint,
                               q_start: int, n2: int):
    """SPMD rank program evaluating an arbitrary :class:`MLDCircuit`.

    Each step halo-exchanges the operand slot's boundary values, then runs
    the same gather/reduce/multiply as :meth:`MLDCircuit.eval_phase` on the
    local rows.  Tags carry the step index so concurrent exchanges of
    different slots cannot mix.  Returns the phase scalar from every rank,
    bit-identical to the single-process evaluation.
    """
    from repro.runtime.comm import AllReduce, Recv, Send

    field = fp.field

    def program(ctx):
        view = views[ctx.rank]
        slots: List[Optional[np.ndarray]] = [None] * circuit.n_slots
        for slot, level in circuit.leaves:
            slots[slot] = fp.level_base_block(level, q_start, n2, nodes=view.own)
        for step_idx, s in enumerate(circuit.steps):
            src = slots[s.operand]
            if src is None:
                raise ConfigurationError(
                    f"step writes slot {s.target} before operand {s.operand} is set"
                )
            ghost = np.zeros((view.n_ghost, n2), dtype=field.dtype)
            for peer, idxs in view.send_lists.items():
                yield Send(peer, ("c", step_idx), src[idxs])
            for peer, gslots in view.recv_lists.items():
                msg = yield Recv(peer, ("c", step_idx))
                ghost[gslots] = msg
            combined = np.concatenate([src, ghost], axis=0)
            acc = xor_segment_reduce(combined[view.indices], view.indptr)
            if s.factor is not None:
                if slots[s.factor] is None:
                    raise ConfigurationError(f"step factor slot {s.factor} not yet set")
                acc = field.mul(slots[s.factor], acc)
            if s.variable_level is not None:
                acc = field.mul(
                    fp.level_base_block(s.variable_level, q_start, n2, nodes=view.own),
                    acc,
                )
            slots[s.target] = acc
        out = slots[circuit.output]
        if out is None:
            raise ConfigurationError("output slot never written")
        local = int(np.bitwise_xor.reduce(field.xor_sum(out, axis=0))) if view.n_own else 0
        total = yield AllReduce(np.uint64(local), op="xor", nbytes=8)
        return int(total)

    return program


def detect_multilinear(
    graph: CSRGraph,
    circuit: MLDCircuit,
    eps: float = 0.2,
    rng=None,
    n2: Optional[int] = None,
    early_exit: bool = True,
) -> bool:
    """Decide whether ``circuit`` has a degree-``k`` multilinear term.

    One-sided Monte Carlo with failure probability at most ``eps``; the
    generic-driver analogue of :func:`repro.core.midas.detect_path`.
    """
    rng = as_stream(rng, "mld")
    k = circuit.k
    total = 1 << k
    if n2 is None:
        n2 = min(total, 64)
    if total % n2:
        raise ConfigurationError(f"n2 (={n2}) must divide 2^k (={total})")
    field = default_field_for_k(k)
    rounds = rounds_for_epsilon(eps)
    hit = False
    for ell in range(rounds):
        fp = Fingerprint.draw(graph.n, k, rng.child(f"round{ell}"),
                              levels=circuit.levels, field=field)
        value = 0
        for t in range(total // n2):
            value ^= int(np.bitwise_xor.reduce(
                circuit.eval_phase(graph, fp, t * n2, n2)
            ))
        if value:
            hit = True
            if early_exit:
                break
    return hit


def algorithm1_reference(
    graph: CSRGraph,
    k: int,
    rng=None,
    directed_from: Optional[int] = None,
) -> int:
    """Paper Algorithm 1, verbatim over the integers mod ``2^(k+1)``.

    One round: draw ``v_i`` uniformly in ``Z_2^k``; for each iteration
    ``t`` evaluate the k-path DP with ``P(i, 1) = 1 + (-1)^{v_i^T t_bin}``
    (values in {0, 2}); return ``sum_t sum_i P(i, t, k) mod 2^(k+1)``.

    ``directed_from`` restricts the final sum to walks *ending* at one
    vertex — useful in tests because, as the module docstring explains,
    the undirected total is identically 0 mod ``2^(k+1)`` whenever every
    path pairs with its reverse.
    """
    rng = as_stream(rng, "alg1")
    if not (1 <= k <= 20):
        raise ConfigurationError(f"reference algorithm supports 1 <= k <= 20, got {k}")
    n = graph.n
    mod = 1 << (k + 1)
    v = rng.integers(0, 1 << k, size=n).astype(np.uint64)
    total = 0
    for t in range(1 << k):
        base = (2 * base_indicator_block(v, t, 1)[:, 0].astype(np.int64))  # {0, 2}
        p = base.copy()
        for _j in range(1, k):
            gathered = p[graph.indices]
            # integer segment-sum mod 2^(k+1)
            sums = np.zeros(n, dtype=np.int64)
            np.add.at(sums, np.repeat(np.arange(n), np.diff(graph.indptr)), gathered)
            p = (base * sums) % mod
        if directed_from is None:
            total = (total + int(p.sum())) % mod
        else:
            total = (total + int(p[directed_from])) % mod
    return total
