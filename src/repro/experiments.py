"""Programmatic figure regeneration: the paper's sweeps as a library API.

Each function reproduces one experiment family from Section VI and returns
structured rows (lists of dicts) that callers can print, plot, or assert
on.  The pytest benchmarks and the ``python -m repro figures`` CLI command
are thin wrappers over these, so a downstream user can regenerate any
figure programmatically:

    from repro.experiments import fig11_series
    rows = fig11_series()          # modeled MIDAS vs FASCIA per k
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.fascia import FasciaModel
from repro.baselines.giraph_model import GiraphModel
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.errors import ConfigurationError
from repro.graph.datasets import DATASETS
from repro.runtime.cluster import VirtualCluster, juliet
from repro.runtime.costmodel import KernelCalibration

Row = Dict[str, object]


def _dataset_nm(dataset: str) -> tuple:
    if dataset not in DATASETS:
        raise ConfigurationError(
            f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}"
        )
    spec = DATASETS[dataset]
    return spec.paper_nodes, spec.paper_edges


def _default_calibration(calibration: Optional[KernelCalibration]) -> KernelCalibration:
    return calibration if calibration is not None else KernelCalibration.synthetic()


def _tuned_n2(k: int, n_processors: int, n1: int, calibration: KernelCalibration) -> int:
    """BSMax capped at the calibration's cache sweet spot (paper: N2 < 1024)."""
    tab = calibration.as_table()
    n2 = min(PhaseSchedule.bs_max(k, n_processors, n1), min(tab, key=tab.get))
    while (1 << k) % n2:
        n2 -= 1
    return max(1, n2)


def modeled_runtime(
    dataset: str,
    k: int,
    n_processors: int,
    n1: int,
    n2: Optional[int] = None,
    eps: float = 0.2,
    problem: str = "path",
    z_axis: int = 1,
    calibration: Optional[KernelCalibration] = None,
    cluster: Optional[VirtualCluster] = None,
) -> float:
    """One modeled MIDAS runtime (seconds) at paper dataset scale."""
    cal = _default_calibration(calibration)
    cl = cluster if cluster is not None else juliet()
    n, m = _dataset_nm(dataset)
    if n2 is None:
        n2 = _tuned_n2(k, n_processors, n1, cal)
    sched = PhaseSchedule(k, n_processors, n1, n2)
    return estimate_runtime(
        PartitionStats.random_model(n, m, n1), sched, cal,
        cl.cost_model(min(n_processors, cl.total_cores)),
        eps=eps, problem=problem, z_axis=z_axis,
    ).total_seconds


def fig3_8_series(
    dataset: str = "random-1e6",
    k: int = 6,
    n_processors: Sequence[int] = (128, 256, 512),
    n1_sweep: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
    bs_max: bool = False,
    calibration: Optional[KernelCalibration] = None,
) -> List[Row]:
    """Figures 3-5 (``bs_max=False``) / 6-8 (``bs_max=True``): runtime vs N1."""
    cal = _default_calibration(calibration)
    rows: List[Row] = []
    for n1 in n1_sweep:
        row: Row = {"n1": n1}
        for N in n_processors:
            if n1 > N or N % n1:
                row[f"N={N}"] = None
                continue
            n2 = PhaseSchedule.bs_max(k, N, n1) if bs_max else 1
            row[f"N={N}"] = modeled_runtime(
                dataset, k, N, n1, n2=n2, calibration=cal
            )
        rows.append(row)
    return rows


def optimal_n1(rows: List[Row], column: str) -> Optional[int]:
    """The N1 minimizing ``column`` in a :func:`fig3_8_series` result."""
    best, arg = float("inf"), None
    for r in rows:
        v = r.get(column)
        if v is not None and v < best:
            best, arg = v, r["n1"]
    return arg


def fig9_series(
    dataset: str = "random-1e6",
    k: int = 10,
    n1_series: Sequence[int] = (32, 64, 128),
    n_sweep: Sequence[int] = (32, 64, 128, 256, 512),
    calibration: Optional[KernelCalibration] = None,
) -> List[Row]:
    """Figure 9: strong-scaling speedup vs N for fixed N1 (+ N1=Best)."""
    cal = _default_calibration(calibration)
    times = {
        n1: {
            N: modeled_runtime(dataset, k, N, n1, calibration=cal)
            for N in n_sweep
            if n1 <= N and N % n1 == 0
        }
        for n1 in n1_series
    }
    best = {}
    for N in n_sweep:
        cands = [
            modeled_runtime(dataset, k, N, c, calibration=cal)
            for c in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
            if c <= N and N % c == 0
        ]
        best[N] = min(cands)
    rows: List[Row] = []
    n_min = min(n_sweep)
    for N in n_sweep:
        row: Row = {"N": N}
        for n1 in n1_series:
            series = times[n1]
            row[f"N1={n1}"] = (
                series[min(series)] / series[N] if N in series else None
            )
        row["N1=Best"] = best[n_min] / best[N]
        rows.append(row)
    return rows


def fig10_series(
    datasets: Sequence[str] = ("random-1e6", "com-Orkut", "miami"),
    k: int = 10,
    n_sweep: Sequence[int] = (32, 64, 128, 256, 512),
    problem: str = "path",
    z_axis: int = 1,
    calibration: Optional[KernelCalibration] = None,
) -> List[Row]:
    """Figure 10 (``problem='path'``) / Figure 12 (``problem='scanstat'``):
    classic strong scaling with N1 = N."""
    cal = _default_calibration(calibration)
    curves = {
        d: {
            N: modeled_runtime(d, k, N, N, problem=problem, z_axis=z_axis,
                               calibration=cal)
            for N in n_sweep
        }
        for d in datasets
    }
    rows: List[Row] = []
    n_min = min(n_sweep)
    for N in n_sweep:
        row: Row = {"N": N}
        for d in datasets:
            row[f"{d} [s]"] = curves[d][N]
            row[f"{d} speedup"] = curves[d][n_min] / curves[d][N]
        rows.append(row)
    return rows


def fig11_series(
    dataset: str = "random-1e6",
    k_sweep: Sequence[int] = tuple(range(4, 19)),
    n_processors: int = 512,
    n1: int = 32,
    calibration: Optional[KernelCalibration] = None,
    fascia: Optional[FasciaModel] = None,
) -> List[Row]:
    """Figure 11: modeled MIDAS vs FASCIA runtime per subgraph size."""
    cal = _default_calibration(calibration)
    fm = fascia if fascia is not None else FasciaModel()
    n, m = _dataset_nm(dataset)
    rows: List[Row] = []
    for k in k_sweep:
        mt = modeled_runtime(dataset, k, n_processors, n1, calibration=cal)
        fr = fm.run(n=n, m=m, k=k, n_processors=n_processors)
        rows.append(
            {
                "k": k,
                "midas_s": mt,
                "fascia_s": fr.seconds if fr.feasible else None,
                "fascia_feasible": fr.feasible,
                "ratio": (fr.seconds / mt) if fr.feasible else None,
            }
        )
    return rows


def giraph_series(
    sizes: Iterable[tuple] = (
        (500_000, 7_000_000),
        (1_000_000, 13_800_000),
        (2_000_000, 29_000_000),
        (4_000_000, 60_000_000),
        (10_000_000, 161_800_000),
    ),
    k: int = 10,
    n_processors: int = 256,
    n1: int = 32,
    calibration: Optional[KernelCalibration] = None,
    giraph: Optional[GiraphModel] = None,
) -> List[Row]:
    """Section I comparison: MIDAS vs Giraph scan statistics over graph size."""
    cal = _default_calibration(calibration)
    floor = min(cal.as_table().values())
    gm = giraph if giraph is not None else GiraphModel(c1_jvm=20.0 * floor)
    z_axis = k + 1
    rows: List[Row] = []
    for n, m in sizes:
        mt = estimate_runtime(
            PartitionStats.random_model(n, m, n1),
            PhaseSchedule(k, n_processors, n1, _tuned_n2(k, n_processors, n1, cal)),
            cal, juliet().cost_model(n_processors),
            problem="scanstat", z_axis=z_axis,
        ).total_seconds
        gt = gm.run_seconds(n, m, k, z_axis=z_axis)
        rows.append(
            {
                "nodes": n,
                "edges": m,
                "midas_s": mt,
                "giraph_s": gt if gt != float("inf") else None,
                "giraph_feasible": gt != float("inf"),
            }
        )
    return rows


def overlap_series(
    dataset: str = "random-1e6",
    k: int = 6,
    n_processors: int = 512,
    n1_sweep: Sequence[int] = (2, 8, 32, 128, 512),
    calibration: Optional[KernelCalibration] = None,
) -> List[Row]:
    """Irecv/Wait overlap headroom vs N1 (the overlap ablation, as API).

    Per row: modeled runtimes of the synchronous and overlapped exchanges
    at BS1, and the fractional saving — negligible in the compute-bound
    regime, growing where the paper's curves turn communication-bound.
    """
    cal = _default_calibration(calibration)
    n, m = _dataset_nm(dataset)
    cl = juliet()
    rows: List[Row] = []
    for n1 in n1_sweep:
        if n1 > n_processors or n_processors % n1:
            continue
        sched = PhaseSchedule(k, n_processors, n1, 1)
        stats = PartitionStats.random_model(n, m, n1)
        cm = cl.cost_model(n_processors)
        sync_t = estimate_runtime(stats, sched, cal, cm).total_seconds
        over_t = estimate_runtime(stats, sched, cal, cm, overlap=True).total_seconds
        rows.append(
            {
                "n1": n1,
                "sync_s": sync_t,
                "overlapped_s": over_t,
                "saving": 1.0 - over_t / sync_t,
            }
        )
    return rows


FIGURES = {
    "fig3-5": lambda cal: fig3_8_series(bs_max=False, calibration=cal),
    "fig6-8": lambda cal: fig3_8_series(bs_max=True, calibration=cal),
    "fig9": lambda cal: fig9_series(calibration=cal),
    "fig10": lambda cal: fig10_series(calibration=cal),
    "fig11": lambda cal: fig11_series(calibration=cal),
    "fig12": lambda cal: fig10_series(problem="scanstat", z_axis=9, k=8,
                                      calibration=cal),
    "giraph": lambda cal: giraph_series(calibration=cal),
    "overlap": lambda cal: overlap_series(calibration=cal),
}


def figure_rows(name: str, calibration: Optional[KernelCalibration] = None) -> List[Row]:
    """Regenerate one named figure's series (see :data:`FIGURES`)."""
    if name not in FIGURES:
        raise ConfigurationError(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
    return FIGURES[name](calibration)
