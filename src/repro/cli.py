"""Command-line interface: ``python -m repro <command> ...``.

Commands map one-to-one to the library's top-level workflows:

* ``datasets`` — print the Table II registry (optionally generating
  stand-ins at a scale);
* ``detect-path`` / ``detect-tree`` — run a detection on a generated or
  edge-list graph;
* ``scan`` — anomaly detection with a chosen statistic;
* ``calibrate`` — measure and print the c1(N2) kernel calibration;
* ``model`` — evaluate the Theorem-2 performance model for a
  ``(dataset, k, N, N1, N2)`` configuration;
* ``verify`` — run the full correctness tooling on one instance:
  sanitized detection, cross-backend replay, witness certification;
* ``watch`` — follow a live run: poll a ``--live-port`` endpoint's
  ``/status`` or tail a ``--progress-out`` JSONL stream
  (``--stall-timeout`` turns a dead heartbeat into a nonzero exit);
* ``resume`` — continue a killed run from its ``--checkpoint-dir``,
  bit-identically to an uninterrupted execution;
* ``serve`` — run the persistent multi-tenant detection service
  (preloaded graphs, engine-session reuse, result cache, quotas);
* ``query`` — send one query to a running ``serve`` endpoint.

The detection commands route through the service client abstraction:
in-process (:class:`~repro.service.client.LocalClient`) by default,
or against a remote ``repro serve`` with ``--server URL`` — results
are bit-identical either way because the query carries the exact RNG
lineage the standalone driver would have consumed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", choices=["miami", "com-Orkut", "random-1e6", "random-1e7"],
                     help="generate a Table II stand-in")
    src.add_argument("--edge-list", metavar="PATH", help="read a whitespace edge list")
    src.add_argument("--er", metavar="N", type=int,
                     help="generate an Erdos-Renyi graph with N nodes, m = N ln N")
    p.add_argument("--scale", type=float, default=0.001,
                   help="dataset scale (1.0 = paper size; default 0.001)")
    p.add_argument("--seed", type=int, default=0, help="root random seed")


def _load_graph(args):
    from repro.graph.datasets import load_dataset
    from repro.graph.generators import erdos_renyi
    from repro.graph.io import read_edge_list
    from repro.util.rng import RngStream

    rng = RngStream(args.seed, name="cli")
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale, rng=rng.child("data")), rng
    if args.edge_list:
        return read_edge_list(args.edge_list), rng
    return erdos_renyi(args.er, rng=rng.child("er")), rng


def _graph_label(args) -> str:
    """A human name for the loaded graph (registry alias, scenarios)."""
    if getattr(args, "dataset", None):
        return args.dataset
    if getattr(args, "edge_list", None):
        from pathlib import Path

        return Path(args.edge_list).stem
    return f"er{args.er}" if getattr(args, "er", None) else "graph"


def _add_client_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--server", metavar="URL", default=None,
                   help="send the query to a running `repro serve` endpoint "
                        "instead of executing in-process (runtime flags like "
                        "--mode then apply server-side, not here); results "
                        "are bit-identical either way")
    p.add_argument("--tenant", default="cli",
                   help="tenant id for the service's per-tenant quota "
                        "(default 'cli')")


def _add_runtime_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mode", choices=["sequential", "simulated", "modeled",
                                      "threaded", "process"],
                   default="sequential")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for --mode threaded/process "
                        "(default: CPU count)")
    p.add_argument("--kernel", choices=["auto", "table", "logexp", "bitsliced"],
                   default="auto",
                   help="GF(2^l) kernel strategy; auto picks per (m, N2) from "
                        "the kernel calibration (all choices bit-identical)")
    p.add_argument("-N", "--processors", type=int, default=1)
    p.add_argument("--n1", type=int, default=1, help="graph partition count N1")
    p.add_argument("--n2", type=int, default=None, help="iteration batch size N2")
    p.add_argument("--eps", type=float, default=0.1, help="failure probability bound")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write the run timeline as Chrome trace_event JSON "
                        "(open at https://ui.perfetto.dev)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write the metrics-registry snapshot")
    p.add_argument("--metrics-format", choices=["json", "prom"], default="json",
                   help="--metrics-out format: the versioned JSON envelope or "
                        "Prometheus text exposition (default json)")
    p.add_argument("--report-out", metavar="PATH", default=None,
                   help="write a RunReport JSON (render with `repro report`)")
    p.add_argument("--store", metavar="PATH", default=None,
                   help="append a compact RunRecord to this JSONL run-history "
                        "store (inspect with `repro history` / `repro compare`)")
    p.add_argument("--scenario", metavar="NAME", default=None,
                   help="scenario key for --store records (default: derived "
                        "from the command and graph)")
    p.add_argument("--fault-plan", metavar="PLAN", default=None,
                   help="fault-injection plan: a JSON file path or an inline "
                        'JSON object, e.g. \'{"seed": 7, "faults": '
                        '[{"kind": "crash", "rank": 1, "after_ops": 5}]}\' '
                        "(simulated mode only)")
    p.add_argument("--max-retries", type=int, default=5,
                   help="per-phase-window retry budget under faults (default 5)")
    p.add_argument("--retry-backoff", type=float, default=1e-3,
                   help="base virtual-seconds backoff before a retry; doubles "
                        "per attempt (default 1e-3)")
    p.add_argument("--sanitize", choices=["off", "warn", "strict"],
                   default="off",
                   help="runtime comm sanitizer: strict raises on the first "
                        "violation, warn accumulates a report (default off)")
    p.add_argument("--live-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics, /status and /healthz over HTTP "
                        "while the run executes (0 = ephemeral port; watch "
                        "with `repro watch http://127.0.0.1:PORT`)")
    p.add_argument("--progress-out", metavar="PATH", default=None,
                   help="append live progress events to this JSONL stream "
                        "(tail with `repro watch PATH --follow`)")
    p.add_argument("--profile-out", metavar="PATH", default=None,
                   help="write the wall-clock profile as speedscope JSON "
                        "(open at https://www.speedscope.app)")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="write crash-consistent checkpoints at round "
                        "boundaries into DIR; recover with `repro resume DIR`")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="persist the checkpoint every N rounds (default 1; "
                        "stage boundaries always persist)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget: past it the run checkpoints and "
                        "exits with a degraded partial result")
    p.add_argument("--hang-timeout", type=float, default=None, metavar="SECONDS",
                   help="declare the run stalled (and degrade) when no "
                        "engine heartbeat arrives for this many seconds")


def _runtime(args):
    from repro.core.midas import MidasRuntime

    recorder = None
    if (getattr(args, "trace_out", None) or getattr(args, "report_out", None)
            or getattr(args, "store", None)):
        from repro.runtime.tracing import TraceRecorder

        recorder = TraceRecorder(enabled=True)
    fault_plan = None
    if getattr(args, "fault_plan", None):
        from repro.runtime.faults import load_fault_plan

        fault_plan = load_fault_plan(args.fault_plan)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume_run = getattr(args, "resume_run", False)
    rt = MidasRuntime(
        n_processors=args.processors, n1=args.n1, n2=args.n2, mode=args.mode,
        recorder=recorder, fault_plan=fault_plan,
        max_retries=getattr(args, "max_retries", 5),
        retry_backoff=getattr(args, "retry_backoff", 1e-3),
        workers=getattr(args, "workers", None),
        kernel=getattr(args, "kernel", "auto"),
        sanitize=getattr(args, "sanitize", "off"),
        live_port=getattr(args, "live_port", None),
        progress_path=getattr(args, "progress_out", None),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        resume=resume_run,
        allow_restart=getattr(args, "allow_restart", False),
        deadline=getattr(args, "deadline", None),
        hang_timeout=getattr(args, "hang_timeout", None),
    )
    if checkpoint_dir:
        from repro.runtime.durable import write_run_config

        if not resume_run:
            # persist the invocation so `repro resume <dir>` can rebuild it
            write_run_config(checkpoint_dir, {
                k: v for k, v in vars(args).items() if k != "fn"
            })
        # build the manager eagerly: a corrupt checkpoint must surface
        # before any expensive work starts, not at the first round
        rt.get_checkpoint()
    live = rt.get_live()
    if live is not None and live.port is not None:
        print(f"live telemetry: http://127.0.0.1:{live.port} "
              f"(/metrics /status /healthz)")
    return rt


def _write_obs(args, rt, problem: str = "", estimate=None, resilience=None,
               sanitizer=None, truncated: bool = False, degraded=None,
               resumed_from=None) -> None:
    """Emit --trace-out / --metrics-out / --report-out / --profile-out /
    --store artifacts.  ``truncated=True`` marks artifacts flushed from an
    interrupted run: the report carries ``meta.truncated`` and no
    RunRecord is appended (a partial run would poison the perf baseline).
    A watchdog-``degraded`` run is treated the same way; a ``resumed_from``
    run *is* recorded, carrying the provenance flag so baselines skip it.
    """
    if not (getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)
            or getattr(args, "report_out", None) or getattr(args, "store", None)
            or getattr(args, "profile_out", None)):
        return
    from pathlib import Path

    from repro.serialization import dump_result

    for out in (args.trace_out, args.metrics_out, args.report_out):
        if out:
            Path(out).parent.mkdir(parents=True, exist_ok=True)
    nranks = max(1, rt.n_processors) if rt.mode == "simulated" else 1
    snap = rt.get_metrics().snapshot()
    if args.trace_out:
        from repro.obs.chrome_trace import dump_chrome_trace

        dump_chrome_trace(rt.recorder.events, args.trace_out, nranks=nranks,
                          meta={"problem": problem, "mode": rt.mode,
                                "n1": rt.n1, "n2": rt.n2 or 0})
        print(f"trace written: {args.trace_out}")
    if args.metrics_out:
        if getattr(args, "metrics_format", "json") == "prom":
            Path(args.metrics_out).write_text(snap.to_prometheus())
        else:
            dump_result(snap, args.metrics_out)
        print(f"metrics written: {args.metrics_out}")
    prof = rt.profiler
    profile = prof.section() if (prof is not None and prof.has_data) else None
    if getattr(args, "profile_out", None):
        if prof is not None and prof.has_data:
            prof.dump_speedscope(args.profile_out,
                                 name=f"{problem or 'repro'} [{rt.mode}]")
            print(f"profile written: {args.profile_out}")
        else:
            print("no profile data recorded; skipping --profile-out",
                  file=sys.stderr)
    rep = None
    if args.report_out or getattr(args, "store", None):
        from repro.obs.report import RunReport

        meta = {"n1": rt.n1}
        if truncated:
            meta["truncated"] = True
        if degraded:
            meta["degraded"] = True
            meta["degraded_reason"] = degraded.get("reason", "")
            meta["p_failure_bound"] = degraded.get("p_failure_bound", 1.0)
        if resumed_from:
            meta["resumed_from"] = resumed_from
        rep = RunReport.build(rt.recorder.events, nranks, problem=problem,
                              mode=rt.mode, metrics=snap, estimate=estimate,
                              meta=meta, resilience=resilience,
                              sanitizer=sanitizer, profile=profile,
                              edges=rt.recorder.edges,
                              fault_plan=rt.fault_plan, n1=rt.n1)
    if args.report_out:
        dump_result(rep, args.report_out)
        print(f"report written: {args.report_out}")
    if getattr(args, "store", None):
        if truncated or degraded:
            why = "interrupted" if truncated else "degraded"
            print(f"run {why}; not appending a RunRecord to the store",
                  file=sys.stderr)
        else:
            from repro.obs.store import RunRecord, RunStore

            scenario = args.scenario or _default_scenario(args, problem)
            record = RunRecord.from_report(
                rep, scenario, config=_store_config(args, rt, problem)
            )
            RunStore(args.store).append(record)
            print(f"run recorded: {args.store} [{scenario}]")


def _flush_interrupted(args, rt, problem: str) -> int:
    """SIGINT mid-run: flush whatever observability we have and exit 130
    (the conventional 128+SIGINT code).  The progress stream is already
    on disk — it is appended and flushed per event.  The flight
    recorder is dumped too (with any still-open query spans) so an
    interrupted run leaves the same forensic artifact a crash would."""
    print("\ninterrupted — flushing partial artifacts", file=sys.stderr)
    _write_obs(args, rt, problem=problem, truncated=True)
    from repro.obs.qtrace import get_flight_recorder

    qt = getattr(rt, "qtrace", None)
    extra = ({"open_spans": [sp.to_dict() for sp in qt.open_spans()]}
             if qt is not None else None)
    rec = get_flight_recorder()
    rec.record("interrupted", problem=problem)
    path = rec.dump("interrupted", extra=extra)
    if path is not None:
        print(f"flight recorder dumped: {path}", file=sys.stderr)
    return 130


def _default_scenario(args, problem: str) -> str:
    graph = (getattr(args, "dataset", None) or getattr(args, "edge_list", None)
             or (f"er{args.er}" if getattr(args, "er", None) else "graph"))
    k = getattr(args, "k", None)
    return f"{problem}:{graph}" + (f":k{k}" if k is not None else "")


def _store_config(args, rt, problem: str) -> dict:
    """The fields whose change makes two runs non-comparable."""
    return {
        "problem": problem, "mode": rt.mode, "N": rt.n_processors,
        "n1": rt.n1, "n2": rt.n2 or 0, "k": getattr(args, "k", 0),
        "eps": getattr(args, "eps", 0.0), "seed": getattr(args, "seed", 0),
        "dataset": getattr(args, "dataset", None) or "",
        "scale": getattr(args, "scale", 0.0),
        "er": getattr(args, "er", None) or 0,
    }


def _print_resilience(r: dict) -> None:
    injected = ", ".join(
        f"{k}={v}" for k, v in sorted(r.get("faults_injected", {}).items())
    ) or "none"
    print(f"resilience: faults [{injected}]  "
          f"failures={r.get('phase_failures', 0)} retries={r.get('retries', 0)}  "
          f"overhead={r.get('makespan_overhead_seconds', 0.0):.3g}s "
          f"({r.get('overhead_fraction', 0.0):.1%})")


def _print_sanitizer(sn: dict) -> None:
    status = "clean" if sn.get("clean", True) else "VIOLATIONS"
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(sn.get("violations", {}).items()))
    tail = f"  [{kinds}]" if kinds else ""
    print(f"sanitizer: {status} ({sn.get('ops_checked', 0)} ops, "
          f"{sn.get('runs', 0)} run(s)){tail}")
    for finding in sn.get("findings", [])[:8]:
        print(f"  {finding}")


def _print_recovery(details: dict):
    """Print resume/degradation annotations from a result's details;
    returns ``(degraded, resumed_from)`` for ``_write_obs`` and the
    exit-code decision."""
    resumed_from = details.get("resumed_from")
    if resumed_from:
        print(f"resumed from checkpoint: {resumed_from}")
    degraded = details.get("degraded")
    if degraded:
        print(f"DEGRADED ({degraded.get('reason', '?')}): "
              f"{degraded.get('detail', '')}", file=sys.stderr)
        print(f"  partial result after {degraded.get('rounds_completed', 0)} "
              f"completed round(s); miss probability <= "
              f"{degraded.get('p_failure_bound', 1.0):.3g}", file=sys.stderr)
    return degraded, resumed_from


def cmd_datasets(args) -> int:
    from repro.graph.datasets import table2_rows
    from repro.util.rng import RngStream

    scale = args.scale if args.generate else None
    print(f"{'dataset':>12} {'paper nodes':>12} {'paper edges':>12}"
          + (f" {'gen nodes':>10} {'gen edges':>10}" if scale else ""))
    for r in table2_rows(scale=scale, rng=RngStream(args.seed)):
        line = (f"{r['dataset']:>12} {r['paper_nodes_x1e6']:>11g}M "
                f"{r['paper_edges_x1e6']:>11g}M")
        if scale:
            line += f" {r['generated_nodes']:>10} {r['generated_edges']:>10}"
        print(line)
    return 0


def _spec_for(args, kind: str, rng, weights=None) -> dict:
    """The service QuerySpec dict for one CLI detection invocation.

    The seed policy pins the exact RNG lineage the standalone driver
    would have consumed (``rng.child("detect")`` / ``rng.child("scan")``
    of the CLI root stream), so a service-routed query — local, remote,
    cached, or coalesced — is bit-identical to the pre-service CLI.
    """
    child = rng.child("scan" if kind == "scan" else "detect")
    spec = {"kind": kind, "graph": "", "k": args.k, "eps": args.eps,
            "seed": child.state()}
    if kind == "detect-tree":
        spec["template"] = args.template
    if kind == "scan":
        spec.update(statistic=args.statistic, alpha=args.alpha,
                    extract=bool(args.extract))
        if weights is not None:
            spec["weights"] = [int(x) for x in weights]
    return spec


def _run_query(args, kind: str, g, rng, rt, weights=None):
    """Route one detection through the client abstraction.

    ``rt`` is the locally built runtime (None on the ``--server`` path,
    where execution configuration lives server-side).  Returns the
    :class:`~repro.service.broker.QueryOutcome`; in-process outcomes
    carry the raw result object for rich rendering.
    """
    spec = _spec_for(args, kind, rng, weights=weights)
    tenant = getattr(args, "tenant", "cli") or "cli"
    if getattr(args, "server", None):
        from repro.service.client import HttpClient

        client = HttpClient(args.server)
        spec["graph"] = client.register_graph(g, name=_graph_label(args))
        return client.query(spec, tenant=tenant)
    from repro.service.client import LocalClient

    client = LocalClient()
    try:
        spec["graph"] = client.register_graph(g, name=_graph_label(args))
        return client.query(spec, tenant=tenant, runtime=rt)
    finally:
        client.close()


def _report_run(args, rt, problem: str, details: dict, estimate=None):
    """Shared post-detection tail for the three detection commands:
    resilience/sanitizer/recovery rendering plus artifact emission.
    Returns the ``degraded`` annotation (None for a full-quality run)."""
    resilience = details.get("resilience")
    if resilience:
        _print_resilience(resilience)
    sanitizer = details.get("sanitizer")
    if sanitizer:
        _print_sanitizer(sanitizer)
    degraded, resumed_from = _print_recovery(details)
    if rt is not None:
        _write_obs(args, rt, problem=problem, estimate=estimate,
                   resilience=resilience, sanitizer=sanitizer,
                   degraded=degraded, resumed_from=resumed_from)
    elif (getattr(args, "report_out", None) or getattr(args, "store", None)
          or getattr(args, "trace_out", None)):
        print("--server runs record observability server-side; skipping "
              "local artifacts", file=sys.stderr)
    return degraded


def _print_remote_detection(outcome) -> None:
    """Render a detection payload that has no raw result (HTTP path)."""
    r = outcome.result
    served = outcome.served
    via = "cache" if outcome.cache_hit else (
        "coalesced" if outcome.coalesced else "server")
    tail = (f"[via {via}, tenant={served.get('tenant', '?')}, "
            f"wall={outcome.payload.get('timing', {}).get('wall_seconds', 0.0):.3f}s]")
    if r.get("problem") == "scanstat":
        cell = (f"size={r.get('best_size')}, weight={r.get('best_weight')}"
                if r.get("best_size") is not None else "none")
        print(f"anomaly: score={r.get('best_score', 0.0):.4f} at [{cell}] "
              f"after {r.get('rounds_run', 0)} round(s) {tail}")
        if r.get("cluster") is not None:
            print(f"cluster: {r['cluster']}")
        if getattr(outcome, "trace_id", ""):
            print(f"trace: {outcome.trace_id}  "
                  f"(repro trace {outcome.trace_id} --url <service>)")
        return
    verdict = "FOUND" if r.get("found") else "not found"
    print(f"{r.get('problem', '?')}(k={r.get('k', '?')}): {verdict} after "
          f"{r.get('rounds_run', 0)} round(s) {tail}")
    trace_id = getattr(outcome, "trace_id", "")
    if trace_id:
        print(f"trace: {trace_id}  (repro trace {trace_id} --url <service>)")


def cmd_detect_path(args) -> int:
    g, rng = _load_graph(args)
    print(f"graph: {g}")
    rt = None if getattr(args, "server", None) else _runtime(args)
    try:
        outcome = _run_query(args, "detect-path", g, rng, rt)
    except KeyboardInterrupt:
        if rt is None:
            return 130
        return _flush_interrupted(args, rt, "k-path")
    finally:
        if rt is not None:
            rt.close_live()
    raw = outcome.raw
    if raw is not None:
        print(raw.summary())
        details, estimate = raw.details, raw.details.get("estimate")
    else:
        _print_remote_detection(outcome)
        details, estimate = outcome.result.get("details") or {}, None
    degraded = _report_run(args, rt, "k-path", details, estimate)
    if outcome.found:
        return 0  # a witness is a certificate even from a degraded run
    return 4 if degraded else 1


def cmd_detect_tree(args) -> int:
    from repro.graph.templates import TreeTemplate

    g, rng = _load_graph(args)
    factories = {
        "path": TreeTemplate.path,
        "star": TreeTemplate.star,
        "binary": TreeTemplate.binary,
        "caterpillar": TreeTemplate.caterpillar,
    }
    tmpl = factories[args.template](args.k)
    print(f"graph: {g}\ntemplate: {tmpl}")
    rt = None if getattr(args, "server", None) else _runtime(args)
    try:
        outcome = _run_query(args, "detect-tree", g, rng, rt)
    except KeyboardInterrupt:
        if rt is None:
            return 130
        return _flush_interrupted(args, rt, "k-tree")
    finally:
        if rt is not None:
            rt.close_live()
    raw = outcome.raw
    if raw is not None:
        print(raw.summary())
        details, estimate = raw.details, raw.details.get("estimate")
    else:
        _print_remote_detection(outcome)
        details, estimate = outcome.result.get("details") or {}, None
    degraded = _report_run(args, rt, "k-tree", details, estimate)
    if outcome.found:
        return 0
    return 4 if degraded else 1


def cmd_scan(args) -> int:
    from repro.graph.generators import plant_cluster

    g, rng = _load_graph(args)
    print(f"graph: {g}")
    w = np.zeros(g.n, dtype=np.int64)
    if args.plant:
        hot = plant_cluster(g, args.plant, rng=rng.child("plant"))
        w[hot] = 1
        print(f"planted hot cluster: {sorted(hot.tolist())}")
    rt = None if getattr(args, "server", None) else _runtime(args)
    try:
        outcome = _run_query(args, "scan", g, rng, rt, weights=w)
    except KeyboardInterrupt:
        if rt is None:
            return 130
        return _flush_interrupted(args, rt, "scanstat")
    finally:
        if rt is not None:
            rt.close_live()
    raw = outcome.raw
    if raw is not None:
        print(raw.summary())
        if raw.cluster is not None:
            print(f"cluster: {sorted(int(x) for x in raw.cluster)}")
        details = raw.grid.details
    else:
        _print_remote_detection(outcome)
        details = outcome.result.get("details") or {}
    degraded = _report_run(args, rt, "scanstat", details)
    return 4 if degraded else 0


def cmd_calibrate(args) -> int:
    from repro.runtime.costmodel import KernelCalibration

    cal = KernelCalibration.measure(
        sample_nodes=args.nodes, avg_degree=args.degree, k=args.k
    )
    print(f"{'N2':>6} {'c1 [ns/(vertex*iter)]':>22}")
    for n2, c1 in sorted(cal.as_table().items()):
        print(f"{n2:>6} {c1 * 1e9:>22.2f}")
    best = min(cal.as_table(), key=cal.as_table().get)
    print(f"best N2: {best}")
    return 0


def cmd_model(args) -> int:
    from repro.core.model import PartitionStats, estimate_runtime
    from repro.core.schedule import PhaseSchedule
    from repro.graph.datasets import DATASETS
    from repro.runtime.cluster import juliet
    from repro.runtime.costmodel import KernelCalibration

    spec = DATASETS[args.dataset]
    n, m = spec.paper_nodes, spec.paper_edges
    n2 = args.n2 if args.n2 else PhaseSchedule.bs_max(args.k, args.processors, args.n1)
    sched = PhaseSchedule(args.k, args.processors, args.n1, n2)
    cal = (KernelCalibration.measure() if args.measure
           else KernelCalibration.synthetic())
    est = estimate_runtime(
        PartitionStats.random_model(n, m, args.n1), sched, cal,
        juliet().cost_model(args.processors), eps=args.eps, problem=args.problem,
    )
    print(sched.describe())
    print(f"modeled total:   {est.total_seconds:.4f}s "
          f"(compute {est.compute_seconds:.4f}s, comm {est.comm_seconds:.4f}s, "
          f"comm fraction {est.comm_fraction:.1%})")
    print(f"memory per rank: {est.memory_bytes_per_rank / 2**20:.1f} MiB")
    return 0


def cmd_report(args) -> int:
    from repro.obs.metrics import MetricsSnapshot
    from repro.obs.report import RunReport
    from repro.serialization import load_result
    from repro.util.timing import format_seconds

    try:
        obj = load_result(args.path)
    except (OSError, ValueError) as exc:  # missing file, bad JSON, wrong schema
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    if isinstance(obj, RunReport):
        print(obj.text(max_phases=args.max_phases))
        return 0
    if isinstance(obj, MetricsSnapshot):
        for fam in obj.metrics:
            print(f"{fam['name']} ({fam['kind']}): {fam['help']}")
            for s in fam["samples"]:
                labels = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items()))
                if fam["kind"] == "histogram":
                    mean = s["sum"] / s["count"] if s["count"] else 0.0
                    print(f"  {{{labels}}} count={s['count']} "
                          f"mean={format_seconds(mean)} sum={format_seconds(s['sum'])}")
                else:
                    print(f"  {{{labels}}} {s['value']:g}")
        return 0
    print(f"{args.path}: serialized {type(obj).__name__}, not a RunReport "
          "or MetricsSnapshot", file=sys.stderr)
    return 1


def cmd_history(args) -> int:
    """List a run-history store's trajectory, newest last."""
    from repro.errors import ConfigurationError
    from repro.obs.store import RunStore

    store = RunStore(args.store)
    try:
        records = store.load(args.scenario)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if not records:
        where = f" for scenario {args.scenario!r}" if args.scenario else ""
        print(f"{args.store}: no records{where}")
        return 1
    if args.scenario is None:
        print(f"{len(records)} record(s), "
              f"{len(store.scenarios())} scenario(s): "
              + ", ".join(store.scenarios()))
    for rec in records[-args.last:] if args.last else records:
        print(rec.describe())
    return 0


def cmd_compare(args) -> int:
    """Compare two runs (or newest vs rolling baseline); exit 3 on
    regression beyond tolerance."""
    import json as _json

    from repro.errors import ConfigurationError
    from repro.obs.store import RunStore, compare_runs, compare_to_baseline

    store = RunStore(args.store)
    try:
        if args.ref is not None or args.new is not None:
            records = store.load(args.scenario)
            if not records:
                raise ConfigurationError(
                    f"{args.store}: no records"
                    + (f" for scenario {args.scenario!r}" if args.scenario else "")
                )
            ref_i = args.ref if args.ref is not None else -2
            new_i = args.new if args.new is not None else -1
            try:
                cmp = compare_runs(records[ref_i], records[new_i],
                                   tolerance=args.tolerance,
                                   wall_tolerance=args.wall_tolerance)
            except IndexError:
                raise ConfigurationError(
                    f"record index out of range (have {len(records)})"
                ) from None
        else:
            scenario = args.scenario
            if scenario is None:
                names = store.scenarios()
                if len(names) != 1:
                    raise ConfigurationError(
                        f"--scenario required: store holds {len(names)} "
                        f"scenario(s)" + (f" ({', '.join(names)})" if names else "")
                    )
                scenario = names[0]
            cmp = compare_to_baseline(store, scenario,
                                      tolerance=args.tolerance,
                                      window=args.window,
                                      wall_tolerance=args.wall_tolerance)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json_out:
        from pathlib import Path

        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(_json.dumps(cmp.to_dict(), indent=2))
    print(cmp.markdown())
    return 0 if cmp.ok else 3


def cmd_verify(args) -> int:
    """Run the full correctness tooling on one k-path instance:
    sanitized detection, cross-backend replay, independent certification.
    Exit 0 when everything checks out, 2 on any violation."""
    from repro.core.midas import detect_path
    from repro.core.witness import extract_witness
    from repro.errors import DetectionError, ReplayMismatchError, SanitizerError
    from repro.sanitize import ResultCertifier, verify_replay

    g, rng = _load_graph(args)
    print(f"graph: {g}")
    rt = _runtime(args)
    failures = 0

    # 1. sanitized detection on the requested backend
    try:
        res = detect_path(g, args.k, eps=args.eps, rng=rng.child("detect"),
                          runtime=rt)
    except SanitizerError as exc:
        print(f"FAIL sanitizer: {exc}")
        return 2
    print(res.summary())
    sn = res.details.get("sanitizer")
    if sn:
        _print_sanitizer(sn)
        if not sn.get("clean", True):
            failures += 1

    # 2. deterministic replay against the reference backend
    try:
        rep = verify_replay(detect_path, g, args.k, runtime=rt,
                            reference_mode=args.reference_mode,
                            seed=args.seed, strict=False, eps=args.eps)
        print(rep.text())
        if not rep.ok:
            failures += 1
    except ReplayMismatchError as exc:  # pragma: no cover - strict=False above
        print(f"FAIL replay: {exc}")
        failures += 1

    # 3. independent certification: a witness when found, the exact
    #    oracle spot-check when not (small instances only)
    cert = ResultCertifier(g, mode="warn")
    if res.found:
        query_rng = rng.child("witness")

        def feasible(masked) -> bool:
            return detect_path(
                masked, args.k, eps=0.01,
                rng=query_rng.child(f"q{masked.num_edges}"),
            ).found

        try:
            witness = extract_witness(g, feasible, args.k,
                                      rng=rng.child("peel"))
        except DetectionError as exc:
            print(f"witness extraction failed: {exc}")
            failures += 1
        else:
            ordered = cert.path_witness(witness, args.k)
            if ordered is not None:
                print(f"witness certified: path {ordered}")
    elif g.n <= 200:
        cert.negative_path(args.k)
    print(cert.report.text())
    if not cert.report.clean:
        failures += 1

    print("verify: " + ("OK" if failures == 0 else f"{failures} FAILURE(S)"))
    return 0 if failures == 0 else 2


def cmd_resume(args) -> int:
    """Reconstruct a checkpointed run from its directory and continue it.

    The run directory's ``run.json`` (written by ``--checkpoint-dir``)
    supplies the original invocation; the checkpoint file supplies the
    completed rounds, which are restored instead of re-executed — the
    final result is bit-identical to an uninterrupted run.  Exit 2 on a
    corrupt checkpoint (``--allow-restart`` discards it and restarts).
    """
    from repro.errors import CheckpointCorruptError, ConfigurationError
    from repro.runtime.durable import load_run_config

    dispatch = {"detect-path": cmd_detect_path, "detect-tree": cmd_detect_tree,
                "scan": cmd_scan}
    try:
        cfg = load_run_config(args.dir)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    command = cfg.get("command")
    if command not in dispatch:
        print(f"{args.dir}: run config names unsupported command {command!r}",
              file=sys.stderr)
        return 1
    ns = argparse.Namespace(**cfg)
    ns.checkpoint_dir = args.dir
    ns.resume_run = True
    ns.allow_restart = args.allow_restart
    print(f"resuming {command} from {args.dir}")
    try:
        return dispatch[command](ns)
    except CheckpointCorruptError as exc:
        print(str(exc), file=sys.stderr)
        print("hint: pass --allow-restart to discard the corrupt checkpoint "
              "and restart from scratch", file=sys.stderr)
        return 2


_TERMINAL_STATES = ("done", "failed", "interrupted", "degraded")


def _render_status(s: dict) -> str:
    """One status line from a RunStatus snapshot dict."""
    from repro.util.timing import format_seconds

    parts = [
        f"[{s.get('state', '?'):>11}]",
        f"{s.get('problem') or '?'}/{s.get('mode') or '?'}",
        f"rounds {s.get('rounds_completed', 0)}/{s.get('rounds_planned', 0)}",
    ]
    stage = s.get("stage")
    if stage:
        parts.append(f"stage {stage} (k={s.get('k', 0)})")
    pf = s.get("p_failure_bound")
    if pf is not None:
        parts.append(f"p_fail<={pf:.3g}")
    eta = s.get("eta_seconds")
    if eta:
        parts.append(f"eta {format_seconds(eta)}")
    faults = s.get("faults") or {}
    if faults.get("phase_failures") or faults.get("retries"):
        parts.append(f"faults {faults.get('phase_failures', 0)} "
                     f"(+{faults.get('retries', 0)} retries)")
    if s.get("found") is not None:
        parts.append(f"found={s['found']}")
    return "  ".join(parts)


def _render_event(evt: dict) -> Optional[str]:
    """One progress-stream event as a display line (None = skip)."""
    kind = evt.get("event")
    if kind == "run_start":
        g = evt.get("graph") or {}
        return (f"run {evt.get('run', '?')}: {evt.get('problem', '?')} "
                f"[{evt.get('mode', '?')}] on {g.get('nodes', '?')} nodes / "
                f"{g.get('edges', '?')} edges")
    if kind == "stage_start":
        return (f"stage {evt.get('stage', '?')}: k={evt.get('k', '?')}, "
                f"{evt.get('rounds', '?')} round(s) x "
                f"{evt.get('phases_per_round', '?')} phase(s)")
    if kind == "round":
        status = evt.get("status") or {}
        hit = "  HIT" if evt.get("hit") else ""
        return _render_status(status) + hit
    if kind == "fault":
        return (f"faults: {evt.get('failures', 0)} failure(s), "
                f"{evt.get('retries', 0)} retry(ies), "
                f"{evt.get('injected', 0)} injected")
    if kind == "result":
        return f"result: found={evt.get('found')}"
    if kind == "run_end":
        return f"run ended: {evt.get('state', '?')}" + (
            f" ({evt['error']})" if evt.get("error") else "")
    return None  # per-phase events are too chatty for the console


def _watch_url(args) -> int:
    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    base = args.target.rstrip("/")
    deadline = _time.monotonic() + args.timeout if args.timeout else None
    last = None
    seen_any = False
    while True:
        try:
            with urllib.request.urlopen(base + "/status", timeout=5) as resp:
                status = _json.load(resp)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if seen_any:
                # the exporter shuts down right after the run finishes, so
                # losing an endpoint we were successfully polling means the
                # run ended (the terminal /status poll is easy to miss)
                print("watch: endpoint gone — run ended", file=sys.stderr)
                return 0
            print(f"watch: cannot read {base}/status: {exc}", file=sys.stderr)
            return 1
        seen_any = True
        line = _render_status(status)
        if line != last:
            print(line)
            last = line
        if status.get("state") in _TERMINAL_STATES:
            return 0
        stall = getattr(args, "stall_timeout", None)
        if stall and status.get("state") == "running" and \
                float(status.get("heartbeat_age_seconds", 0.0)) > stall:
            print(f"watch: run stalled — last heartbeat "
                  f"{status.get('heartbeat_age_seconds', 0.0):.1f}s ago "
                  f"(stall-timeout {stall:g}s)", file=sys.stderr)
            return 5
        if deadline is not None and _time.monotonic() > deadline:
            print("watch: timed out before the run ended", file=sys.stderr)
            return 1
        _time.sleep(args.interval)


def _watch_file(args) -> int:
    import json as _json
    import time as _time
    from pathlib import Path

    path = Path(args.target)
    if not path.exists():
        print(f"watch: no such progress stream: {path}", file=sys.stderr)
        return 1
    deadline = _time.monotonic() + args.timeout if args.timeout else None
    ended = False
    with path.open() as fh:
        while True:
            line = fh.readline()
            if line:
                line = line.strip()
                if not line:
                    continue
                try:
                    evt = _json.loads(line)
                except ValueError:
                    continue  # a partially flushed last line
                out = _render_event(evt)
                if out:
                    print(out)
                if evt.get("event") == "run_end":
                    ended = True
                continue
            # at EOF
            if ended:
                return 0
            stall = getattr(args, "stall_timeout", None)
            if stall:
                age = _time.time() - path.stat().st_mtime
                if age > stall:
                    print(f"watch: run stalled — stream last written "
                          f"{age:.1f}s ago (stall-timeout {stall:g}s)",
                          file=sys.stderr)
                    return 5
            if not args.follow:
                return 0
            if deadline is not None and _time.monotonic() > deadline:
                print("watch: timed out before the run ended", file=sys.stderr)
                return 1
            _time.sleep(args.interval)


def cmd_watch(args) -> int:
    """Follow a live run: poll an HTTP /status endpoint or tail a
    progress JSONL stream, rendering rounds, ETA, and fault counts."""
    if args.target.startswith(("http://", "https://")):
        return _watch_url(args)
    return _watch_file(args)


def _serve_register(svc, spec: str) -> None:
    """Register one ``--register NAME=SOURCE`` graph on a service, where
    SOURCE is ``er:N[:M[:SEED]]`` or an edge-list path."""
    from repro.errors import ConfigurationError

    name, eq, src = spec.partition("=")
    if not eq or not name or not src:
        raise ConfigurationError(
            f"--register wants NAME=er:N[:M[:SEED]] or NAME=PATH, got {spec!r}"
        )
    if src.startswith("er:"):
        from repro.graph.generators import erdos_renyi
        from repro.util.rng import RngStream

        parts = src.split(":")[1:]
        try:
            n = int(parts[0])
            m = int(parts[1]) if len(parts) > 1 and parts[1] else None
            seed = int(parts[2]) if len(parts) > 2 else 0
        except (ValueError, IndexError) as exc:
            raise ConfigurationError(f"bad er spec {src!r}: {exc}") from exc
        g = erdos_renyi(n, m=m, rng=RngStream(seed, name="serve-er"))
    else:
        from repro.graph.io import read_edge_list

        g = read_edge_list(src)
    entry = svc.register_graph(g, name=name)
    print(f"registered {name}: {entry.sha[:12]} "
          f"({g.n} nodes, {g.num_edges} edges)")


def cmd_serve(args) -> int:
    """Run the persistent multi-tenant detection service until
    interrupted (or for --run-seconds, for scripted smoke tests)."""
    import time as _time

    from repro.errors import ConfigurationError
    from repro.service import DetectionService

    runtime_config = {
        "mode": args.mode, "n_processors": args.processors,
        "n1": args.n1, "n2": args.n2, "workers": args.workers,
        "kernel": args.kernel, "sanitize": args.sanitize,
    }
    svc = DetectionService(
        quota=args.quota, cache_size=args.cache_size,
        coalesce=not args.no_coalesce, workers=args.pool_workers,
        store_path=args.store, sweep_interval=args.sweep_interval,
        runtime_config=runtime_config, host=args.host,
        tracing=not args.no_tracing, trace_capacity=args.trace_capacity,
    )
    try:
        for spec in args.register or []:
            _serve_register(svc, spec)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        svc.close()
        return 1
    port = svc.serve(args.port)
    print(f"serving detection API on http://{args.host}:{port}  "
          f"(/api/query /api/graphs /api/service /metrics /status /healthz)")
    print(f"{len(svc.registry)} graph(s) preloaded; quota "
          f"{args.quota} in-flight/tenant; mode={args.mode}", flush=True)

    # Shell background jobs ('repro serve ... &' from a script, which is
    # how the CI smoke job runs) inherit SIGINT as SIG_IGN, so Python
    # never arms its KeyboardInterrupt handler and 'kill -INT' would be
    # silently ignored.  Install handlers explicitly; SIGTERM gets the
    # same clean-drain path.
    import signal as _signal

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        _signal.signal(_signal.SIGINT, _interrupt)
        _signal.signal(_signal.SIGTERM, _interrupt)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        if args.run_seconds:
            _time.sleep(args.run_seconds)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        svc.close()
    return 0


def cmd_query(args) -> int:
    """One-shot client for a running ``repro serve`` endpoint."""
    from repro.errors import ConfigurationError, QuotaExceededError, ServiceError
    from repro.service.client import HttpClient

    spec = {"kind": args.kind, "graph": args.graph, "k": args.k,
            "eps": args.eps, "seed": {"seed": args.seed}}
    if args.kind == "detect-tree":
        spec["template"] = args.template
    if args.kind == "scan":
        spec.update(statistic=args.statistic, alpha=args.alpha,
                    extract=bool(args.extract))
    client = HttpClient(args.url)
    try:
        outcome = client.query(spec, tenant=args.tenant)
    except QuotaExceededError as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        return 6
    except (ConfigurationError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        import json as _json

        print(_json.dumps(outcome.payload, indent=2))
    else:
        _print_remote_detection(outcome)
    found = outcome.found
    if args.kind == "scan":
        return 0
    return 0 if found else 1


def cmd_trace(args) -> int:
    """Fetch a finished query's end-to-end trace from a running
    ``repro serve`` endpoint and render it."""
    import json as _json

    from repro.errors import ConfigurationError, ServiceError
    from repro.obs.chrome_trace import validate_chrome_trace
    from repro.obs.qtrace import render_timeline, trace_to_chrome
    from repro.service.client import HttpClient

    client = HttpClient(args.url)
    try:
        doc = client.trace(args.trace_id)
    except (ConfigurationError, ServiceError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if doc is None:
        print(f"unknown trace: {args.trace_id} (expired from the ring "
              f"buffer, or tracing is disabled on the server)",
              file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_timeline(doc))
    if args.chrome_out:
        chrome = trace_to_chrome(doc)
        validate_chrome_trace(chrome)
        with open(args.chrome_out, "w", encoding="utf-8") as fh:
            _json.dump(chrome, fh)
        print(f"chrome trace written: {args.chrome_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def cmd_figures(args) -> int:
    from repro.experiments import FIGURES, figure_rows
    from repro.runtime.costmodel import KernelCalibration

    cal = KernelCalibration.measure() if args.measure else None
    names = [args.name] if args.name else sorted(FIGURES)
    for name in names:
        rows = figure_rows(name, calibration=cal)
        print(f"\n=== {name} ===")
        header = list(rows[0].keys())
        print("  ".join(f"{h:>16}" for h in header))
        for r in rows:
            cells = []
            for h in header:
                v = r[h]
                if v is None:
                    cells.append(f"{'-':>16}")
                elif isinstance(v, float):
                    cells.append(f"{v:>16.4g}")
                else:
                    cells.append(f"{str(v):>16}")
            print("  ".join(cells))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MIDAS: multilinear detection at scale (IPDPS 2018 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    d = sub.add_parser("datasets", help="print the Table II dataset registry")
    d.add_argument("--generate", action="store_true", help="generate stand-ins")
    d.add_argument("--scale", type=float, default=0.001)
    d.add_argument("--seed", type=int, default=0)
    d.set_defaults(fn=cmd_datasets)

    dp = sub.add_parser("detect-path", help="decide whether a k-path exists")
    _add_graph_args(dp)
    _add_runtime_args(dp)
    _add_client_args(dp)
    dp.add_argument("-k", type=int, required=True)
    dp.set_defaults(fn=cmd_detect_path)

    dt = sub.add_parser("detect-tree", help="decide whether a tree template embeds")
    _add_graph_args(dt)
    _add_runtime_args(dt)
    _add_client_args(dt)
    dt.add_argument("-k", type=int, required=True)
    dt.add_argument("--template", choices=["path", "star", "binary", "caterpillar"],
                    default="binary")
    dt.set_defaults(fn=cmd_detect_tree)

    sc = sub.add_parser("scan", help="scan-statistics anomaly detection")
    _add_graph_args(sc)
    _add_runtime_args(sc)
    _add_client_args(sc)
    sc.add_argument("-k", type=int, required=True)
    sc.add_argument("--statistic", choices=["berk-jones", "higher-criticism",
                                            "elevated-mean"], default="berk-jones")
    sc.add_argument("--alpha", type=float, default=0.05)
    sc.add_argument("--plant", type=int, default=0,
                    help="plant a hot connected cluster of this size")
    sc.add_argument("--extract", action="store_true",
                    help="peel out the maximizing cluster")
    sc.set_defaults(fn=cmd_scan)

    ca = sub.add_parser("calibrate", help="measure the c1(N2) kernel calibration")
    ca.add_argument("--nodes", type=int, default=4096)
    ca.add_argument("--degree", type=int, default=16)
    ca.add_argument("-k", type=int, default=8)
    ca.set_defaults(fn=cmd_calibrate)

    mo = sub.add_parser("model", help="evaluate the Theorem-2 performance model")
    mo.add_argument("--dataset", choices=["miami", "com-Orkut", "random-1e6",
                                          "random-1e7"], default="random-1e6")
    mo.add_argument("-k", type=int, default=10)
    mo.add_argument("-N", "--processors", type=int, default=512)
    mo.add_argument("--n1", type=int, default=32)
    mo.add_argument("--n2", type=int, default=None)
    mo.add_argument("--eps", type=float, default=0.2)
    mo.add_argument("--problem", choices=["path", "tree", "scanstat"], default="path")
    mo.add_argument("--measure", action="store_true",
                    help="calibrate live instead of using the synthetic curve")
    mo.set_defaults(fn=cmd_model)

    vf = sub.add_parser(
        "verify",
        help="sanitized detection + cross-backend replay + certification",
    )
    _add_graph_args(vf)
    _add_runtime_args(vf)
    vf.add_argument("-k", type=int, required=True)
    vf.add_argument("--reference-mode",
                    choices=["sequential", "threaded", "simulated", "modeled",
                             "process"],
                    default="sequential",
                    help="backend the replay check compares against")
    vf.set_defaults(fn=cmd_verify)

    rp = sub.add_parser("report", help="render a RunReport/metrics JSON as text")
    rp.add_argument("path", help="file written by --report-out or --metrics-out")
    rp.add_argument("--max-phases", type=int, default=12,
                    help="phase-table rows to show (default 12)")
    rp.set_defaults(fn=cmd_report)

    hi = sub.add_parser("history", help="list a run-history store's records")
    hi.add_argument("store", help="JSONL store written with --store")
    hi.add_argument("--scenario", default=None, help="filter to one scenario")
    hi.add_argument("--last", type=int, default=0,
                    help="only the newest N records (default all)")
    hi.set_defaults(fn=cmd_history)

    cp = sub.add_parser(
        "compare",
        help="diff two stored runs (or newest vs rolling baseline); "
             "exit 3 on regression",
    )
    cp.add_argument("store", help="JSONL store written with --store")
    cp.add_argument("--scenario", default=None,
                    help="scenario to compare (required unless the store "
                         "holds exactly one)")
    cp.add_argument("--tolerance", type=float, default=0.25,
                    help="relative growth beyond which a metric regresses "
                         "(default 0.25 = +25%%)")
    cp.add_argument("--wall-tolerance", type=float, default=None,
                    help="gate the noisy wall_* metrics at this tolerance "
                         "(default: report them as 'noted' without failing)")
    cp.add_argument("--ref", type=int, default=None,
                    help="baseline record index (negatives from the end; "
                         "default: rolling-baseline mean of prior runs)")
    cp.add_argument("--new", type=int, default=None,
                    help="candidate record index (default -1, the newest)")
    cp.add_argument("--window", type=int, default=5,
                    help="rolling-baseline window (default 5)")
    cp.add_argument("--json-out", metavar="PATH", default=None,
                    help="also write the comparison as JSON")
    cp.set_defaults(fn=cmd_compare)

    wa = sub.add_parser(
        "watch",
        help="follow a live run: poll /status on a --live-port endpoint "
             "or tail a --progress-out JSONL stream",
    )
    wa.add_argument("target",
                    help="http://host:port of a --live-port run, or the "
                         "path of a --progress-out stream")
    wa.add_argument("--interval", type=float, default=0.5,
                    help="seconds between polls (default 0.5)")
    wa.add_argument("--follow", action="store_true",
                    help="keep tailing a progress file until run_end")
    wa.add_argument("--timeout", type=float, default=0.0,
                    help="give up after this many seconds (0 = never)")
    wa.add_argument("--stall-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="report the run as stalled (exit 5) when its last "
                         "heartbeat is older than this, instead of polling "
                         "forever")
    wa.set_defaults(fn=cmd_watch)

    rs = sub.add_parser(
        "resume",
        help="continue a checkpointed run from its --checkpoint-dir; the "
             "completed rounds are restored, not re-executed, and the "
             "result is bit-identical to an uninterrupted run",
    )
    rs.add_argument("dir", help="checkpoint directory of the interrupted run")
    rs.add_argument("--allow-restart", action="store_true",
                    help="if the checkpoint is corrupt, discard it and "
                         "restart from scratch instead of failing (exit 2)")
    rs.set_defaults(fn=cmd_resume)

    sv = sub.add_parser(
        "serve",
        help="run the persistent multi-tenant detection service: preloaded "
             "graphs, session reuse, result cache, per-tenant quotas",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="HTTP port (default 0 = ephemeral; the bound port "
                         "is printed and reported in /status)")
    sv.add_argument("--register", action="append", metavar="NAME=SOURCE",
                    help="preload a graph: NAME=er:N[:M[:SEED]] generates, "
                         "NAME=PATH reads an edge list (repeatable)")
    sv.add_argument("--quota", type=int, default=8,
                    help="max in-flight executions per tenant; the next "
                         "query is rejected with HTTP 429 (default 8)")
    sv.add_argument("--cache-size", type=int, default=256,
                    help="result-cache entries, LRU-evicted (0 disables)")
    sv.add_argument("--no-coalesce", action="store_true",
                    help="do not join identical in-flight queries")
    sv.add_argument("--pool-workers", type=int, default=None,
                    help="executor threads running detections (default 4)")
    sv.add_argument("--sweep-interval", type=float, default=0.05,
                    help="coordinator sweep period in seconds (default 0.05)")
    sv.add_argument("--store", metavar="PATH", default=None,
                    help="append a RunRecord per served query to this JSONL "
                         "run-history store")
    sv.add_argument("--run-seconds", type=float, default=None,
                    help="exit cleanly after this long (smoke tests; "
                         "default: serve until Ctrl-C)")
    sv.add_argument("--mode", choices=["sequential", "simulated", "modeled",
                                       "threaded", "process"], default="sequential",
                    help="execution backend for served queries")
    sv.add_argument("--workers", type=int, default=None,
                    help="workers per execution for --mode threaded/process")
    sv.add_argument("--kernel", choices=["auto", "table", "logexp", "bitsliced"],
                    default="auto",
                    help="GF(2^l) kernel strategy for served queries")
    sv.add_argument("-N", "--processors", type=int, default=1)
    sv.add_argument("--n1", type=int, default=1)
    sv.add_argument("--n2", type=int, default=None)
    sv.add_argument("--sanitize", choices=["off", "warn", "strict"],
                    default="off")
    sv.add_argument("--no-tracing", action="store_true",
                    help="disable per-query distributed tracing and "
                         "per-tenant SLO metrics")
    sv.add_argument("--trace-capacity", type=int, default=512,
                    help="finished traces kept in memory for "
                         "/api/trace/<id> (default 512, LRU-evicted)")
    sv.set_defaults(fn=cmd_serve)

    qu = sub.add_parser(
        "query",
        help="send one detection query to a running `repro serve` endpoint",
    )
    qu.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8641")
    qu.add_argument("--kind", choices=["detect-path", "detect-tree", "scan"],
                    default="detect-path")
    qu.add_argument("--graph", required=True,
                    help="registered graph name, sha, or sha prefix")
    qu.add_argument("-k", type=int, required=True)
    qu.add_argument("--eps", type=float, default=0.1)
    qu.add_argument("--seed", type=int, default=0,
                    help="pinned seed policy: the same seed always returns "
                         "a bit-identical result (and hits the cache)")
    qu.add_argument("--template", choices=["path", "star", "binary",
                                           "caterpillar"], default="binary")
    qu.add_argument("--statistic", choices=["berk-jones", "higher-criticism",
                                            "elevated-mean"],
                    default="berk-jones")
    qu.add_argument("--alpha", type=float, default=0.05)
    qu.add_argument("--extract", action="store_true")
    qu.add_argument("--tenant", default="cli")
    qu.add_argument("--json", action="store_true",
                    help="print the full JSON payload instead of a summary")
    qu.set_defaults(fn=cmd_query)

    tr = sub.add_parser(
        "trace",
        help="render a served query's end-to-end timeline (client, broker "
             "stages, engine rounds, process workers) by trace id",
    )
    tr.add_argument("trace_id", help="32-hex trace id from a query reply")
    tr.add_argument("--url", required=True,
                    help="service base URL, e.g. http://127.0.0.1:8641")
    tr.add_argument("--json", action="store_true",
                    help="print the raw trace document instead of a timeline")
    tr.add_argument("--chrome-out", metavar="PATH", default=None,
                    help="also write the cross-process Chrome trace_event "
                         "JSON (chrome://tracing / ui.perfetto.dev)")
    tr.set_defaults(fn=cmd_trace)

    fg = sub.add_parser("figures", help="regenerate the paper's figure series")
    fg.add_argument("name", nargs="?", default=None,
                    help="figure id (fig3-5, fig6-8, fig9, fig10, fig11, fig12, "
                         "giraph); all when omitted")
    fg.add_argument("--measure", action="store_true",
                    help="calibrate live instead of using the synthetic curve")
    fg.set_defaults(fn=cmd_figures)

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
