"""Deterministic SPMD simulator.

Runs ``N`` *rank programs* — generator functions over a :class:`RankContext`
— with real message delivery and virtual clocks:

* scheduling is deterministic round-robin: each rank runs until it blocks
  (on a ``Recv`` with no matching message, or on a collective), so a given
  program produces the same transcript on every run;
* compute segments (the Python/numpy work between two yields) are measured
  with ``perf_counter`` and charged to the rank's virtual clock scaled by
  the machine's ``c_scale`` (programs can instead/additionally yield
  :class:`~repro.runtime.comm.Charge` for fully modeled segments);
* communication advances clocks per the :class:`~repro.runtime.costmodel.
  CostModel`: eager sends cost the sender an injection overhead and arrive
  at ``sender_clock + alpha + bytes*beta``; receives wait for the arrival
  timestamp; collectives synchronize everyone to the max clock plus a
  log-tree cost.

Fault semantics (see :mod:`repro.runtime.faults`): a seeded injector can
crash ranks at op/time boundaries, drop/duplicate/delay messages, fail
``Send`` ops transiently, and slow stragglers.  Crashed ranks stop
executing; anything waiting on them raises a typed
:class:`~repro.errors.RankFailedError` rather than hanging, and
``Recv(timeout=...)`` turns silent message loss into a catchable
:class:`~repro.errors.TimeoutExpired` thrown into the program.

Deadlocks (all live ranks blocked with nothing in flight, and no fault to
blame) raise :class:`~repro.errors.DeadlockError` with a per-rank
diagnosis — blocked op, inbox depth, and undelivered in-flight messages —
instead of hanging the test-suite.
"""

from __future__ import annotations

import copy as _copy
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import (
    DeadlockError,
    RankFailedError,
    RuntimeSimulationError,
    SendFailedError,
    TimeoutExpired,
)
from repro.runtime.comm import (
    AllReduce,
    Barrier,
    Bcast,
    Charge,
    Gather,
    Irecv,
    Op,
    Recv,
    RecvRequest,
    Reduce,
    Send,
    Wait,
    resolve_reducer,
)
from repro.runtime.costmodel import CostModel, LAPTOP_NODE
from repro.runtime.faults import RunInjector, as_run_injector
from repro.runtime.tracing import TraceRecorder, TraceSummary


@dataclass(frozen=True)
class RankContext:
    """Read-only identity handed to each rank program.

    ``tracer`` is the simulator's recorder when tracing is enabled (else
    ``None``); programs refine event attribution with :meth:`annotate`.
    Guard with ``if ctx.tracer is not None`` so the disabled path costs a
    single attribute check.
    """

    rank: int
    nranks: int
    tracer: Optional[TraceRecorder] = None

    def annotate(self, label: str) -> None:
        """Tag this rank's subsequent trace events (e.g. ``"level3"``)."""
        if self.tracer is not None:
            self.tracer.set_rank_label(self.rank, label)


@dataclass
class _Message:
    payload: Any
    arrive: float
    san: Any = None  # sanitizer send-record, when a sanitizer is attached
    sender: int = -1
    t_send: float = 0.0  # sender's clock at send start (dependency origin)


def _annotate_rank(exc: BaseException, rank: int) -> None:
    """Attach the raising rank as a PEP-678 note (args stay untouched)."""
    note = f"[rank {rank}] raised inside the simulated rank program"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)
    else:  # Python < 3.11: emulate the attribute PEP 678 defines
        notes = getattr(exc, "__notes__", None)
        if isinstance(notes, list):
            notes.append(note)
        else:
            exc.__notes__ = [note]


class _RankState:
    __slots__ = (
        "rank",
        "gen",
        "clock",
        "finished",
        "crashed",
        "result",
        "blocked_recv",
        "recv_deadline",
        "pending_collective",
        "collective_idx",
        "resume_value",
        "resume_exception",
        "ops_done",
        "c_factor",
        "inbox",
    )

    def __init__(self, rank: int, gen: Generator) -> None:
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.finished = False
        self.crashed = False
        self.result: Any = None
        self.blocked_recv: Optional[Recv] = None
        self.recv_deadline: Optional[float] = None
        self.pending_collective: Optional[Op] = None
        self.collective_idx = 0
        self.resume_value: Any = None
        self.resume_exception: Optional[BaseException] = None
        self.ops_done = 0
        self.c_factor = 1.0
        self.inbox: Dict[Tuple[int, Hashable], deque] = {}


@dataclass
class SimResult:
    """Outcome of a simulated SPMD run."""

    results: List[Any]
    clocks: np.ndarray
    summary: TraceSummary
    crashed_ranks: Tuple[int, ...] = ()

    @property
    def makespan(self) -> float:
        """Virtual seconds until the last rank finished."""
        return float(self.clocks.max()) if len(self.clocks) else 0.0


class Simulator:
    """Execute rank programs on a virtual machine.

    Parameters
    ----------
    nranks:
        Communicator size.
    cost_model:
        Network/compute cost model; defaults to a single laptop node.
    measure_compute:
        Charge measured wall time (scaled by ``c_scale``) for compute
        segments.  Disable for fully modeled timing via ``Charge`` ops.
    copy_payloads:
        Deep-copy message payloads on send (numpy arrays are copied).  The
        safe default; engines that never mutate buffers can turn it off.
    trace:
        Record a timeline (on by default; cheap).
    faults:
        A :class:`~repro.runtime.faults.FaultPlan`,
        :class:`~repro.runtime.faults.FaultInjector`, or
        :class:`~repro.runtime.faults.RunInjector` describing faults to
        inject into this run (``None`` = perfect machine).
    sanitizer:
        A :class:`~repro.sanitize.CommSanitizer` to consult on every
        yielded op (``None`` = no checking).  Hooks charge no virtual
        time, so a sanitized run has identical clocks to a bare one.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: Optional[CostModel] = None,
        measure_compute: bool = True,
        copy_payloads: bool = True,
        trace: bool = True,
        faults=None,
        sanitizer=None,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> None:
        if nranks < 1:
            raise RuntimeSimulationError(f"need >= 1 rank, got {nranks}")
        self.nranks = nranks
        self.cost = cost_model if cost_model is not None else CostModel(LAPTOP_NODE)
        self.measure_compute = measure_compute
        self.copy_payloads = copy_payloads
        self.trace = TraceRecorder(enabled=trace)
        self.faults: Optional[RunInjector] = as_run_injector(faults)
        self.sanitizer = sanitizer
        self.heartbeat = heartbeat
        self._states: List[_RankState] = []

    # ---------------------------------------------------------------- run
    def run(self, program: Callable[[RankContext], Generator]) -> SimResult:
        """Run ``program(ctx)`` on every rank to completion."""
        tracer = self.trace if self.trace.enabled else None
        states = [
            _RankState(r, program(RankContext(r, self.nranks, tracer)))
            for r in range(self.nranks)
        ]
        self._states = states
        if self.sanitizer is not None:
            self.sanitizer.begin_run(self.nranks)
        c_scale = self.cost.spec.c_scale
        if self.faults is not None:
            rank_node = self.cost.rank_node
            for st in states:
                node = int(rank_node[st.rank]) if rank_node is not None else st.rank
                st.c_factor = self.faults.compute_factor(st.rank, node)
        unfinished = self.nranks

        while unfinished > 0:
            if self.heartbeat is not None:
                # liveness tick per scheduler sweep, so a long phase on a
                # wide machine keeps refreshing the live run's heartbeat
                self.heartbeat()
            progressed = False
            for st in states:
                if st.finished or st.blocked_recv is not None or st.pending_collective is not None:
                    continue
                progressed = True
                self._run_until_blocked(st, states, c_scale)
            # complete a pending collective if everyone alive reached it
            if self._try_complete_collective(states):
                progressed = True
            unfinished = sum(1 for st in states if not st.finished)
            if not progressed and unfinished > 0:
                runnable = [
                    st
                    for st in states
                    if not st.finished
                    and st.blocked_recv is None
                    and st.pending_collective is None
                ]
                if not runnable and not self._fire_earliest_timeout(states):
                    self._raise_stalled(states)

        if self.sanitizer is not None:
            fired = self.faults is not None and self.faults.any_fired
            self.sanitizer.on_run_end(states, fired)
        clocks = np.array([st.clock for st in states])
        return SimResult(
            results=[st.result for st in states],
            clocks=clocks,
            summary=self.trace.summary(self.nranks),
            crashed_ranks=tuple(st.rank for st in states if st.crashed),
        )

    @property
    def partial_clocks(self) -> np.ndarray:
        """Virtual clocks of the (possibly aborted) current/last run.

        Lets a fault-tolerant driver account the virtual time lost in an
        attempt that died with a :class:`~repro.errors.FaultInjectedError`.
        """
        return np.array([st.clock for st in self._states])

    # ------------------------------------------------------------ internals
    def _check_crash(self, st: _RankState) -> bool:
        """Crash ``st`` here if the injector says so; True when it fired."""
        inj = self.faults
        if inj is None or st.crashed:
            return st.crashed
        spec = inj.crash_for(st.rank)
        if spec is None:
            return False
        due = (spec.after_ops is not None and st.ops_done >= spec.after_ops) or (
            spec.at_time is not None and st.clock >= spec.at_time
        )
        if not due or not inj.consume_crash(st.rank):
            return False
        st.crashed = True
        st.finished = True
        st.blocked_recv = None
        st.recv_deadline = None
        st.pending_collective = None
        st.gen.close()
        self.trace.record(st.rank, "fault", st.clock, st.clock, info="crash")
        return True

    def _run_until_blocked(self, st: _RankState, states: List[_RankState], c_scale: float) -> None:
        while True:
            if self._check_crash(st):
                return
            resume = st.resume_value
            exc_in = st.resume_exception
            st.resume_value = None
            st.resume_exception = None
            t0 = time.perf_counter()
            try:
                if exc_in is not None:
                    op = st.gen.throw(exc_in)
                else:
                    op = st.gen.send(resume)
            except StopIteration as stop:
                self._charge_compute(st, time.perf_counter() - t0, c_scale)
                st.finished = True
                st.result = getattr(stop, "value", None)
                return
            except Exception as exc:
                # annotate which rank blew up; args and traceback preserved
                _annotate_rank(exc, st.rank)
                raise
            self._charge_compute(st, time.perf_counter() - t0, c_scale)
            st.ops_done += 1
            if self.sanitizer is not None:
                self.sanitizer.on_op(st.rank, op, st.collective_idx)

            if isinstance(op, Charge):
                t = st.clock
                st.clock += max(0.0, op.seconds) * st.c_factor
                self.trace.record(st.rank, "charge", t, st.clock)
                continue
            if isinstance(op, Send):
                self._do_send(st, states, op)
                continue
            if isinstance(op, Irecv):
                # posting is free; the matching message is claimed at Wait
                st.resume_value = RecvRequest(op.src, op.tag)
                continue
            if isinstance(op, Wait):
                as_recv = Recv(op.request.src, op.request.tag, timeout=op.timeout)
                if self._try_recv(st, as_recv):
                    continue
                self._block_on_recv(st, as_recv)
                return
            if isinstance(op, Recv):
                if self._try_recv(st, op):
                    continue
                self._block_on_recv(st, op)
                return
            if isinstance(op, (Barrier, AllReduce, Reduce, Bcast, Gather)):
                st.pending_collective = op
                return
            raise RuntimeSimulationError(
                f"rank {st.rank} yielded {op!r}, which is not a communication op"
            )

    def _block_on_recv(self, st: _RankState, op: Recv) -> None:
        st.blocked_recv = op
        st.recv_deadline = (
            st.clock + op.timeout if op.timeout is not None else None
        )

    def _charge_compute(self, st: _RankState, wall: float, c_scale: float) -> None:
        if self.measure_compute and wall > 0:
            t = st.clock
            st.clock += wall * c_scale * st.c_factor
            self.trace.record(st.rank, "compute", t, st.clock)

    def _do_send(self, st: _RankState, states: List[_RankState], op: Send) -> None:
        if not (0 <= op.dst < self.nranks):
            raise RuntimeSimulationError(f"rank {st.rank} sent to invalid rank {op.dst}")
        verdict = None
        if self.faults is not None:
            verdict = self.faults.on_send(st.rank, op.dst, op.tag)
            if verdict.fail:
                # transient injection failure: thrown at this yield point,
                # before any clock charge, so the program can just retry
                self.trace.record(st.rank, "fault", st.clock, st.clock,
                                  info=f"send-fail->{op.dst}")
                st.resume_exception = SendFailedError(
                    f"injected transient send failure "
                    f"(rank {st.rank} -> {op.dst}, tag {op.tag!r})",
                    rank=st.rank, dst=op.dst, tag=op.tag,
                )
                return
        nbytes = op.wire_bytes()
        payload = op.payload
        if self.copy_payloads and op.copy:
            if isinstance(payload, np.ndarray):
                payload = payload.copy()
            else:
                payload = _copy.deepcopy(payload)
        arrive = st.clock + self.cost.pt2pt(st.rank, op.dst, nbytes)
        t = st.clock
        st.clock += self.cost.send_overhead(st.rank, op.dst, nbytes)
        if self.trace.enabled:
            self.trace.record(st.rank, "send", t, st.clock, info=f"->{op.dst}",
                              nbytes=nbytes)
        if verdict is not None and not verdict.deliver:
            self.trace.record(st.rank, "fault", st.clock, st.clock,
                              info=f"drop->{op.dst}")
            return
        copies = 1 if verdict is None else verdict.copies
        if verdict is not None and verdict.extra_delay > 0:
            arrive += verdict.extra_delay
            self.trace.record(st.rank, "fault", st.clock, st.clock,
                              info=f"delay->{op.dst}")
        if verdict is not None and copies > 1:
            self.trace.record(st.rank, "fault", st.clock, st.clock,
                              info=f"duplicate->{op.dst}")
        dst = states[op.dst]
        q = dst.inbox.setdefault((st.rank, op.tag), deque())
        rec = None
        if self.sanitizer is not None:
            rec = self.sanitizer.on_send(st.rank, op, copies)
        for _ in range(copies):
            q.append(_Message(payload, arrive, san=rec, sender=st.rank, t_send=t))
        # wake the receiver if it was blocked on exactly this message
        if dst.blocked_recv is not None:
            br = dst.blocked_recv
            if br.src == st.rank and br.tag == op.tag:
                if self._try_recv(dst, br):
                    dst.blocked_recv = None
                    dst.recv_deadline = None

    def _try_recv(self, st: _RankState, op: Recv) -> bool:
        """Resolve a receive now: deliver, or schedule a timeout throw.

        Returns True when the rank can resume (with a payload *or* with a
        pending :class:`TimeoutExpired`), False when it must stay blocked.
        """
        q = st.inbox.get((op.src, op.tag))
        if not q:
            return False
        msg = q[0]
        deadline = st.recv_deadline
        if deadline is None and op.timeout is not None:
            deadline = st.clock + op.timeout
        if deadline is not None and msg.arrive > deadline:
            # the message exists but lands after the deadline: time out at
            # the deadline (deterministic — arrival times are modeled)
            self._expire_recv(st, op, deadline)
            return True
        q.popleft()
        if self.sanitizer is not None and msg.san is not None:
            self.sanitizer.on_deliver(st.rank, msg.san)
        t = st.clock
        if msg.arrive > st.clock:
            if self.trace.enabled:
                self.trace.record(st.rank, "wait", t, msg.arrive, info=f"<-{op.src}")
                # the arrival bound this rank: a critical-path dependency
                # from the sender's clock at send start to the arrival
                self.trace.record_edge(
                    "message", msg.sender, msg.t_send, st.rank, msg.arrive,
                    info=f"tag={op.tag!r}",
                )
            st.clock = msg.arrive
        if self.trace.enabled:
            self.trace.record(st.rank, "recv", st.clock, st.clock, info=f"<-{op.src}")
        st.resume_value = msg.payload
        st.recv_deadline = None
        return True

    def _expire_recv(self, st: _RankState, op: Recv, deadline: float) -> None:
        """Advance to ``deadline`` and arrange a TimeoutExpired throw."""
        if deadline > st.clock:
            if self.trace.enabled:
                self.trace.record(st.rank, "wait", st.clock, deadline,
                                  info=f"<-{op.src} (timeout)")
            st.clock = deadline
        self.trace.record(st.rank, "fault", st.clock, st.clock,
                          info=f"timeout<-{op.src}")
        st.resume_exception = TimeoutExpired(
            f"rank {st.rank}: Recv(src={op.src}, tag={op.tag!r}) timed out "
            f"at t={deadline:.6g}",
            rank=st.rank, src=op.src, tag=op.tag, deadline=deadline,
        )
        st.recv_deadline = None

    def _fire_earliest_timeout(self, states: List[_RankState]) -> bool:
        """At a stall, expire the earliest timed-out Recv (if any).

        Virtual time only advances through modeled events, so a blocked
        ``Recv(timeout=...)`` whose message will never come expires when
        the simulation can make no other progress — the deterministic
        analogue of "the timeout fires while everyone else idles".
        """
        timed = [
            st for st in states
            if st.blocked_recv is not None and st.recv_deadline is not None
        ]
        if not timed:
            return False
        st = min(timed, key=lambda s: (s.recv_deadline, s.rank))
        op = st.blocked_recv
        st.blocked_recv = None
        self._expire_recv(st, op, max(st.recv_deadline, st.clock))
        return True

    def _try_complete_collective(self, states: List[_RankState]) -> bool:
        pend = [st for st in states if st.pending_collective is not None]
        if len(pend) != self.nranks:
            if pend and all(st.finished or st.pending_collective is not None for st in states):
                # some ranks exited while others wait in a collective: the
                # collective can never complete — a typed failure when a
                # crash is to blame, a deadlock when ranks exited normally
                crashed = [st.rank for st in states if st.crashed]
                if crashed:
                    raise RankFailedError(
                        f"collective {type(pend[0].pending_collective).__name__} "
                        f"involves crashed rank(s) {crashed}:\n"
                        + self._diagnose(states),
                        ranks=crashed,
                    )
                if self.sanitizer is not None:
                    waiting = [st.rank for st in pend]
                    exited = [st.rank for st in states
                              if st.finished and not st.crashed]
                    self.sanitizer.on_collective_abandoned(
                        waiting, exited, pend[0].pending_collective
                    )
                self._raise_deadlock(states)
            return False
        ops = [st.pending_collective for st in states]
        idx0 = states[0].collective_idx
        if any(st.collective_idx != idx0 for st in states):
            raise RuntimeSimulationError(
                "ranks disagree on collective call count: "
                + ", ".join(f"rank {st.rank}: {st.collective_idx}" for st in states)
            )
        kind = type(ops[0])
        if any(type(o) is not kind for o in ops):
            raise RuntimeSimulationError(
                f"mismatched collective types at call #{idx0}: "
                f"{sorted({type(o).__name__ for o in ops})}"
            )
        t_sync = max(st.clock for st in states)
        nbytes = max((o.wire_bytes() for o in ops if hasattr(o, "wire_bytes")), default=0)

        if kind is Barrier:
            results = [None] * self.nranks
            cost = self.cost.collective("barrier", self.nranks, 0)
        elif kind is AllReduce or kind is Reduce:
            reducer = resolve_reducer(ops[0].op)
            acc = ops[0].value
            for o in ops[1:]:
                acc = reducer(acc, o.value)
            if kind is AllReduce:
                results = [
                    acc.copy() if isinstance(acc, np.ndarray) else acc
                    for _ in range(self.nranks)
                ]
                cost = self.cost.collective("allreduce", self.nranks, nbytes)
            else:
                root = ops[0].root
                if any(o.root != root for o in ops):
                    raise RuntimeSimulationError("mismatched reduce roots")
                results = [acc if r == root else None for r in range(self.nranks)]
                cost = self.cost.collective("reduce", self.nranks, nbytes)
        elif kind is Bcast:
            root = ops[0].root
            if any(o.root != root for o in ops):
                raise RuntimeSimulationError("mismatched bcast roots")
            val = ops[root].value
            results = [
                val.copy() if isinstance(val, np.ndarray) else _copy.deepcopy(val)
                for _ in range(self.nranks)
            ]
            cost = self.cost.collective("bcast", self.nranks, nbytes)
        elif kind is Gather:
            root = ops[0].root
            if any(o.root != root for o in ops):
                raise RuntimeSimulationError("mismatched gather roots")
            # copy like Bcast/AllReduce: the root must not alias (and so be
            # able to mutate) the senders' live buffers
            gathered = [
                o.value.copy() if isinstance(o.value, np.ndarray)
                else _copy.deepcopy(o.value)
                for o in ops
            ]
            results = [gathered if r == root else None for r in range(self.nranks)]
            cost = self.cost.collective("gather", self.nranks, nbytes)
        else:  # pragma: no cover - unreachable
            raise RuntimeSimulationError(f"unhandled collective {kind}")

        if self.trace.enabled:
            # the join is bound by the latest-entering rank (ties -> lowest)
            latest = min(
                (st.rank for st in states if st.clock == t_sync),
                default=states[0].rank,
            )
            for st in states:
                self.trace.record_edge(
                    "collective", latest, t_sync, st.rank, t_sync + cost,
                    info=kind.__name__,
                )
        for st, res in zip(states, results):
            if self.trace.enabled:
                self.trace.record(
                    st.rank, "collective", st.clock, t_sync + cost,
                    info=kind.__name__, nbytes=nbytes,
                )
            st.clock = t_sync + cost
            st.resume_value = res
            st.pending_collective = None
            st.collective_idx += 1
        return True

    # ----------------------------------------------------------- diagnosis
    def _diagnose(self, states: List[_RankState]) -> str:
        """Per-rank stall diagnosis: status, inbox depth, in-flight mail."""
        lines = []
        for st in states:
            if st.crashed:
                status = f"CRASHED at t={st.clock:.6g}"
            elif st.finished:
                status = "finished"
            elif st.blocked_recv is not None:
                status = (f"blocked on Recv(src={st.blocked_recv.src}, "
                          f"tag={st.blocked_recv.tag!r})")
                if st.recv_deadline is not None:
                    status += f" [timeout at t={st.recv_deadline:.6g}]"
            elif st.pending_collective is not None:
                status = f"waiting in {type(st.pending_collective).__name__}"
            else:
                status = "runnable(?)"
            depth = sum(len(q) for q in st.inbox.values())
            lines.append(f"  rank {st.rank}: {status}  (inbox: {depth} undelivered)")
            for (src, tag), q in sorted(st.inbox.items(), key=lambda kv: str(kv[0])):
                for msg in q:
                    lines.append(
                        f"    in flight: {src}->{st.rank} tag={tag!r} "
                        f"arrives t={msg.arrive:.6g}"
                    )
        if self.faults is not None and self.faults.dropped:
            lines.append("  injected drops: " + ", ".join(
                f"{s}->{d} tag={t!r}" for s, d, t in self.faults.dropped
            ))
        return "\n".join(lines)

    def _raise_stalled(self, states: List[_RankState]) -> None:
        """No rank can progress: raise the most specific typed error."""
        crashed = [st.rank for st in states if st.crashed]
        diagnosis = self._diagnose(states)
        if crashed:
            raise RankFailedError(
                f"simulated run stalled on crashed rank(s) {crashed}:\n" + diagnosis,
                ranks=crashed,
            )
        if self.faults is not None and self.faults.dropped:
            raise RankFailedError(
                "simulated run stalled after injected message drops:\n" + diagnosis,
                lost_messages=self.faults.dropped,
            )
        raise DeadlockError("simulated SPMD program deadlocked:\n" + diagnosis)

    def _raise_deadlock(self, states: List[_RankState]) -> None:
        raise DeadlockError("simulated SPMD program deadlocked:\n"
                            + self._diagnose(states))
