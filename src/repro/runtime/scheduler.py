"""Deterministic SPMD simulator.

Runs ``N`` *rank programs* — generator functions over a :class:`RankContext`
— with real message delivery and virtual clocks:

* scheduling is deterministic round-robin: each rank runs until it blocks
  (on a ``Recv`` with no matching message, or on a collective), so a given
  program produces the same transcript on every run;
* compute segments (the Python/numpy work between two yields) are measured
  with ``perf_counter`` and charged to the rank's virtual clock scaled by
  the machine's ``c_scale`` (programs can instead/additionally yield
  :class:`~repro.runtime.comm.Charge` for fully modeled segments);
* communication advances clocks per the :class:`~repro.runtime.costmodel.
  CostModel`: eager sends cost the sender an injection overhead and arrive
  at ``sender_clock + alpha + bytes*beta``; receives wait for the arrival
  timestamp; collectives synchronize everyone to the max clock plus a
  log-tree cost.

Deadlocks (all live ranks blocked with nothing in flight) raise
:class:`~repro.errors.DeadlockError` with a per-rank diagnosis instead of
hanging the test-suite.
"""

from __future__ import annotations

import copy as _copy
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import DeadlockError, RuntimeSimulationError
from repro.runtime.comm import (
    AllReduce,
    Barrier,
    Bcast,
    Charge,
    Gather,
    Irecv,
    Op,
    Recv,
    RecvRequest,
    Reduce,
    Send,
    Wait,
    resolve_reducer,
)
from repro.runtime.costmodel import CostModel, LAPTOP_NODE
from repro.runtime.tracing import TraceRecorder, TraceSummary


@dataclass(frozen=True)
class RankContext:
    """Read-only identity handed to each rank program.

    ``tracer`` is the simulator's recorder when tracing is enabled (else
    ``None``); programs refine event attribution with :meth:`annotate`.
    Guard with ``if ctx.tracer is not None`` so the disabled path costs a
    single attribute check.
    """

    rank: int
    nranks: int
    tracer: Optional[TraceRecorder] = None

    def annotate(self, label: str) -> None:
        """Tag this rank's subsequent trace events (e.g. ``"level3"``)."""
        if self.tracer is not None:
            self.tracer.set_rank_label(self.rank, label)


@dataclass
class _Message:
    payload: Any
    arrive: float


class _RankState:
    __slots__ = (
        "rank",
        "gen",
        "clock",
        "finished",
        "result",
        "blocked_recv",
        "pending_collective",
        "collective_idx",
        "resume_value",
        "inbox",
    )

    def __init__(self, rank: int, gen: Generator) -> None:
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.finished = False
        self.result: Any = None
        self.blocked_recv: Optional[Recv] = None
        self.pending_collective: Optional[Op] = None
        self.collective_idx = 0
        self.resume_value: Any = None
        self.inbox: Dict[Tuple[int, Hashable], deque] = {}


@dataclass
class SimResult:
    """Outcome of a simulated SPMD run."""

    results: List[Any]
    clocks: np.ndarray
    summary: TraceSummary

    @property
    def makespan(self) -> float:
        """Virtual seconds until the last rank finished."""
        return float(self.clocks.max()) if len(self.clocks) else 0.0


class Simulator:
    """Execute rank programs on a virtual machine.

    Parameters
    ----------
    nranks:
        Communicator size.
    cost_model:
        Network/compute cost model; defaults to a single laptop node.
    measure_compute:
        Charge measured wall time (scaled by ``c_scale``) for compute
        segments.  Disable for fully modeled timing via ``Charge`` ops.
    copy_payloads:
        Deep-copy message payloads on send (numpy arrays are copied).  The
        safe default; engines that never mutate buffers can turn it off.
    trace:
        Record a timeline (on by default; cheap).
    """

    def __init__(
        self,
        nranks: int,
        cost_model: Optional[CostModel] = None,
        measure_compute: bool = True,
        copy_payloads: bool = True,
        trace: bool = True,
    ) -> None:
        if nranks < 1:
            raise RuntimeSimulationError(f"need >= 1 rank, got {nranks}")
        self.nranks = nranks
        self.cost = cost_model if cost_model is not None else CostModel(LAPTOP_NODE)
        self.measure_compute = measure_compute
        self.copy_payloads = copy_payloads
        self.trace = TraceRecorder(enabled=trace)

    # ---------------------------------------------------------------- run
    def run(self, program: Callable[[RankContext], Generator]) -> SimResult:
        """Run ``program(ctx)`` on every rank to completion."""
        tracer = self.trace if self.trace.enabled else None
        states = [
            _RankState(r, program(RankContext(r, self.nranks, tracer)))
            for r in range(self.nranks)
        ]
        unfinished = self.nranks
        c_scale = self.cost.spec.c_scale

        while unfinished > 0:
            progressed = False
            for st in states:
                if st.finished or st.blocked_recv is not None or st.pending_collective is not None:
                    continue
                progressed = True
                self._run_until_blocked(st, states, c_scale)
            # complete a pending collective if everyone alive reached it
            if self._try_complete_collective(states):
                progressed = True
            unfinished = sum(1 for st in states if not st.finished)
            if not progressed and unfinished > 0:
                runnable = [
                    st
                    for st in states
                    if not st.finished
                    and st.blocked_recv is None
                    and st.pending_collective is None
                ]
                if not runnable:
                    self._raise_deadlock(states)

        clocks = np.array([st.clock for st in states])
        return SimResult(
            results=[st.result for st in states],
            clocks=clocks,
            summary=self.trace.summary(self.nranks),
        )

    # ------------------------------------------------------------ internals
    def _run_until_blocked(self, st: _RankState, states: List[_RankState], c_scale: float) -> None:
        while True:
            resume = st.resume_value
            st.resume_value = None
            t0 = time.perf_counter()
            try:
                op = st.gen.send(resume)
            except StopIteration as stop:
                self._charge_compute(st, time.perf_counter() - t0, c_scale)
                st.finished = True
                st.result = getattr(stop, "value", None)
                return
            except Exception as exc:
                # annotate which rank blew up; the traceback is preserved
                exc.args = (f"[rank {st.rank}] {exc.args[0] if exc.args else exc}",) + tuple(
                    exc.args[1:]
                )
                raise
            self._charge_compute(st, time.perf_counter() - t0, c_scale)

            if isinstance(op, Charge):
                t = st.clock
                st.clock += max(0.0, op.seconds)
                self.trace.record(st.rank, "charge", t, st.clock)
                continue
            if isinstance(op, Send):
                self._do_send(st, states, op)
                continue
            if isinstance(op, Irecv):
                # posting is free; the matching message is claimed at Wait
                st.resume_value = RecvRequest(op.src, op.tag)
                continue
            if isinstance(op, Wait):
                as_recv = Recv(op.request.src, op.request.tag)
                if self._try_recv(st, as_recv):
                    continue
                st.blocked_recv = as_recv
                return
            if isinstance(op, Recv):
                if self._try_recv(st, op):
                    continue
                st.blocked_recv = op
                return
            if isinstance(op, (Barrier, AllReduce, Reduce, Bcast, Gather)):
                st.pending_collective = op
                return
            raise RuntimeSimulationError(
                f"rank {st.rank} yielded {op!r}, which is not a communication op"
            )

    def _charge_compute(self, st: _RankState, wall: float, c_scale: float) -> None:
        if self.measure_compute and wall > 0:
            t = st.clock
            st.clock += wall * c_scale
            self.trace.record(st.rank, "compute", t, st.clock)

    def _do_send(self, st: _RankState, states: List[_RankState], op: Send) -> None:
        if not (0 <= op.dst < self.nranks):
            raise RuntimeSimulationError(f"rank {st.rank} sent to invalid rank {op.dst}")
        nbytes = op.wire_bytes()
        payload = op.payload
        if self.copy_payloads and op.copy:
            if isinstance(payload, np.ndarray):
                payload = payload.copy()
            else:
                payload = _copy.deepcopy(payload)
        arrive = st.clock + self.cost.pt2pt(st.rank, op.dst, nbytes)
        t = st.clock
        st.clock += self.cost.send_overhead(st.rank, op.dst, nbytes)
        if self.trace.enabled:
            self.trace.record(st.rank, "send", t, st.clock, info=f"->{op.dst}",
                              nbytes=nbytes)
        dst = states[op.dst]
        dst.inbox.setdefault((st.rank, op.tag), deque()).append(_Message(payload, arrive))
        # wake the receiver if it was blocked on exactly this message
        if dst.blocked_recv is not None:
            br = dst.blocked_recv
            if br.src == st.rank and br.tag == op.tag:
                if self._try_recv(dst, br):
                    dst.blocked_recv = None

    def _try_recv(self, st: _RankState, op: Recv) -> bool:
        q = st.inbox.get((op.src, op.tag))
        if not q:
            return False
        msg = q.popleft()
        t = st.clock
        if msg.arrive > st.clock:
            if self.trace.enabled:
                self.trace.record(st.rank, "wait", t, msg.arrive, info=f"<-{op.src}")
            st.clock = msg.arrive
        if self.trace.enabled:
            self.trace.record(st.rank, "recv", st.clock, st.clock, info=f"<-{op.src}")
        st.resume_value = msg.payload
        return True

    def _try_complete_collective(self, states: List[_RankState]) -> bool:
        pend = [st for st in states if st.pending_collective is not None]
        if len(pend) != self.nranks:
            if pend and all(st.finished or st.pending_collective is not None for st in states):
                # some ranks exited while others wait on a collective: hang
                self._raise_deadlock(states)
            return False
        ops = [st.pending_collective for st in states]
        idx0 = states[0].collective_idx
        if any(st.collective_idx != idx0 for st in states):
            raise RuntimeSimulationError("ranks disagree on collective call count")
        kind = type(ops[0])
        if any(type(o) is not kind for o in ops):
            raise RuntimeSimulationError(
                f"mismatched collective types at call #{idx0}: "
                f"{sorted({type(o).__name__ for o in ops})}"
            )
        t_sync = max(st.clock for st in states)
        nbytes = max((o.wire_bytes() for o in ops if hasattr(o, "wire_bytes")), default=0)

        if kind is Barrier:
            results = [None] * self.nranks
            cost = self.cost.collective("barrier", self.nranks, 0)
        elif kind is AllReduce or kind is Reduce:
            reducer = resolve_reducer(ops[0].op)
            acc = ops[0].value
            for o in ops[1:]:
                acc = reducer(acc, o.value)
            if kind is AllReduce:
                results = [
                    acc.copy() if isinstance(acc, np.ndarray) else acc
                    for _ in range(self.nranks)
                ]
                cost = self.cost.collective("allreduce", self.nranks, nbytes)
            else:
                root = ops[0].root
                if any(o.root != root for o in ops):
                    raise RuntimeSimulationError("mismatched reduce roots")
                results = [acc if r == root else None for r in range(self.nranks)]
                cost = self.cost.collective("reduce", self.nranks, nbytes)
        elif kind is Bcast:
            root = ops[0].root
            if any(o.root != root for o in ops):
                raise RuntimeSimulationError("mismatched bcast roots")
            val = ops[root].value
            results = [
                val.copy() if isinstance(val, np.ndarray) else _copy.deepcopy(val)
                for _ in range(self.nranks)
            ]
            cost = self.cost.collective("bcast", self.nranks, nbytes)
        elif kind is Gather:
            root = ops[0].root
            if any(o.root != root for o in ops):
                raise RuntimeSimulationError("mismatched gather roots")
            gathered = [o.value for o in ops]
            results = [gathered if r == root else None for r in range(self.nranks)]
            cost = self.cost.collective("gather", self.nranks, nbytes)
        else:  # pragma: no cover - unreachable
            raise RuntimeSimulationError(f"unhandled collective {kind}")

        for st, res in zip(states, results):
            if self.trace.enabled:
                self.trace.record(
                    st.rank, "collective", st.clock, t_sync + cost,
                    info=kind.__name__, nbytes=nbytes,
                )
            st.clock = t_sync + cost
            st.resume_value = res
            st.pending_collective = None
            st.collective_idx += 1
        return True

    def _raise_deadlock(self, states: List[_RankState]) -> None:
        lines = []
        for st in states:
            if st.finished:
                status = "finished"
            elif st.blocked_recv is not None:
                status = f"blocked on Recv(src={st.blocked_recv.src}, tag={st.blocked_recv.tag!r})"
            elif st.pending_collective is not None:
                status = f"waiting in {type(st.pending_collective).__name__}"
            else:
                status = "runnable(?)"
            lines.append(f"  rank {st.rank}: {status}")
        raise DeadlockError("simulated SPMD program deadlocked:\n" + "\n".join(lines))
