"""Algorithmic collectives implemented as rank-program fragments.

The :class:`~repro.runtime.scheduler.Simulator`'s built-in collectives
(:class:`~repro.runtime.comm.AllReduce` etc.) are *magic*: they combine
values centrally and charge a closed-form log-tree cost.  The generators
here implement the same collectives **out of point-to-point messages**, the
way an MPI library does, so that

* the simulator's collective cost model can be validated against an
  actual message-level execution (tests assert the magic cost is within a
  small factor of the ring/recursive-doubling makespans), and
* experiments can study collective-algorithm choice (ring vs recursive
  doubling) under the same cost model MIDAS runs on.

All fragments are used with ``yield from`` inside a rank program::

    def program(ctx):
        total = yield from ring_allreduce(ctx, my_value, op="xor")
        ...

Values may be numpy arrays (combined elementwise) or scalars.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.runtime.comm import Recv, Send, resolve_reducer
from repro.runtime.scheduler import RankContext


def _combine(reducer, a, b):
    out = reducer(a, b)
    return out


def ring_allreduce(ctx: RankContext, value: Any, op="xor", tag="ring-ar"):
    """All-reduce via a ring: ``P - 1`` shifts of the running partial.

    Bandwidth-optimal for large payloads in real MPI (with chunking); here
    the whole value travels each hop, giving the classic
    ``(P-1) * (alpha + n beta)`` ring cost.
    """
    reducer = resolve_reducer(op)
    p = ctx.nranks
    if p == 1:
        return value
    if ctx.tracer is not None:
        ctx.annotate("ring-allreduce")
    nxt = (ctx.rank + 1) % p
    prv = (ctx.rank - 1) % p
    # every rank forwards, each step, the value it received the step
    # before (its own value at step 0); after P-1 steps every original
    # value has visited every rank exactly once and been folded in.
    acc = value
    travelling = value
    for step in range(p - 1):
        yield Send(nxt, (tag, step), travelling)
        travelling = yield Recv(prv, (tag, step))
        acc = _combine(reducer, acc, travelling)
    return acc


def recursive_doubling_allreduce(ctx: RankContext, value: Any, op="xor", tag="rd-ar"):
    """All-reduce via recursive doubling: ``log2 P`` exchange rounds.

    Requires a power-of-two communicator (the classic formulation);
    latency-optimal for small payloads — exactly the final ``P``-wide
    8-byte reduce MIDAS performs each round.
    """
    p = ctx.nranks
    if p & (p - 1):
        raise ConfigurationError(
            f"recursive doubling needs a power-of-two rank count, got {p}"
        )
    reducer = resolve_reducer(op)
    if ctx.tracer is not None:
        ctx.annotate("rd-allreduce")
    acc = value
    step = 0
    dist = 1
    while dist < p:
        peer = ctx.rank ^ dist
        yield Send(peer, (tag, step), acc)
        other = yield Recv(peer, (tag, step))
        acc = _combine(reducer, acc, other)
        dist <<= 1
        step += 1
    return acc


def binomial_bcast(ctx: RankContext, value: Any, root: int = 0, tag="bin-bc"):
    """Broadcast via a binomial tree: ``ceil(log2 P)`` rounds.

    Rank ids are rotated so any root works; each holder doubles the set of
    informed ranks per round.
    """
    p = ctx.nranks
    if not (0 <= root < p):
        raise ConfigurationError(f"root {root} out of range")
    if ctx.tracer is not None:
        ctx.annotate("binomial-bcast")
    vrank = (ctx.rank - root) % p
    have = vrank == 0
    data = value if have else None
    dist = 1
    while dist < p:
        # ranks [0, dist) are informed; each sends to its +dist partner,
        # doubling the informed set per round
        if have and vrank < dist and vrank + dist < p:
            dest = (vrank + dist + root) % p
            yield Send(dest, (tag, dist), data)
        elif not have and dist <= vrank < 2 * dist:
            src = (vrank - dist + root) % p
            data = yield Recv(src, (tag, dist))
            have = True
        dist <<= 1
    return data


def ring_allgather(ctx: RankContext, value: Any, tag="ring-ag"):
    """All-gather via a ring: after ``P - 1`` shifts every rank holds the
    rank-ordered list of all values.

    The building block of the bandwidth-optimal allreduce family; returned
    list index ``r`` is rank ``r``'s contribution.
    """
    p = ctx.nranks
    out = [None] * p
    out[ctx.rank] = value
    if p == 1:
        return out
    if ctx.tracer is not None:
        ctx.annotate("ring-allgather")
    nxt = (ctx.rank + 1) % p
    prv = (ctx.rank - 1) % p
    travelling = (ctx.rank, value)
    for step in range(p - 1):
        yield Send(nxt, (tag, step), travelling)
        travelling = yield Recv(prv, (tag, step))
        src, val = travelling
        out[src] = val
    return out


def gather_to_root(ctx: RankContext, value: Any, root: int = 0, tag="lin-ga"):
    """Linear gather: everyone sends to root; root returns the rank-ordered
    list, others return None.  The simplest (and latency-worst) gather —
    the baseline the tree-based magic collective is compared against."""
    p = ctx.nranks
    if not (0 <= root < p):
        raise ConfigurationError(f"root {root} out of range")
    if ctx.tracer is not None:
        ctx.annotate("linear-gather")
    if ctx.rank == root:
        out = [None] * p
        out[root] = value
        for r in range(p):
            if r != root:
                out[r] = yield Recv(r, (tag, r))
        return out
    yield Send(root, (tag, ctx.rank), value)
    return None
