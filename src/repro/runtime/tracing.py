"""Timeline recording for simulated runs.

Every scheduler event (compute segment, send, recv wait, collective) is
appended as a :class:`TraceEvent`; :class:`TraceSummary` aggregates them
into the per-rank compute/communication/idle split that the paper's
discussion of compute-vs-communication balance refers to.

Events carry a structured :class:`Scope` — the (round, batch, phase,
iteration-window) coordinates of the MIDAS schedule plus a free-form
label for finer attribution (DP level, collective algorithm, ...).  The
scope is what lets :mod:`repro.obs.chrome_trace` draw a per-phase
timeline and :mod:`repro.obs.report` answer "which phase is over model,
on which ranks, compute or comm?".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

import numpy as np


@dataclass(frozen=True)
class Scope:
    """Structured attribution of a trace event to the MIDAS schedule.

    All coordinates are optional so partial scopes compose: the driver
    stamps ``(round, batch, phase, q0, q1)`` while a rank program adds a
    ``label`` for its current DP level (see ``RankContext.annotate``).
    """

    round: Optional[int] = None
    batch: Optional[int] = None
    phase: Optional[int] = None
    q0: Optional[int] = None  # iteration window [q0, q1)
    q1: Optional[int] = None
    label: str = ""

    def merged(self, other: Optional["Scope"]) -> "Scope":
        """Overlay ``other``'s non-empty fields onto this scope.

        Labels compose ("outer inner") rather than overwrite, so a
        driver-level label (``size3``, ``failed-attempt1``) survives a
        rank program's finer annotation (``level2``).
        """
        if other is None:
            return self
        updates = {}
        for f in ("round", "batch", "phase", "q0", "q1"):
            v = getattr(other, f)
            if v is not None:
                updates[f] = v
        if other.label:
            updates["label"] = (
                f"{self.label} {other.label}" if self.label else other.label
            )
        return replace(self, **updates) if updates else self

    def with_label(self, label: str) -> "Scope":
        return replace(self, label=label)

    def describe(self) -> str:
        """Compact human form, e.g. ``r0 b1 p3 [q64:96] level2``."""
        parts = []
        if self.round is not None:
            parts.append(f"r{self.round}")
        if self.batch is not None:
            parts.append(f"b{self.batch}")
        if self.phase is not None:
            parts.append(f"p{self.phase}")
        if self.q0 is not None and self.q1 is not None:
            parts.append(f"[q{self.q0}:{self.q1}]")
        if self.label:
            parts.append(self.label)
        return " ".join(parts)

    def to_dict(self) -> dict:
        d = {}
        for f in ("round", "batch", "phase", "q0", "q1"):
            v = getattr(self, f)
            if v is not None:
                d[f] = int(v)
        if self.label:
            d["label"] = self.label
        return d

    @staticmethod
    def from_dict(d: dict) -> "Scope":
        return Scope(
            round=d.get("round"), batch=d.get("batch"), phase=d.get("phase"),
            q0=d.get("q0"), q1=d.get("q1"), label=d.get("label", ""),
        )


@dataclass(frozen=True)
class TraceEvent:
    rank: int
    kind: str  # "compute" | "send" | "recv" | "wait" | "collective" | "charge"
    t_start: float
    t_end: float
    info: str = ""
    nbytes: int = 0  # wire bytes (send/collective events)
    scope: Optional[Scope] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class DepEdge:
    """A happens-before edge between two rank timelines.

    ``(src_rank, t_src)`` is where the dependency left its source (e.g.
    the sender's clock at send start); ``(dst_rank, t_dst)`` is where it
    *bound* the destination (e.g. the message arrival a blocked receiver
    resumed at).  ``t_dst - t_src`` is therefore the modeled cost carried
    by the edge itself — network flight time for messages, the log-tree
    cost for collectives, zero for pure ordering barriers.

    Kinds: ``"message"`` (send -> blocking recv/wait), ``"collective"``
    (latest-entering rank -> every participant's completion),
    ``"barrier"`` (phase/batch/round joins recorded by the engine).

    Only *binding* dependencies are recorded: a message delivered to a
    rank that had already passed its arrival time constrains nothing and
    produces no edge.  This is exactly the set the critical-path
    extraction in :mod:`repro.obs.analyze` needs.
    """

    kind: str  # "message" | "collective" | "barrier"
    src_rank: int
    t_src: float
    dst_rank: int
    t_dst: float
    info: str = ""

    @property
    def weight(self) -> float:
        return self.t_dst - self.t_src


class TraceRecorder:
    """Collects :class:`TraceEvent`s; cheap to disable.

    A *current scope* can be set (:meth:`set_scope`) and is stamped onto
    every subsequently recorded event; per-rank labels set through
    :meth:`set_rank_label` (usually via ``RankContext.annotate``) refine
    it with e.g. the DP level the rank is currently computing.

    Call sites should guard on :attr:`enabled` before doing any work
    (string formatting, byte counting) purely for the recorder's benefit;
    :meth:`record` is itself a no-op when disabled, so the guarded path
    costs one attribute check.
    """

    __slots__ = ("enabled", "events", "edges", "_scope", "_rank_labels")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.edges: List[DepEdge] = []
        self._scope: Optional[Scope] = None
        self._rank_labels: Dict[int, str] = {}

    # ------------------------------------------------------------ scoping
    def set_scope(self, scope: Optional[Scope]) -> None:
        """Set the scope stamped onto subsequent events (None to clear)."""
        self._scope = scope

    def set_rank_label(self, rank: int, label: str) -> None:
        """Tag rank's next events with ``label`` (e.g. ``"level3"``)."""
        if self.enabled:
            self._rank_labels[rank] = label

    # ---------------------------------------------------------- recording
    def record(
        self,
        rank: int,
        kind: str,
        t_start: float,
        t_end: float,
        info: str = "",
        nbytes: int = 0,
        scope: Optional[Scope] = None,
    ) -> None:
        if self.enabled and t_end >= t_start:
            if scope is None:
                scope = self._scope
            label = self._rank_labels.get(rank)
            if label:
                scope = Scope(label=label) if scope is None else (
                    scope if scope.label else scope.with_label(label)
                )
            self.events.append(TraceEvent(rank, kind, t_start, t_end, info, nbytes, scope))

    def record_edge(
        self,
        kind: str,
        src_rank: int,
        t_src: float,
        dst_rank: int,
        t_dst: float,
        info: str = "",
    ) -> None:
        """Record a happens-before edge (no-op when disabled)."""
        if self.enabled and t_dst >= t_src:
            self.edges.append(DepEdge(kind, src_rank, t_src, dst_rank, t_dst, info))

    def extend(
        self,
        events: Iterable[TraceEvent],
        t_shift: float = 0.0,
        rank_offset: int = 0,
        scope: Optional[Scope] = None,
        edges: Iterable[DepEdge] = (),
    ) -> None:
        """Append another recording, shifted in time/rank and re-scoped.

        Used by the driver to splice each per-phase simulator timeline
        (clocks starting at 0, ranks ``0..N1-1``) into the run-level
        timeline: ``t_shift`` places the batch on the global clock,
        ``rank_offset`` maps the phase's processor group onto global
        ranks, and ``scope`` stamps the schedule coordinates (merged with
        any finer scope the event already carries, e.g. a DP-level
        label).  ``edges`` carries the phase recording's happens-before
        edges, shifted onto the same global clock and ranks.
        """
        if not self.enabled:
            return
        for e in events:
            merged = scope.merged(e.scope) if scope is not None else e.scope
            self.events.append(
                TraceEvent(
                    e.rank + rank_offset if e.rank >= 0 else e.rank,
                    e.kind,
                    e.t_start + t_shift,
                    e.t_end + t_shift,
                    e.info,
                    e.nbytes,
                    merged,
                )
            )
        for d in edges:
            self.edges.append(
                DepEdge(
                    d.kind,
                    d.src_rank + rank_offset if d.src_rank >= 0 else d.src_rank,
                    d.t_src + t_shift,
                    d.dst_rank + rank_offset if d.dst_rank >= 0 else d.dst_rank,
                    d.t_dst + t_shift,
                    d.info,
                )
            )

    def clear(self) -> None:
        self.events.clear()
        self.edges.clear()
        self._rank_labels.clear()
        self._scope = None

    def summary(self, nranks: int) -> "TraceSummary":
        return TraceSummary.from_events(self.events, nranks)


@dataclass
class TraceSummary:
    """Aggregate per-rank time split and overall makespan.

    ``other`` collects busy time charged to ranks outside ``[0, nranks)``
    — e.g. the rank ``-1`` coordinator charge of the round-final reduce —
    so no recorded time silently vanishes from the split.
    """

    nranks: int
    compute: np.ndarray
    comm: np.ndarray
    idle: np.ndarray
    makespan: float
    bytes_sent: np.ndarray = None  # per-rank wire bytes (send events)
    other: float = 0.0  # busy seconds on out-of-range ranks

    def __post_init__(self) -> None:
        if self.bytes_sent is None:
            self.bytes_sent = np.zeros(self.nranks, dtype=np.int64)

    @staticmethod
    def from_events(events: List[TraceEvent], nranks: int) -> "TraceSummary":
        compute = np.zeros(nranks)
        comm = np.zeros(nranks)
        idle = np.zeros(nranks)
        bytes_sent = np.zeros(nranks, dtype=np.int64)
        other = 0.0
        makespan = 0.0
        for e in events:
            makespan = max(makespan, e.t_end)
            if e.rank < 0 or e.rank >= nranks:
                other += e.duration
                continue
            if e.kind in ("compute", "charge"):
                compute[e.rank] += e.duration
            elif e.kind in ("send", "recv", "collective"):
                comm[e.rank] += e.duration
            elif e.kind == "wait":
                idle[e.rank] += e.duration
            if e.nbytes and e.kind == "send":
                bytes_sent[e.rank] += e.nbytes
        return TraceSummary(nranks, compute, comm, idle, makespan, bytes_sent, other)

    @property
    def total_compute(self) -> float:
        return float(self.compute.sum())

    @property
    def total_comm(self) -> float:
        return float(self.comm.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    @property
    def comm_fraction(self) -> float:
        busy = self.total_compute + self.total_comm
        return self.total_comm / busy if busy > 0 else 0.0

    def report(self) -> str:
        lines = [
            f"makespan: {self.makespan:.6f}s  "
            f"(compute {self.total_compute:.6f}s, comm {self.total_comm:.6f}s, "
            f"comm-frac {self.comm_fraction:.1%})"
        ]
        for r in range(self.nranks):
            lines.append(
                f"  rank {r:4d}: compute {self.compute[r]:.6f}s  "
                f"comm {self.comm[r]:.6f}s  idle {self.idle[r]:.6f}s"
            )
        if self.other > 0:
            lines.append(f"  other (out-of-range ranks): {self.other:.6f}s")
        return "\n".join(lines)
