"""Timeline recording for simulated runs.

Every scheduler event (compute segment, send, recv wait, collective) is
appended as a :class:`TraceEvent`; :class:`TraceSummary` aggregates them
into the per-rank compute/communication/idle split that the paper's
discussion of compute-vs-communication balance refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class TraceEvent:
    rank: int
    kind: str  # "compute" | "send" | "recv" | "wait" | "collective" | "charge"
    t_start: float
    t_end: float
    info: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class TraceRecorder:
    """Collects :class:`TraceEvent`s; cheap to disable."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, rank: int, kind: str, t_start: float, t_end: float, info: str = "") -> None:
        if self.enabled and t_end >= t_start:
            self.events.append(TraceEvent(rank, kind, t_start, t_end, info))

    def summary(self, nranks: int) -> "TraceSummary":
        return TraceSummary.from_events(self.events, nranks)


@dataclass
class TraceSummary:
    """Aggregate per-rank time split and overall makespan."""

    nranks: int
    compute: np.ndarray
    comm: np.ndarray
    idle: np.ndarray
    makespan: float

    @staticmethod
    def from_events(events: List[TraceEvent], nranks: int) -> "TraceSummary":
        compute = np.zeros(nranks)
        comm = np.zeros(nranks)
        idle = np.zeros(nranks)
        makespan = 0.0
        for e in events:
            makespan = max(makespan, e.t_end)
            if e.rank < 0 or e.rank >= nranks:
                continue
            if e.kind in ("compute", "charge"):
                compute[e.rank] += e.duration
            elif e.kind in ("send", "recv", "collective"):
                comm[e.rank] += e.duration
            elif e.kind == "wait":
                idle[e.rank] += e.duration
        return TraceSummary(nranks, compute, comm, idle, makespan)

    @property
    def total_compute(self) -> float:
        return float(self.compute.sum())

    @property
    def total_comm(self) -> float:
        return float(self.comm.sum())

    @property
    def comm_fraction(self) -> float:
        busy = self.total_compute + self.total_comm
        return self.total_comm / busy if busy > 0 else 0.0

    def report(self) -> str:
        lines = [
            f"makespan: {self.makespan:.6f}s  "
            f"(compute {self.total_compute:.6f}s, comm {self.total_comm:.6f}s, "
            f"comm-frac {self.comm_fraction:.1%})"
        ]
        for r in range(self.nranks):
            lines.append(
                f"  rank {r:4d}: compute {self.compute[r]:.6f}s  "
                f"comm {self.comm[r]:.6f}s  idle {self.idle[r]:.6f}s"
            )
        return "\n".join(lines)
