"""Performance model: network costs and calibrated compute rates.

Two ingredients drive all modeled timings:

* **Network:** the classic alpha–beta model.  A point-to-point message of
  ``B`` bytes costs ``alpha + B * beta``; tree-based collectives over ``P``
  ranks cost ``ceil(log2 P)`` such steps.  Machine presets encode the
  paper's clusters (56 Gb/s FDR InfiniBand).
* **Compute:** the per-(vertex, iteration) cost ``c1`` of the DP inner loop
  and the per-byte cost of message packing.  These are *measured* from the
  repository's real vectorized kernels by :class:`KernelCalibration`, as a
  function of the batching factor ``N_2`` — so the paper's Section IV-B
  cache/batching effect (larger ``N_2`` lowers per-iteration cost, with
  diminishing returns) is reproduced from an actual measurement, not
  assumed.  A ``c_scale`` knob maps measured Python-kernel rates onto the
  paper's C rates for figure-scale extrapolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.util.timing import time_call


@dataclass(frozen=True)
class MachineSpec:
    """Per-node hardware description of a (virtual) cluster node.

    ``alpha``/``beta`` describe the inter-node network; ``intra_alpha`` /
    ``intra_beta`` the on-node (shared-memory) path.
    """

    name: str
    cores_per_node: int
    mem_bytes_per_node: int
    alpha: float  # inter-node latency, seconds
    beta: float  # inter-node seconds per byte
    intra_alpha: float  # on-node latency
    intra_beta: float  # on-node seconds per byte
    c_scale: float = 1.0  # measured-kernel seconds -> modeled seconds

    def __post_init__(self) -> None:
        for f in ("alpha", "beta", "intra_alpha", "intra_beta", "c_scale"):
            if getattr(self, f) < 0:
                raise ConfigurationError(f"{f} must be non-negative")
        if self.cores_per_node < 1:
            raise ConfigurationError("cores_per_node must be >= 1")


#: 56 Gb/s FDR InfiniBand ~ 7 GB/s payload bandwidth, ~1.5 us latency.
JULIET_NODE = MachineSpec(
    name="juliet-haswell",
    cores_per_node=36,
    mem_bytes_per_node=128 * 2**30,
    alpha=1.5e-6,
    beta=1.0 / 7.0e9,
    intra_alpha=4.0e-7,
    intra_beta=1.0 / 2.5e10,
    # Our numpy kernels are within a small factor of C on this workload;
    # c_scale maps measured rates to Haswell-core rates for extrapolation.
    c_scale=0.25,
)

SHADOWFAX_NODE = MachineSpec(
    name="shadowfax-haswell",
    cores_per_node=32,
    mem_bytes_per_node=128 * 2**30,
    alpha=1.5e-6,
    beta=1.0 / 7.0e9,
    intra_alpha=4.0e-7,
    intra_beta=1.0 / 2.5e10,
    c_scale=0.25,
)

LAPTOP_NODE = MachineSpec(
    name="laptop",
    cores_per_node=8,
    mem_bytes_per_node=16 * 2**30,
    alpha=5.0e-6,
    beta=1.0 / 2.0e9,
    intra_alpha=1.0e-6,
    intra_beta=1.0 / 1.0e10,
    c_scale=1.0,
)


class CostModel:
    """Network timing for a set of ranks mapped onto cluster nodes."""

    def __init__(self, spec: MachineSpec, rank_node: Optional[np.ndarray] = None) -> None:
        self.spec = spec
        self.rank_node = None if rank_node is None else np.asarray(rank_node, dtype=np.int64)

    def _tier(self, src: int, dst: int):
        if self.rank_node is None:
            return self.spec.alpha, self.spec.beta
        if self.rank_node[src] == self.rank_node[dst]:
            return self.spec.intra_alpha, self.spec.intra_beta
        return self.spec.alpha, self.spec.beta

    def pt2pt(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds for one point-to-point message of ``nbytes``."""
        a, b = self._tier(src, dst)
        return a + nbytes * b

    def send_overhead(self, src: int, dst: int, nbytes: int) -> float:
        """Sender-side occupancy of an eager send (injection cost)."""
        a, b = self._tier(src, dst)
        return a + 0.25 * nbytes * b

    def collective(self, kind: str, nranks: int, nbytes: int) -> float:
        """Seconds for a tree-based collective over ``nranks`` ranks."""
        if nranks <= 1:
            return 0.0
        steps = math.ceil(math.log2(nranks))
        per = self.spec.alpha + nbytes * self.spec.beta
        if kind == "barrier":
            per = self.spec.alpha
        return steps * per


class KernelCalibration:
    """Measured compute rates of the real DP kernels, as a function of N2.

    ``c1(n2)`` is the seconds per (vertex, iteration) of the path-DP inner
    step when iterations are batched ``n2`` wide.  It is measured once on a
    sample graph and interpolated log-linearly between grid points — this is
    where the paper's "increasing N2 reduces compute time via cache
    affinity" effect (their Figures 6–8) enters every modeled runtime.
    """

    DEFAULT_GRID = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    #: bit-slicing pays per-phase pack/unpack overhead that only amortizes
    #: once a full uint64 word of lanes is in flight
    BITSLICE_MIN_N2 = 64

    def __init__(self, grid: Sequence[int], c1_seconds: Sequence[float],
                 pack_bytes_per_s: float = 2.0e9,
                 gf_rates: Optional[Dict[str, Dict[int, float]]] = None) -> None:
        if len(grid) != len(c1_seconds) or len(grid) < 1:
            raise ConfigurationError("calibration grid and rates must align and be non-empty")
        order = np.argsort(grid)
        self.grid = np.asarray(grid, dtype=np.int64)[order]
        self.c1_grid = np.asarray(c1_seconds, dtype=np.float64)[order]
        if np.any(self.c1_grid <= 0):
            raise ConfigurationError("calibrated rates must be positive")
        self.pack_bytes_per_s = float(pack_bytes_per_s)
        # gf_rates[strategy][n2] = measured seconds per DP step for that
        # kernel at that batch width (see measure_gf_kernels); None means
        # choose_kernel falls back to the static heuristic
        if gf_rates is not None:
            for strategy, table in gf_rates.items():
                if strategy not in ("table", "logexp", "bitsliced"):
                    raise ConfigurationError(f"unknown kernel strategy {strategy!r}")
                for n2, sec in table.items():
                    if n2 < 1 or sec <= 0:
                        raise ConfigurationError(
                            f"gf_rates[{strategy!r}][{n2}] must be positive at n2 >= 1"
                        )
        self.gf_rates = gf_rates

    def c1(self, n2: int) -> float:
        """Interpolated seconds per (vertex, iteration) at batch width n2."""
        if n2 < 1:
            raise ConfigurationError(f"n2 must be >= 1, got {n2}")
        lg = np.log2(self.grid.astype(np.float64))
        return float(np.interp(math.log2(n2), lg, self.c1_grid))

    def _gf_rate(self, strategy: str, n2: int) -> Optional[float]:
        table = (self.gf_rates or {}).get(strategy)
        if not table:
            return None
        grid = sorted(table)
        lg = [math.log2(g) for g in grid]
        return float(np.interp(math.log2(n2), lg, [table[g] for g in grid]))

    def choose_kernel(self, m: int, n2: int, plane_resident: bool = True) -> str:
        """Pick the GF(2^m) kernel for a ``(m, n2)`` evaluation window.

        Candidates are ``logexp`` (always), ``table`` (``m <= 8``), and
        ``bitsliced`` — the latter only when the caller can keep the DP
        state *plane-resident* (``plane_resident=True``): per-call
        slice/unslice round-trips cost more than the carry-less multiply
        saves, so round-trip callers must not pick it.  With measured
        ``gf_rates`` the cheapest wins; otherwise a static heuristic:
        bitsliced once a full lane word is in flight
        (``n2 >= BITSLICE_MIN_N2``), else the dense table when elements fit
        a byte, else log/antilog.
        """
        if n2 < 1:
            raise ConfigurationError(f"n2 must be >= 1, got {n2}")
        candidates = ["logexp"]
        if m <= 8:
            candidates.append("table")
        if plane_resident:
            candidates.append("bitsliced")
        measured = {s: r for s in candidates if (r := self._gf_rate(s, n2)) is not None}
        if measured:
            return min(measured, key=measured.get)
        if plane_resident and n2 >= self.BITSLICE_MIN_N2:
            return "bitsliced"
        return "table" if m <= 8 else "logexp"

    @staticmethod
    def measure(sample_nodes: int = 4096, avg_degree: int = 16,
                grid: Sequence[int] = DEFAULT_GRID, k: int = 8,
                min_time: float = 0.02, rng_seed: int = 12345) -> "KernelCalibration":
        """Time the real path-DP kernel at each N2 on a synthetic sample.

        The kernel measured here is byte-for-byte the one
        :mod:`repro.core.evaluator_path` runs: gather neighbour values,
        XOR-segment-reduce, GF-multiply by the level base block.
        """
        from repro.ff.fingerprint import Fingerprint
        from repro.ff.gf2m import default_field_for_k
        from repro.graph.csr import xor_segment_reduce
        from repro.graph.generators import erdos_renyi
        from repro.obs.metrics import get_default_registry
        from repro.util.rng import RngStream

        # measured-kernel runs land in the same process-wide registry as
        # simulated-run driver metrics, so one snapshot covers both
        reg = get_default_registry()
        rep_hist = reg.histogram(
            "midas_calibration_kernel_seconds",
            "Individual calibration reps of the path-DP kernel",
        )
        c1_gauge = reg.gauge(
            "midas_calibration_c1_seconds",
            "Calibrated per-(vertex, iteration) DP cost",
        )

        rng = RngStream(rng_seed, name="calibration")
        g = erdos_renyi(sample_nodes, m=sample_nodes * avg_degree // 2, rng=rng)
        field = default_field_for_k(k)
        fp = Fingerprint.draw(g.n, k, rng, field=field)
        rates = []
        for n2 in grid:
            base = fp.level_base_block(1, 0, int(n2))
            prev = field.random(rng, size=(g.n, int(n2)))

            def step(base=base, prev=prev):
                gathered = prev[g.indices]
                acc = xor_segment_reduce(gathered, g.indptr)
                return field.mul(base, acc)

            step()  # warm caches and numpy dispatch before timing
            # min over independent passes: the standard noise-robust timing
            # estimator (transient machine load only ever inflates a pass)
            observe = rep_hist.labels(n2=int(n2)).observe
            per_call = min(
                time_call(step, min_time=min_time, on_measure=observe)
                for _ in range(3)
            )
            rates.append(per_call / (g.n * int(n2)))
            c1_gauge.labels(n2=int(n2)).set(rates[-1])
        return KernelCalibration(list(grid), rates)

    @staticmethod
    def measure_gf_kernels(m: int = 7, sample_nodes: int = 2048, avg_degree: int = 8,
                           grid: Sequence[int] = (16, 64, 256), k: int = 8,
                           min_time: float = 0.01,
                           rng_seed: int = 12345) -> Dict[str, Dict[int, float]]:
        """Measure per-DP-step seconds of each GF kernel strategy vs N2.

        Returns a ``gf_rates`` mapping for :meth:`choose_kernel`.  The
        table/logexp strategies time the element-wise step (gather,
        segment-reduce, ``field.mul``); ``bitsliced`` times the
        *plane-resident* step the path evaluator actually runs, including
        the per-level plane build but not the per-phase pack (amortized
        over ``k`` levels in real runs).
        """
        from repro.ff.fingerprint import Fingerprint
        from repro.ff.gf2m import GF2m
        from repro.graph.csr import xor_segment_reduce
        from repro.graph.generators import erdos_renyi
        from repro.util.rng import RngStream

        rng = RngStream(rng_seed, name="gf-calibration")
        g = erdos_renyi(sample_nodes, m=sample_nodes * avg_degree // 2, rng=rng)
        strategies = ["logexp", "bitsliced"] + (["table"] if m <= 8 else [])
        rates: Dict[str, Dict[int, float]] = {s: {} for s in strategies}
        for strategy in strategies:
            f = GF2m(m, kernel_strategy=None if strategy == "bitsliced" else strategy)
            fp = Fingerprint.draw(g.n, k, RngStream(rng_seed + 1), field=f)
            for n2 in grid:
                n2 = int(n2)
                if strategy == "bitsliced":
                    bs = f.bitsliced
                    w = bs.words(n2)
                    iw = bs.pack_indicator(fp.base_block(0, n2))
                    prev = bs.slice(f.random(rng, size=(g.n, n2)))

                    def step(iw=iw, prev=prev, bs=bs, w=w):
                        acc = xor_segment_reduce(
                            prev[g.indices].reshape(len(g.indices), bs.m * w), g.indptr
                        ).reshape(g.n, bs.m, w)
                        return bs.mul(bs.planes_from_words(iw, fp.y[:, 1]), acc)

                else:
                    base = fp.level_base_block(1, 0, n2)
                    prev = f.random(rng, size=(g.n, n2))

                    def step(base=base, prev=prev, f=f):
                        gathered = prev[g.indices]
                        acc = xor_segment_reduce(gathered, g.indptr)
                        return f.mul(base, acc)

                step()  # warm caches and numpy dispatch before timing
                rates[strategy][n2] = min(
                    time_call(step, min_time=min_time) for _ in range(3)
                )
        return rates

    @staticmethod
    def synthetic(c1_inf: float = 2.0e-9, dispatch_overhead: float = 1.2e-7,
                  grid: Sequence[int] = DEFAULT_GRID) -> "KernelCalibration":
        """A deterministic stand-in calibration (for tests / CI stability).

        Shape: ``c1(n2) = c1_inf + overhead / n2`` — per-iteration cost
        falls toward an asymptote as batching amortizes fixed per-step cost,
        the same qualitative curve the measured calibration produces.
        """
        rates = [c1_inf + dispatch_overhead / n2 for n2 in grid]
        return KernelCalibration(list(grid), rates)

    def as_table(self) -> Dict[int, float]:
        return {int(n2): float(c) for n2, c in zip(self.grid, self.c1_grid)}
