"""Durable checkpoints, crash recovery, and the wall-clock watchdog.

The paper's strong-scaling runs execute on over a thousand cores for
hours — a regime where a SIGKILL, OOM, or host reboot is routine.  This
module makes the :class:`~repro.core.engine.DetectionEngine` survive
them:

* an **envelope** format (:func:`write_envelope` / :func:`read_envelope`)
  — a one-line versioned header carrying a CRC32 and byte length over a
  JSON payload, committed via write-to-temp + ``fsync`` + atomic rename
  (+ directory ``fsync``), so a kill at any instant leaves either the
  previous or the new checkpoint intact, never a torn one;
* a :class:`CheckpointManager` — the engine's round-boundary sink: it
  accumulates per-stage accumulator values and virtual times, the
  fault-injector budget state, the replay digest log, and the live
  RunStatus snapshot, and persists them every ``checkpoint_every``
  rounds.  On resume it hands the state back so the engine restores
  accumulators, re-advances the round-scoped RNG stream (children are
  spawn-order-derived, so re-requesting ``round0..roundN`` reproduces
  the stream position exactly), and continues — **bit-identical** to an
  uninterrupted run;
* a :class:`Watchdog` — a monitor thread plus cooperative ``check()``
  points that turn an exhausted wall-clock ``deadline`` or a stalled
  heartbeat (``hang_timeout``) into a typed
  :class:`~repro.errors.WatchdogExpired`, which the engine converts
  into a checkpointed, *degraded* partial result annotated with the
  live ``0.8^rounds`` failure bound instead of a silent death.

Corrupt checkpoints (truncation, bit flips, wrong version) are rejected
with :class:`~repro.errors.CheckpointCorruptError` naming the file and
the failed check; resume falls back to restart-from-scratch only when
``allow_restart`` is set.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.errors import CheckpointCorruptError, ConfigurationError, WatchdogExpired
from repro.util.log import get_logger

_LOG = get_logger(__name__)

#: envelope magic + format version; bump on incompatible payload changes
CHECKPOINT_MAGIC = "MIDAS-CKPT"
CHECKPOINT_VERSION = 1

#: file names inside a checkpoint directory
CHECKPOINT_FILE = "checkpoint.ckpt"
RUN_CONFIG_FILE = "run.json"

PathLike = Union[str, Path]


# --------------------------------------------------------------- envelope
def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # non-POSIX or unreadable dir: rename alone must do
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_envelope(path: PathLike, payload: dict) -> None:
    """Atomically persist ``payload`` as a CRC-protected checkpoint.

    Layout: one ASCII header line ``MIDAS-CKPT v<N> crc=<8hex>
    len=<bytes>`` followed by the JSON body.  The file is written to a
    temp name in the same directory, flushed and fsynced, then renamed
    over ``path`` — the only durable transition is the atomic rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    header = (f"{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION} "
              f"crc={zlib.crc32(body):08x} len={len(body)}\n").encode("ascii")
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, header + body)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(str(tmp), str(path))
    _fsync_dir(path.parent)


def read_envelope(path: PathLike) -> dict:
    """Load and validate a checkpoint written by :func:`write_envelope`.

    Raises :class:`~repro.errors.CheckpointCorruptError` naming the file
    and the failed check: ``header`` (unparseable first line),
    ``version`` (unknown format version), ``truncated`` (body shorter
    than the declared length), or ``crc`` (bit rot / torn write).
    """
    path = Path(path)
    raw = path.read_bytes()
    nl = raw.find(b"\n")
    if nl < 0:
        raise CheckpointCorruptError(path, "header", "no header line")
    header, body = raw[:nl].decode("ascii", "replace"), raw[nl + 1:]
    parts = header.split()
    if len(parts) != 4 or parts[0] != CHECKPOINT_MAGIC:
        raise CheckpointCorruptError(path, "header", f"bad header {header!r}")
    if parts[1] != f"v{CHECKPOINT_VERSION}":
        raise CheckpointCorruptError(
            path, "version",
            f"format {parts[1]} (this build reads v{CHECKPOINT_VERSION})",
        )
    try:
        crc = int(parts[2].removeprefix("crc="), 16)
        length = int(parts[3].removeprefix("len="))
    except ValueError:
        raise CheckpointCorruptError(path, "header", f"bad header {header!r}") from None
    if len(body) < length:
        raise CheckpointCorruptError(
            path, "truncated", f"body has {len(body)} of {length} bytes"
        )
    body = body[:length]
    if zlib.crc32(body) != crc:
        raise CheckpointCorruptError(
            path, "crc", f"expected {crc:08x}, got {zlib.crc32(body):08x}"
        )
    try:
        return json.loads(body.decode("utf-8"))
    except ValueError as exc:  # CRC passed but JSON broken: impossible bar bugs
        raise CheckpointCorruptError(path, "payload", str(exc)) from exc


# --------------------------------------------------------- value encoding
def encode_value(value: Any) -> Any:
    """JSON-encode a round accumulator: GF scalar (int) or weight-axis
    numpy vector.  Ints round-trip exactly; vectors are stored as plain
    int lists and re-materialized with the spec's field dtype."""
    if isinstance(value, np.ndarray):
        return [int(x) for x in value.tolist()]
    return int(value)


def decode_value(encoded: Any, spec) -> Any:
    """Inverse of :func:`encode_value` for ``spec``'s accumulator type."""
    if isinstance(encoded, list):
        return np.asarray(encoded, dtype=spec.field.dtype)
    return int(encoded)


# ------------------------------------------------------------- run config
def write_run_config(directory: PathLike, config: dict) -> None:
    """Persist the CLI argument namespace that started a run (atomic),
    so ``repro resume <dir>`` can reconstruct the exact invocation."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / RUN_CONFIG_FILE
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(config, indent=2, sort_keys=True) + "\n")
    os.replace(str(tmp), str(path))
    _fsync_dir(directory)


def load_run_config(directory: PathLike) -> dict:
    """Read back the config written by :func:`write_run_config`."""
    path = Path(directory) / RUN_CONFIG_FILE
    if not path.exists():
        raise ConfigurationError(
            f"{path} not found — was the run started with --checkpoint-dir?"
        )
    try:
        cfg = json.loads(path.read_text())
    except ValueError as exc:
        raise ConfigurationError(f"{path}: invalid run config: {exc}") from exc
    if not isinstance(cfg, dict):
        raise ConfigurationError(f"{path}: run config must be a JSON object")
    return cfg


# ------------------------------------------------------------- checkpoint
class CheckpointManager:
    """Round-boundary durable state for every engine sharing a runtime.

    State layout (all JSON)::

        {"config_hash": "...",
         "engines": {"e0:k-path": {
             "fault": {"remaining": [[idx, n|null], ...],
                       "counts": {...}, "accounting": {...}},
             "stages": {"s0:": {"values": [...], "virtuals": [...],
                                "hit": false, "complete": false}}}},
         "digests": {"phases": [[label, r, b, p, crc], ...],
                     "rounds": [[label, r, crc], ...]},
         "status": {...last live RunStatus snapshot...}}

    Engines and stages key by *creation order* plus label; drivers
    construct them deterministically, so a resumed process consumes the
    same keys in the same order and every stage finds its own state.
    """

    def __init__(self, directory: PathLike, every: int = 1,
                 resume: bool = False, allow_restart: bool = False,
                 config_hash: str = "") -> None:
        if every < 1:
            raise ConfigurationError(f"checkpoint_every must be >= 1, got {every}")
        self.dir = Path(directory)
        self.path = self.dir / CHECKPOINT_FILE
        self.every = int(every)
        self.config_hash = config_hash
        self.resumed_from: Optional[str] = None
        self.state: dict = {"config_hash": config_hash, "engines": {},
                            "digests": None, "status": None}
        self._engines: Dict[str, Any] = {}  # ekey -> live engine (save sources)
        self._stage_seq: Dict[str, int] = {}
        self._digests_restored = False
        self._rounds_since_save = 0
        self._lock = threading.Lock()
        if resume and self.path.exists():
            try:
                payload = read_envelope(self.path)
            except CheckpointCorruptError:
                if not allow_restart:
                    raise
                _LOG.warning("discarding corrupt checkpoint %s (allow_restart)",
                             self.path)
            else:
                stored = payload.get("config_hash", "")
                if config_hash and stored and stored != config_hash:
                    raise ConfigurationError(
                        f"{self.path}: checkpoint was written by a different "
                        f"configuration (hash {stored} != {config_hash})"
                    )
                payload.setdefault("engines", {})
                self.state = payload
                self.resumed_from = str(self.dir)
                _LOG.info("resuming from checkpoint %s", self.path)

    # -------------------------------------------------------- registration
    def attach_engine(self, engine) -> str:
        """Register an engine (creation order) and return its state key."""
        with self._lock:
            key = f"e{len(self._engines)}:{engine.problem}"
            self._engines[key] = engine
            self.state["engines"].setdefault(key, {"fault": None, "stages": {}})
        return key

    def stage_key(self, ekey: str, label: str) -> str:
        """The next stage key for ``ekey`` (per-engine creation order)."""
        with self._lock:
            n = self._stage_seq.get(ekey, 0)
            self._stage_seq[ekey] = n + 1
        return f"s{n}:{label}"

    # ------------------------------------------------------------- restore
    def restored_stage(self, ekey: str, skey: str) -> Optional[dict]:
        """The checkpointed state of one stage, or None on a fresh run."""
        if self.resumed_from is None:
            return None
        return self.state["engines"].get(ekey, {}).get("stages", {}).get(skey)

    def restore_into(self, engine) -> None:
        """Reload fault-injector budgets/accounting and the digest log."""
        if self.resumed_from is None:
            return
        est = self.state["engines"].get(engine.ekey, {})
        fs = est.get("fault")
        fc = engine.fc
        if fs and fc is not None and fc.injector is not None:
            fc.injector._remaining = {
                int(i): (None if r is None else int(r))
                for i, r in fs.get("remaining", [])
            }
            fc.injector.total_counts = {
                str(k): int(v) for k, v in fs.get("counts", {}).items()
            }
            acct = fs.get("accounting", {})
            fc.phase_failures = int(acct.get("phase_failures", 0))
            fc.retries = int(acct.get("retries", 0))
            fc.work_lost = float(acct.get("work_lost", 0.0))
            fc.backoff_seconds = float(acct.get("backoff_seconds", 0.0))
            fc.work_recomputed = float(acct.get("work_recomputed", 0.0))
            fc.injected = {str(k): int(v)
                           for k, v in acct.get("injected", {}).items()}
        dg = self.state.get("digests")
        if dg and engine.digests is not None and not self._digests_restored:
            self._digests_restored = True
            for label, r, b, p, crc in dg.get("phases", []):
                engine.digests.record_phase(label, int(r), int(b), int(p), int(crc))
            for label, r, crc in dg.get("rounds", []):
                engine.digests.record_round(label, int(r), int(crc))

    # ---------------------------------------------------------------- save
    def note_round(self, ekey: str, skey: str, value, virtual: float,
                   hit: bool, complete: bool) -> None:
        """Record one completed round; persists every ``every`` rounds and
        always at a stage boundary (hit or planned-rounds exhausted)."""
        with self._lock:
            stages = self.state["engines"][ekey]["stages"]
            st = stages.setdefault(skey, {"values": [], "virtuals": [],
                                          "hit": False, "complete": False})
            st["values"].append(encode_value(value))
            st["virtuals"].append(float(virtual))
            st["hit"] = bool(st["hit"] or hit)
            st["complete"] = bool(complete)
            self._rounds_since_save += 1
            due = complete or self._rounds_since_save >= self.every
        if due:
            self.save()

    def save(self, force: bool = True) -> None:
        """Snapshot volatile sources (fault budgets, digests, live status)
        into the state and commit it atomically."""
        with self._lock:
            for ekey, engine in self._engines.items():
                fc = getattr(engine, "fc", None)
                if fc is not None and fc.injector is not None:
                    self.state["engines"][ekey]["fault"] = {
                        "remaining": [
                            [i, rem] for i, rem in sorted(
                                fc.injector._remaining.items())
                        ],
                        "counts": dict(fc.injector.total_counts),
                        "accounting": {
                            "phase_failures": fc.phase_failures,
                            "retries": fc.retries,
                            "work_lost": fc.work_lost,
                            "backoff_seconds": fc.backoff_seconds,
                            "work_recomputed": fc.work_recomputed,
                            "injected": dict(fc.injected),
                        },
                    }
                digests = getattr(engine, "digests", None)
                if digests is not None:
                    self.state["digests"] = {
                        "phases": [
                            [label, r, b, p, crc]
                            for (label, r, b, p), crc in sorted(digests.phases.items())
                        ],
                        "rounds": [
                            [label, r, crc]
                            for (label, r), crc in sorted(digests.rounds.items())
                        ],
                    }
                live = getattr(engine, "live", None)
                if live is not None:
                    self.state["status"] = live.status.snapshot()
            self.state["config_hash"] = self.config_hash
            write_envelope(self.path, self.state)
            self._rounds_since_save = 0


# --------------------------------------------------------------- watchdog
class Watchdog:
    """Wall-clock deadline and stalled-heartbeat detection.

    Cooperative: the engine calls :meth:`beat` whenever the run makes
    progress (simulator heartbeats, completed phases) and :meth:`check`
    at safe interruption points (round boundaries, heartbeats);
    ``check`` raises :class:`~repro.errors.WatchdogExpired` once the
    ``deadline`` (seconds since :meth:`start`) is exhausted or no beat
    arrived within ``hang_timeout`` seconds.  A daemon monitor thread
    also evaluates the conditions in the background so a hard-hung run
    still gets its ``on_trip`` callback (checkpoint flush) — the raise
    itself always happens at a cooperative point.
    """

    def __init__(self, deadline: Optional[float] = None,
                 hang_timeout: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 poll_interval: Optional[float] = None) -> None:
        if deadline is not None and deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ConfigurationError(f"hang_timeout must be > 0, got {hang_timeout}")
        self.deadline = deadline
        self.hang_timeout = hang_timeout
        self._clock = clock
        self._poll = poll_interval
        self._lock = threading.Lock()
        self._started: Optional[float] = None
        self._last_beat: Optional[float] = None
        self._tripped: Optional[tuple] = None  # (reason, detail)
        self._on_trip: Optional[Callable[[], None]] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def armed(self) -> bool:
        return self.deadline is not None or self.hang_timeout is not None

    @property
    def tripped(self) -> Optional[tuple]:
        """The ``(reason, detail)`` pair once expired, else None."""
        with self._lock:
            return self._tripped

    def start(self, on_trip: Optional[Callable[[], None]] = None,
              monitor: bool = True) -> "Watchdog":
        """Arm the watchdog (idempotent).  ``on_trip`` runs at most once,
        from the monitor thread, when a trip is first detected there."""
        with self._lock:
            if on_trip is not None:
                self._on_trip = on_trip
            if self._started is not None:
                return self
            self._started = self._clock()
            self._last_beat = self._started
        if monitor and self.armed and self._thread is None:
            waits = [t for t in (self.deadline, self.hang_timeout) if t is not None]
            poll = self._poll if self._poll is not None else max(
                0.05, min(min(waits) / 4.0, 1.0))
            self._thread = threading.Thread(
                target=self._monitor, args=(poll,),
                name="midas-watchdog", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Disarm the monitor thread (the cooperative checks stay live)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def beat(self) -> None:
        """Record progress; resets the ``hang_timeout`` clock."""
        with self._lock:
            self._last_beat = self._clock()

    def _evaluate_locked(self) -> Optional[tuple]:
        if self._started is None:
            return None
        now = self._clock()
        if self.deadline is not None and now - self._started > self.deadline:
            return ("deadline",
                    f"wall-clock deadline of {self.deadline:g}s exhausted "
                    f"after {now - self._started:.3g}s")
        if self.hang_timeout is not None and self._last_beat is not None \
                and now - self._last_beat > self.hang_timeout:
            return ("stall",
                    f"no heartbeat for {now - self._last_beat:.3g}s "
                    f"(hang_timeout {self.hang_timeout:g}s)")
        return None

    def check(self) -> None:
        """Raise :class:`~repro.errors.WatchdogExpired` if expired."""
        with self._lock:
            trip = self._tripped or self._evaluate_locked()
            self._tripped = trip
        if trip is not None:
            raise WatchdogExpired(trip[1], reason=trip[0])

    def _monitor(self, poll: float) -> None:
        while not self._stop.wait(poll):
            with self._lock:
                trip = self._tripped or self._evaluate_locked()
                first = trip is not None and self._tripped is None
                self._tripped = trip
                cb = self._on_trip
            if trip is not None:
                if first and cb is not None:
                    try:
                        cb()
                    except Exception:  # a failing flush must not kill the thread
                        _LOG.exception("watchdog on_trip callback failed")
                _LOG.warning("watchdog tripped (%s): %s", trip[0], trip[1])
                return


__all__ = [
    "CHECKPOINT_FILE",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "RUN_CONFIG_FILE",
    "CheckpointManager",
    "Watchdog",
    "decode_value",
    "encode_value",
    "load_run_config",
    "read_envelope",
    "write_envelope",
    "write_run_config",
]
