"""Communication operations for simulated rank programs.

A *rank program* is a generator: between yields it runs real (numpy)
computation; each yield hands the scheduler one of the ops below.  This is
the buffer-discipline subset of MPI the MIDAS algorithms need — eager
point-to-point sends plus the collectives of Algorithm 2 (barrier, reduce).

Payload sizes are accounted explicitly: ``nbytes=None`` lets the op infer
the size from numpy arrays (``arr.nbytes``), matching the guide's advice to
communicate buffers, not pickles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Union

import numpy as np

ReduceOp = Union[str, Callable[[Any, Any], Any]]


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload (numpy arrays are exact)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return 64  # opaque object: charge a token amount


@dataclass
class Op:
    """Base class for yielded operations."""


@dataclass
class Send(Op):
    """Eager (buffered) point-to-point send; does not block the sender."""

    dst: int
    tag: Hashable
    payload: Any
    nbytes: Optional[int] = None
    copy: bool = True

    def wire_bytes(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.payload)


@dataclass
class Recv(Op):
    """Blocking receive of a message with matching (src, tag).

    ``timeout`` (virtual seconds, ``None`` = wait forever) lets a program
    detect message loss instead of deadlocking: when no matching message
    can arrive by ``clock + timeout``, the scheduler raises
    :class:`~repro.errors.TimeoutExpired` *into* the program at this
    yield point — catch it to take a recovery path.
    """

    src: int
    tag: Hashable
    timeout: Optional[float] = None


@dataclass(frozen=True)
class RecvRequest:
    """Handle returned by :class:`Irecv`; redeem with :class:`Wait`."""

    src: int
    tag: Hashable


@dataclass
class Irecv(Op):
    """Post a nonblocking receive; yields a :class:`RecvRequest` immediately.

    The request is redeemed later with :class:`Wait` — the MPI
    ``MPI_Irecv``/``MPI_Wait`` pattern that lets a rank compute while a
    message is in flight (communication/computation overlap).  In the
    simulator, posting costs nothing; the payoff is that the rank's clock
    advances with its compute *before* the wait, so an early-arriving
    message is free.
    """

    src: int
    tag: Hashable


@dataclass
class Wait(Op):
    """Complete a posted :class:`Irecv`; blocks until the message arrives.

    ``timeout`` behaves exactly like :class:`Recv`'s: virtual seconds
    after which :class:`~repro.errors.TimeoutExpired` is thrown into the
    program instead of waiting forever.
    """

    request: RecvRequest
    timeout: Optional[float] = None


@dataclass
class Barrier(Op):
    """Synchronize all ranks (MPIBARRIER in Algorithms 2-5)."""


@dataclass
class AllReduce(Op):
    """Combine a value across all ranks; everyone gets the result.

    ``op`` is ``"xor"`` (GF(2^m) sum — the one MIDAS uses), ``"sum"``,
    ``"max"``, ``"min"``, or a binary callable.
    """

    value: Any
    op: ReduceOp = "xor"
    nbytes: Optional[int] = None

    def wire_bytes(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.value)


@dataclass
class Reduce(Op):
    """Combine a value across all ranks onto ``root`` (others get None)."""

    value: Any
    op: ReduceOp = "xor"
    root: int = 0
    nbytes: Optional[int] = None

    def wire_bytes(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.value)


@dataclass
class Bcast(Op):
    """Broadcast ``value`` from ``root`` to everyone (value ignored elsewhere)."""

    value: Any = None
    root: int = 0
    nbytes: Optional[int] = None

    def wire_bytes(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.value)


@dataclass
class Gather(Op):
    """Gather one value per rank to ``root`` (list in rank order; None elsewhere)."""

    value: Any
    root: int = 0
    nbytes: Optional[int] = None

    def wire_bytes(self) -> int:
        return self.nbytes if self.nbytes is not None else payload_nbytes(self.value)


@dataclass
class Charge(Op):
    """Add modeled compute seconds to this rank's virtual clock.

    Used when a program wants model-driven rather than measured timing for a
    compute segment (e.g. replaying a paper-scale workload on a small host).
    """

    seconds: float


_BUILTIN_REDUCERS = {
    "xor": lambda a, b: np.bitwise_xor(a, b) if isinstance(a, np.ndarray) else (a ^ b),
    "sum": lambda a, b: a + b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
}


def resolve_reducer(op: ReduceOp) -> Callable[[Any, Any], Any]:
    """Resolve a reduce op spec to a binary callable."""
    if callable(op):
        return op
    if op in _BUILTIN_REDUCERS:
        return _BUILTIN_REDUCERS[op]
    raise ValueError(f"unknown reduce op {op!r}; use one of {sorted(_BUILTIN_REDUCERS)}")
