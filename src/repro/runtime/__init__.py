"""Simulated SPMD (MPI-like) runtime substrate.

The paper runs MIDAS as a C/MPI program on two Haswell clusters.  This
subpackage substitutes an in-process simulator:

* :mod:`repro.runtime.scheduler` executes ``N`` *rank programs* (Python
  generators yielding communication ops) with deterministic round-robin
  scheduling, real message delivery, and per-rank virtual clocks —
  detection results are produced by actually running the SPMD decomposition.
* :mod:`repro.runtime.costmodel` supplies alpha–beta communication costs and
  *measured* compute rates (calibrated from the real vectorized kernels), so
  virtual time reproduces the shape of the paper's scaling curves.
* :mod:`repro.runtime.cluster` describes virtual machines (Juliet,
  Shadowfax) with intra-/inter-node network tiers.
* :mod:`repro.runtime.tracing` records timelines for the reports.
* :mod:`repro.runtime.faults` injects deterministic, seeded faults
  (rank crashes, message drops/duplicates/delays, transient send
  failures, stragglers) for fault-tolerance testing.
* :mod:`repro.runtime.durable` persists crash-consistent checkpoints at
  round boundaries (CRC-protected, atomically renamed) so a SIGKILLed
  run resumes bit-identically, and arms a wall-clock watchdog that
  degrades gracefully instead of dying silently.
"""

from repro.runtime.comm import (
    AllReduce,
    Barrier,
    Bcast,
    Charge,
    Gather,
    Irecv,
    Recv,
    Reduce,
    Send,
    Wait,
)
from repro.runtime.cluster import VirtualCluster, juliet, shadowfax, laptop
from repro.runtime.costmodel import CostModel, KernelCalibration, MachineSpec
from repro.runtime.durable import (
    CheckpointManager,
    Watchdog,
    load_run_config,
    read_envelope,
    write_envelope,
    write_run_config,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    backoff_jitter,
    load_fault_plan,
)
from repro.runtime.scheduler import RankContext, SimResult, Simulator
from repro.runtime.tracing import Scope, TraceEvent, TraceRecorder, TraceSummary

__all__ = [
    "AllReduce",
    "Barrier",
    "Bcast",
    "Charge",
    "Gather",
    "Irecv",
    "Recv",
    "Reduce",
    "Send",
    "Wait",
    "CheckpointManager",
    "Watchdog",
    "load_run_config",
    "read_envelope",
    "write_envelope",
    "write_run_config",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "backoff_jitter",
    "load_fault_plan",
    "VirtualCluster",
    "juliet",
    "shadowfax",
    "laptop",
    "CostModel",
    "KernelCalibration",
    "MachineSpec",
    "RankContext",
    "SimResult",
    "Simulator",
    "Scope",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
]
