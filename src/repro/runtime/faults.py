"""Deterministic fault injection for the simulated MPI substrate.

The paper's clusters (Juliet: 32x36, Shadowfax: 32x32 cores) are real
machines where ranks die, links drop packets, and nodes straggle.  This
module lets the simulator reproduce those anomalies *deterministically*:
a :class:`FaultPlan` is a seeded description of what goes wrong, a
:class:`FaultInjector` turns it into per-run decisions, and the
:class:`~repro.runtime.scheduler.Simulator` consults the injector at
every decision point (rank op boundaries, message sends, compute
charging).  The same plan + seed always yields the same transcript, so
fault scenarios are as reproducible as fault-free runs — the property
the driver's retry logic and the chaos CI job both rely on.

Fault kinds
-----------

``crash``
    Kill a rank at a virtual time or after its n-th yielded op.  Dead
    ranks stop executing; collectives and receives involving them raise
    :class:`~repro.errors.RankFailedError` instead of hanging.
``drop`` / ``duplicate`` / ``delay``
    Per-message delivery faults on matching ``(src, dst, tag)`` edges,
    fired with probability ``p`` from the injector's seeded stream.
``send_fail``
    Transient injection failure: the sending program receives a
    :class:`~repro.errors.SendFailedError` at the yield point and may
    retry the ``Send``.
``straggler``
    Degrade a rank's (or a whole node's) compute rate by ``factor`` —
    the per-node ``c_scale`` degradation of a thermally throttled or
    oversubscribed machine.

Budgets and retries
-------------------

Every spec carries ``max_events`` (``None`` = unlimited).  Budgets are
tracked on the :class:`FaultInjector`, *shared across runs*: a crash
with ``max_events=1`` fires in the first attempt of a phase and is
spent, so the driver's re-execution succeeds — the mechanism behind the
"any recoverable plan converges to the fault-free answer" guarantee.
Each run gets an independent seeded RNG stream derived from
``(plan.seed, run key)``, so probabilistic faults differ across
attempts while remaining reproducible end to end.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

FAULT_KINDS = ("crash", "drop", "duplicate", "delay", "send_fail", "straggler")


@dataclass(frozen=True)
class FaultSpec:
    """One fault in a plan.  Fields are interpreted per ``kind``:

    * ``crash``: ``rank`` (required), ``at_time`` (virtual seconds) or
      ``after_ops`` (op count; default 0 = before the first op).
    * ``drop``/``duplicate``/``delay``/``send_fail``: ``src``/``dst``/
      ``tag`` select matching messages (``None`` = any), ``p`` the
      per-message firing probability, ``delay`` the extra seconds for
      the ``delay`` kind.
    * ``straggler``: ``rank`` or ``node`` (resolved against the cost
      model's placement) and ``factor`` >= 1 multiplying compute time.

    ``max_events`` bounds how many times the spec may fire across *all*
    runs sharing a :class:`FaultInjector` (``None`` = unlimited, except
    for the fatal/lossy kinds ``crash``/``drop``/``send_fail``, which
    default to 1 so a driver retry runs clean — pass a large explicit
    budget to model a persistent fault).
    """

    kind: str
    rank: Optional[int] = None
    node: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[Hashable] = None
    p: float = 1.0
    at_time: Optional[float] = None
    after_ops: Optional[int] = None
    delay: float = 0.0
    factor: float = 1.0
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; use one of {FAULT_KINDS}"
            )
        if not (0.0 <= self.p <= 1.0):
            raise ConfigurationError(f"fault probability must be in [0, 1], got {self.p}")
        if self.kind == "crash":
            if self.rank is None:
                raise ConfigurationError("crash fault needs a rank")
            if self.at_time is None and self.after_ops is None:
                object.__setattr__(self, "after_ops", 0)
        if self.kind == "straggler":
            if self.rank is None and self.node is None:
                raise ConfigurationError("straggler fault needs a rank or a node")
            if self.factor < 1.0:
                raise ConfigurationError(
                    f"straggler factor must be >= 1, got {self.factor}"
                )
        if self.kind == "delay" and self.delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {self.delay}")
        if self.max_events is not None and self.max_events < 0:
            raise ConfigurationError(f"max_events must be >= 0, got {self.max_events}")
        if self.max_events is None and self.kind in ("crash", "drop", "send_fail"):
            # fatal/lossy faults are once-only unless told otherwise, so
            # plans loaded from JSON stay recoverable by default
            object.__setattr__(self, "max_events", 1)

    def matches_message(self, src: int, dst: int, tag: Hashable) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.tag is None or self.tag == tag)
        )

    def to_dict(self) -> dict:
        d: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if f.name == "kind":
                continue
            v = getattr(self, f.name)
            if v != f.default:
                d[f.name] = v
        return d

    @staticmethod
    def from_dict(d: dict) -> "FaultSpec":
        known = {f.name for f in fields(FaultSpec)}
        extra = set(d) - known
        if extra:
            raise ConfigurationError(f"unknown fault spec fields: {sorted(extra)}")
        if "kind" not in d:
            raise ConfigurationError(f"fault spec needs a 'kind': {d}")
        return FaultSpec(**d)


# Convenience constructors — the names the tests and docs use.
def crash(rank: int, at_time: Optional[float] = None,
          after_ops: Optional[int] = None, max_events: Optional[int] = 1) -> FaultSpec:
    """Kill ``rank`` at a virtual time or after its n-th yielded op.

    Defaults to ``max_events=1``: the crash fires once across the
    injector's lifetime, so a driver retry of the affected phase runs
    clean — the recoverable-crash scenario.
    """
    return FaultSpec("crash", rank=rank, at_time=at_time, after_ops=after_ops,
                     max_events=max_events)


def drop(src: Optional[int] = None, dst: Optional[int] = None,
         tag: Optional[Hashable] = None, p: float = 1.0,
         max_events: Optional[int] = 1) -> FaultSpec:
    """Drop matching messages (never delivered)."""
    return FaultSpec("drop", src=src, dst=dst, tag=tag, p=p, max_events=max_events)


def duplicate(src: Optional[int] = None, dst: Optional[int] = None,
              tag: Optional[Hashable] = None, p: float = 1.0,
              max_events: Optional[int] = None) -> FaultSpec:
    """Deliver matching messages twice (the MPI-impossible network bug)."""
    return FaultSpec("duplicate", src=src, dst=dst, tag=tag, p=p,
                     max_events=max_events)


def delay(extra: float, src: Optional[int] = None, dst: Optional[int] = None,
          tag: Optional[Hashable] = None, p: float = 1.0,
          max_events: Optional[int] = None) -> FaultSpec:
    """Add ``extra`` virtual seconds to matching messages' arrival."""
    return FaultSpec("delay", src=src, dst=dst, tag=tag, p=p, delay=extra,
                     max_events=max_events)


def send_fail(src: Optional[int] = None, dst: Optional[int] = None,
              tag: Optional[Hashable] = None, p: float = 1.0,
              max_events: Optional[int] = 1) -> FaultSpec:
    """Fail matching Sends transiently (SendFailedError into the program)."""
    return FaultSpec("send_fail", src=src, dst=dst, tag=tag, p=p,
                     max_events=max_events)


def straggler(rank: Optional[int] = None, node: Optional[int] = None,
              factor: float = 2.0) -> FaultSpec:
    """Slow a rank's (or node's) compute by ``factor``."""
    return FaultSpec("straggler", rank=rank, node=node, factor=factor)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of faults to inject into simulated runs."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))
        for s in self.specs:
            if not isinstance(s, FaultSpec):
                raise ConfigurationError(f"FaultPlan takes FaultSpecs, got {s!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]}

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @staticmethod
    def from_dict(d: dict) -> "FaultPlan":
        if not isinstance(d, dict):
            raise ConfigurationError(f"fault plan must be a JSON object, got {type(d).__name__}")
        extra = set(d) - {"seed", "faults"}
        if extra:
            raise ConfigurationError(f"unknown fault plan fields: {sorted(extra)}")
        return FaultPlan(
            specs=[FaultSpec.from_dict(s) for s in d.get("faults", [])],
            seed=int(d.get("seed", 0)),
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            return FaultPlan.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault plan JSON: {exc}") from exc


def load_fault_plan(source: Union[str, Path, dict, "FaultPlan", None]) -> Optional[FaultPlan]:
    """Coerce a CLI-ish fault plan source into a :class:`FaultPlan`.

    Accepts an existing plan, a dict, an inline JSON string (first
    non-space char ``{``), or a path to a JSON file.  ``None``/empty
    returns ``None``.
    """
    if source is None:
        return None
    if isinstance(source, FaultPlan):
        return source
    if isinstance(source, dict):
        return FaultPlan.from_dict(source)
    text = str(source).strip()
    if not text:
        return None
    if text.startswith("{"):
        return FaultPlan.from_json(text)
    path = Path(text)
    if not path.exists():
        raise ConfigurationError(f"fault plan file not found: {path}")
    return FaultPlan.from_json(path.read_text())


def backoff_jitter(seed: int, key: str, attempt: int) -> float:
    """Seeded retry-backoff jitter in ``[0, 1)``.

    The driver scales its exponential backoff by ``1 + u`` with ``u``
    drawn here, keyed by ``(plan seed, phase key, attempt)`` — the same
    derivation :class:`RunInjector` uses for per-run fault streams.  Two
    phases (or two ranks retrying the same plan in different processes)
    get different jitter, so retries never synchronize; the same phase
    retried in a replayed or crash-resumed run draws the identical
    value, so virtual time stays bit-deterministic.
    """
    digest = zlib.crc32(f"{key}/backoff{attempt}".encode("utf-8"))
    rng = np.random.default_rng(
        np.random.SeedSequence([seed & 0xFFFFFFFF, digest])
    )
    return float(rng.random())


@dataclass
class SendVerdict:
    """The injector's decision for one message send."""

    deliver: bool = True
    copies: int = 1  # delivered copies when deliver (2 = duplicated)
    extra_delay: float = 0.0
    fail: bool = False  # transient SendFailedError into the sender


class RunInjector:
    """Per-simulator-run view of a plan: the object the scheduler asks.

    Created by :meth:`FaultInjector.for_run`; holds a seeded RNG derived
    from ``(plan.seed, run key)`` and shares trigger budgets with its
    parent injector.  All queries are made in the scheduler's
    deterministic order, so decisions are reproducible.
    """

    def __init__(self, parent: "FaultInjector", key: str) -> None:
        self._parent = parent
        self.key = key
        digest = zlib.crc32(key.encode("utf-8"))
        self._rng = np.random.default_rng(
            np.random.SeedSequence([parent.plan.seed & 0xFFFFFFFF, digest])
        )
        self.counts: Dict[str, int] = {}
        self.dropped: List[Tuple[int, int, Hashable]] = []

    # ------------------------------------------------------------- helpers
    def _fire(self, idx: int, spec: FaultSpec) -> bool:
        """Seeded coin flip + shared budget check; counts the event."""
        if not self._parent._budget_ok(idx):
            return False
        if spec.p < 1.0 and float(self._rng.random()) >= spec.p:
            return False
        self._parent._consume(idx)
        self.counts[spec.kind] = self.counts.get(spec.kind, 0) + 1
        return True

    # ------------------------------------------------------------- queries
    def crash_for(self, rank: int) -> Optional[FaultSpec]:
        """The pending crash spec for ``rank`` (budget not yet consumed)."""
        for idx, spec in enumerate(self._parent.plan.specs):
            if spec.kind == "crash" and spec.rank == rank and self._parent._budget_ok(idx):
                return spec
        return None

    def consume_crash(self, rank: int) -> bool:
        """Consume the crash budget for ``rank``; True when it fires."""
        for idx, spec in enumerate(self._parent.plan.specs):
            if spec.kind == "crash" and spec.rank == rank and self._fire(idx, spec):
                return True
        return False

    def compute_factor(self, rank: int, node: Optional[int] = None) -> float:
        """Compound straggler slowdown for ``rank`` (on ``node``)."""
        factor = 1.0
        for idx, spec in enumerate(self._parent.plan.specs):
            if spec.kind != "straggler":
                continue
            if (spec.rank is not None and spec.rank == rank) or (
                spec.node is not None and node is not None and spec.node == node
            ):
                factor *= spec.factor
                self.counts["straggler"] = self.counts.get("straggler", 0) + 1
        return factor

    def on_send(self, src: int, dst: int, tag: Hashable) -> SendVerdict:
        """Delivery verdict for one message, in deterministic send order."""
        v = SendVerdict()
        for idx, spec in enumerate(self._parent.plan.specs):
            if spec.kind == "send_fail" and spec.matches_message(src, dst, tag):
                if self._fire(idx, spec):
                    v.fail = True
                    return v
        for idx, spec in enumerate(self._parent.plan.specs):
            if spec.kind not in ("drop", "duplicate", "delay"):
                continue
            if not spec.matches_message(src, dst, tag):
                continue
            if not self._fire(idx, spec):
                continue
            if spec.kind == "drop":
                v.deliver = False
                self.dropped.append((src, dst, tag))
            elif spec.kind == "duplicate":
                v.copies += 1
            else:
                v.extra_delay += spec.delay
        return v

    @property
    def any_fired(self) -> bool:
        return bool(self.counts)


class FaultInjector:
    """Stateful driver-level injector: shared budgets across many runs.

    One injector lives for a whole detection; every simulated phase
    attempt calls :meth:`for_run` with a unique key (schedule coordinates
    + attempt index) to obtain the :class:`RunInjector` the simulator
    consults.  Budgets (``max_events``) are decremented here, so a
    once-only crash observed in attempt 0 is *not* replayed in attempt 1.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(f"FaultInjector needs a FaultPlan, got {plan!r}")
        self.plan = plan
        self._remaining: Dict[int, Optional[int]] = {
            i: s.max_events for i, s in enumerate(plan.specs)
        }
        self.total_counts: Dict[str, int] = {}

    def _budget_ok(self, idx: int) -> bool:
        rem = self._remaining[idx]
        return rem is None or rem > 0

    def _consume(self, idx: int) -> None:
        rem = self._remaining[idx]
        if rem is not None:
            self._remaining[idx] = rem - 1
        kind = self.plan.specs[idx].kind
        self.total_counts[kind] = self.total_counts.get(kind, 0) + 1

    def for_run(self, key: str) -> RunInjector:
        """A per-run view with an independent seeded stream for ``key``."""
        return RunInjector(self, key)

    def exhausted(self) -> bool:
        """True when every bounded spec has spent its budget."""
        return all(rem == 0 for rem in self._remaining.values() if rem is not None)


def as_run_injector(
    faults: Union[FaultPlan, FaultInjector, RunInjector, None], key: str = "run"
) -> Optional[RunInjector]:
    """Normalize a Simulator ``faults`` argument to a :class:`RunInjector`.

    A bare plan gets a private single-use injector (budgets scoped to
    this one run); a :class:`FaultInjector` yields a run view keyed by
    ``key``; a :class:`RunInjector` passes through.
    """
    if faults is None:
        return None
    if isinstance(faults, RunInjector):
        return faults
    if isinstance(faults, FaultInjector):
        return faults.for_run(key)
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults).for_run(key)
    raise ConfigurationError(
        f"faults must be a FaultPlan, FaultInjector, or RunInjector, got {faults!r}"
    )
