"""Virtual cluster descriptions and rank placement.

A :class:`VirtualCluster` is a number of identical nodes built from a
:class:`~repro.runtime.costmodel.MachineSpec`, plus the rank→node placement
used to decide whether a message crosses the interconnect.  Presets mirror
the paper's experimental setup (Section VI-A): *Juliet* (32 nodes x 36
cores) and *Shadowfax* (32 nodes x 32 cores).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.costmodel import (
    CostModel,
    JULIET_NODE,
    LAPTOP_NODE,
    MachineSpec,
    SHADOWFAX_NODE,
)


@dataclass(frozen=True)
class VirtualCluster:
    """``nodes`` identical machines; ranks placed block-wise by default."""

    spec: MachineSpec
    nodes: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"cluster needs >= 1 node, got {self.nodes}")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.spec.cores_per_node

    def placement(self, nranks: int, strategy: str = "block") -> np.ndarray:
        """Map ranks to node ids.

        ``block`` fills node 0 first (consecutive ranks share a node —
        favourable for neighbour communication); ``cyclic`` round-robins.
        """
        if nranks < 1:
            raise ConfigurationError(f"need >= 1 rank, got {nranks}")
        if nranks > self.total_cores:
            raise ConfigurationError(
                f"{nranks} ranks exceed cluster capacity {self.total_cores} "
                f"({self.nodes} nodes x {self.spec.cores_per_node} cores)"
            )
        r = np.arange(nranks, dtype=np.int64)
        if strategy == "block":
            return r // self.spec.cores_per_node
        if strategy == "cyclic":
            return r % self.nodes
        raise ConfigurationError(f"unknown placement strategy {strategy!r}")

    def cost_model(self, nranks: int, strategy: str = "block") -> CostModel:
        """A :class:`CostModel` with this cluster's tiers and placement."""
        return CostModel(self.spec, rank_node=self.placement(nranks, strategy))

    def memory_per_rank(self, nranks: int) -> int:
        """Bytes of node memory available to each rank (even split)."""
        ranks_per_node = min(nranks, self.spec.cores_per_node)
        return self.spec.mem_bytes_per_node // max(1, ranks_per_node)


def juliet(nodes: int = 32) -> VirtualCluster:
    """The paper's primary cluster: Intel Haswell, 36 cores/node, 56Gb IB."""
    return VirtualCluster(JULIET_NODE, nodes, name=f"juliet[{nodes}]")


def shadowfax(nodes: int = 32) -> VirtualCluster:
    """The paper's secondary cluster: 32 cores/node, similar memory/network."""
    return VirtualCluster(SHADOWFAX_NODE, nodes, name=f"shadowfax[{nodes}]")


def laptop(nodes: int = 1) -> VirtualCluster:
    """A small developer machine (used by the quickstart example)."""
    return VirtualCluster(LAPTOP_NODE, nodes, name=f"laptop[{nodes}]")
