"""Wall-clock profiling of the real kernel hot paths.

Virtual time (the simulator's clocks, the Theorem-2 model) answers *what
the algorithm costs on the modeled machine*; it cannot see where real
seconds go in this process — the GIL, numpy dispatch, thread-pool
overhead.  :class:`WallProfiler` closes that gap: call sites wrap their
work in :meth:`WallProfiler.span` and the profiler aggregates wall time
into per-``(phase, op, callsite)`` :class:`~repro.util.timing.Stopwatch`
accumulators while also retaining the raw span timeline for a
speedscope-compatible export (https://www.speedscope.app — drop the JSON
in to browse the flame graph).

The engine profiles every run by default (see
``MidasRuntime.get_profiler``): a span costs one ``perf_counter`` pair,
a lock acquisition, and a dict update — nanoseconds against the
millisecond-scale GF kernels it wraps (bounded by
``benchmarks/bench_profile_overhead.py``).

Spans nest per thread (a thread-local stack tracks depth), so the
export renders proper flame stacks and :meth:`by_phase` can tile the
run's wall clock from the depth-0 spans of the profiling thread without
double-counting nested or concurrent work.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.util.timing import Stopwatch

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

ProfKey = Tuple[str, str, str]  # (phase, op, callsite)


@dataclass(frozen=True)
class SpanRecord:
    """One completed wall-clock span (times relative to the profiler epoch)."""

    phase: str
    op: str
    callsite: str
    t0: float
    t1: float
    thread: str
    depth: int

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def frame_name(self) -> str:
        base = f"{self.phase}/{self.op}" if self.phase else self.op
        return f"{base} {self.callsite}" if self.callsite else base


class _SpanCtx:
    """Context manager for one span; re-entrant per call (not shared)."""

    __slots__ = ("_prof", "_phase", "_op", "_callsite", "_t0", "_depth")

    def __init__(self, prof: "WallProfiler", phase: str, op: str, callsite: str) -> None:
        self._prof = prof
        self._phase = phase
        self._op = op
        self._callsite = callsite
        self._t0 = 0.0
        self._depth = 0

    def __enter__(self) -> "_SpanCtx":
        self._depth = self._prof._push()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        self._prof._pop()
        self._prof._record(self._phase, self._op, self._callsite,
                           self._t0, t1, self._depth)


class WallProfiler:
    """Thread-safe wall-clock span aggregator (see module docs).

    ``keep_spans`` retains the raw span timeline for the speedscope
    export; aggregates are always kept.  Raw retention is bounded by
    ``max_spans`` (beyond it spans are dropped and counted in
    ``dropped_spans`` — aggregation continues unaffected).
    """

    def __init__(self, keep_spans: bool = True, max_spans: int = 100_000,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.dropped_spans = 0
        self._agg: Dict[ProfKey, Stopwatch] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        # the thread whose depth-0 spans tile the run (first to record)
        self._owner: Optional[int] = None

    # --------------------------------------------------------------- spans
    def span(self, op: str, phase: str = "", callsite: str = "") -> _SpanCtx:
        """``with profiler.span("kernel", phase="rounds", callsite="k-path")``."""
        return _SpanCtx(self, phase, op, callsite)

    def _push(self) -> int:
        if self._owner is None:
            # first thread to open a span owns the timeline; claiming on
            # open (not close) matters in threaded mode, where worker
            # spans close before the enclosing round span does
            with self._lock:
                if self._owner is None:
                    self._owner = threading.get_ident()
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        return depth

    def _pop(self) -> None:
        self._tls.depth = getattr(self._tls, "depth", 1) - 1

    def _record(self, phase: str, op: str, callsite: str,
                t0: float, t1: float, depth: int) -> None:
        if not self.enabled:
            return
        thread = threading.current_thread()
        with self._lock:
            if self._owner is None:
                self._owner = thread.ident
            sw = self._agg.get((phase, op, callsite))
            if sw is None:
                sw = self._agg[(phase, op, callsite)] = Stopwatch()
            sw.observe(t1 - t0)
            if self.keep_spans:
                if len(self.spans) < self.max_spans:
                    self.spans.append(SpanRecord(
                        phase, op, callsite,
                        t0 - self.epoch, t1 - self.epoch,
                        thread.name if thread.ident != self._owner else "main",
                        depth,
                    ))
                else:
                    self.dropped_spans += 1

    def observe(self, op: str, seconds: float, phase: str = "",
                callsite: str = "") -> None:
        """Fold an externally measured duration into the aggregates only
        (no raw span — for call sites that already hold a duration)."""
        if not self.enabled:
            return
        with self._lock:
            sw = self._agg.get((phase, op, callsite))
            if sw is None:
                sw = self._agg[(phase, op, callsite)] = Stopwatch()
            sw.observe(seconds)

    # ---------------------------------------------------------- aggregates
    @property
    def has_data(self) -> bool:
        return bool(self._agg)

    def aggregates(self) -> List[dict]:
        """Per-(phase, op, callsite) rows, heaviest first."""
        with self._lock:
            rows = [
                {"phase": k[0], "op": k[1], "callsite": k[2],
                 "calls": sw.calls, "seconds": sw.elapsed, "mean": sw.mean}
                for k, sw in self._agg.items()
            ]
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return rows

    def by_phase(self) -> Dict[str, float]:
        """Wall seconds per phase, from the profiling thread's depth-0 spans.

        Depth-0 spans of the owning thread tile the instrumented run
        without overlap (nested spans and concurrent worker threads are
        excluded), so these totals sum to the run's covered wall time.
        """
        out: Dict[str, float] = {}
        with self._lock:
            for s in self.spans:
                if s.depth == 0 and s.thread == "main":
                    out[s.phase or s.op] = out.get(s.phase or s.op, 0.0) + s.duration
        return out

    def section(self) -> dict:
        """The RunReport ``profile`` section (plain data)."""
        phases = self.by_phase()
        with self._lock:
            spans = list(self.spans)
            n_spans = len(self.spans)
            dropped = self.dropped_spans
        threads = {s.thread for s in spans}
        extent = (max((s.t1 for s in spans), default=0.0)
                  - min((s.t0 for s in spans), default=0.0))
        return {
            "wall_total": sum(phases.values()),
            "wall_span": extent,
            "phases": phases,
            "ops": self.aggregates(),
            "threads": len(threads),
            "spans": n_spans,
            "dropped_spans": dropped,
        }

    def reset(self) -> None:
        with self._lock:
            self._agg.clear()
            self.spans.clear()
            self.dropped_spans = 0
            self._owner = None
            self.epoch = time.perf_counter()

    # ---------------------------------------------------------- speedscope
    def to_speedscope(self, name: str = "repro run") -> dict:
        """Render the raw span timeline as a speedscope JSON document.

        One ``evented`` profile per thread; frames are the distinct
        ``phase/op callsite`` names.  Open at https://www.speedscope.app.
        """
        with self._lock:
            spans = list(self.spans)
        frame_ix: Dict[str, int] = {}
        frames: List[dict] = []
        by_thread: Dict[str, List[SpanRecord]] = {}
        for s in spans:
            if s.frame_name not in frame_ix:
                frame_ix[s.frame_name] = len(frames)
                frames.append({"name": s.frame_name})
            by_thread.setdefault(s.thread, []).append(s)
        profiles = []
        for tname in sorted(by_thread):
            tspans = by_thread[tname]
            events = []
            for s in tspans:
                events.append((s.t0, 1, s.depth, frame_ix[s.frame_name]))
                events.append((s.t1, 0, s.depth, frame_ix[s.frame_name]))
            # at equal timestamps: close before open; closes unwind
            # deepest-first, opens descend shallowest-first
            events.sort(key=lambda e: (e[0], e[1], e[2] if e[1] else -e[2]))
            end = max((s.t1 for s in tspans), default=0.0)
            profiles.append({
                "type": "evented",
                "name": f"{name} [{tname}]",
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": end,
                "events": [
                    {"type": "O" if kind else "C", "frame": frame, "at": t}
                    for t, kind, _depth, frame in events
                ],
            })
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "exporter": "repro.obs.profile",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": profiles,
        }

    def dump_speedscope(self, path: Union[str, Path],
                        name: str = "repro run") -> Path:
        """Write :meth:`to_speedscope` to ``path`` (parents created)."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_speedscope(name=name)))
        return p


def validate_speedscope(doc: dict) -> int:
    """Check a speedscope document's invariants; return the event count.

    Verifies the schema stamp, that every event references an existing
    frame, that each profile's events are time-ordered with balanced,
    properly nested O/C pairs, and that ``endValue`` covers the last
    event.  Raises ``ValueError`` on the first violation.
    """
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        raise ValueError(f"bad $schema: {doc.get('$schema')!r}")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list):
        raise ValueError("shared.frames missing")
    total = 0
    for pi, prof in enumerate(doc.get("profiles", [])):
        if prof.get("type") != "evented":
            raise ValueError(f"profile {pi}: type {prof.get('type')!r}")
        last_t = prof.get("startValue", 0.0)
        stack: List[int] = []
        for ei, ev in enumerate(prof.get("events", [])):
            t, kind, frame = ev.get("at"), ev.get("type"), ev.get("frame")
            if not isinstance(frame, int) or not (0 <= frame < len(frames)):
                raise ValueError(f"profile {pi} event {ei}: bad frame {frame!r}")
            if t < last_t:
                raise ValueError(f"profile {pi} event {ei}: time goes backward")
            last_t = t
            if kind == "O":
                stack.append(frame)
            elif kind == "C":
                if not stack or stack[-1] != frame:
                    raise ValueError(
                        f"profile {pi} event {ei}: C frame {frame} does not "
                        f"match open stack {stack[-3:]}"
                    )
                stack.pop()
            else:
                raise ValueError(f"profile {pi} event {ei}: type {kind!r}")
            total += 1
        if stack:
            raise ValueError(f"profile {pi}: {len(stack)} span(s) never closed")
        if prof.get("endValue", 0.0) < last_t:
            raise ValueError(f"profile {pi}: endValue precedes the last event")
    return total


__all__ = [
    "SpanRecord",
    "WallProfiler",
    "validate_speedscope",
    "SPEEDSCOPE_SCHEMA",
]
