"""Performance analytics: critical path, makespan blame, load imbalance.

The paper's empirical story is about *where time goes at scale* — which
phase bounds the makespan, whether a run is compute- or
communication-bound, and which ranks straggle.  PR 1's raw timelines
record what happened; this module explains it:

* :func:`extract_critical_path` walks the happens-before structure of a
  recorded run — program order within each rank plus the
  :class:`~repro.runtime.tracing.DepEdge` dependencies the simulator and
  the engine record (message arrivals that unblocked a receiver,
  collective joins, phase barriers) — and returns the longest weighted
  chain of causally ordered segments.  On a deadlock-free simulated run
  the chain tiles virtual time exactly, so its length equals the
  makespan (property-tested in ``tests/test_critical_path.py``).
* :meth:`CriticalPath.blame` attributes the makespan per
  ``(rank, phase, op-kind)`` — the direct answer to "what bounded this
  run?".
* :func:`slack_histogram` summarizes how much headroom everything *off*
  the path had before it would have delayed its rank's next critical
  involvement.
* :func:`analyze_run` bundles the path with per-rank
  compute/comm/idle decomposition, an nranks x nranks communication
  matrix (messages and bytes), per-phase imbalance ratios
  ``t_max/t_avg``, and straggler identification that cross-references an
  injected :class:`~repro.runtime.faults.FaultPlan` so deliberately
  slowed ranks are not blamed on the program.

The result, :class:`RunAnalysis`, renders as text and serializes to the
``analysis`` section of :class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import bisect
import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.tracing import DepEdge, TraceEvent, TraceSummary

#: relative tolerance for "these virtual timestamps coincide"
_REL_EPS = 1e-9

_PEER_RE = re.compile(r"^->(\d+)$")

#: event kinds mapped to the compute/comm/idle split (matches TraceSummary)
_COMPONENT = {
    "compute": "compute",
    "charge": "compute",
    "send": "comm",
    "recv": "comm",
    "collective": "comm",
    "wait": "idle",
}


@dataclass(frozen=True)
class PathSegment:
    """One tile of the critical path.

    ``via`` says what kind of element covers the interval: ``"event"``
    (a recorded rank-local event), ``"edge"`` (a cross-rank dependency —
    message flight, collective join, barrier), or ``"gap"`` (virtual
    time no recorded element accounts for, e.g. retry backoff).
    """

    rank: int
    kind: str
    t_start: float
    t_end: float
    via: str = "event"
    round: Optional[int] = None
    phase: Optional[int] = None
    label: str = ""
    info: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        d = {
            "rank": self.rank,
            "kind": self.kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "via": self.via,
        }
        if self.round is not None:
            d["round"] = self.round
        if self.phase is not None:
            d["phase"] = self.phase
        if self.label:
            d["label"] = self.label
        if self.info:
            d["info"] = self.info
        return d


@dataclass
class CriticalPath:
    """The longest weighted dependency chain through one recording."""

    segments: List[PathSegment] = field(default_factory=list)
    makespan: float = 0.0

    @property
    def length(self) -> float:
        """Sum of segment weights — equals the makespan when the
        recording's dependency structure is complete."""
        return float(sum(s.duration for s in self.segments))

    @property
    def coverage(self) -> float:
        """Fraction of the makespan the path explains (1.0 = exact)."""
        return self.length / self.makespan if self.makespan > 0 else 1.0

    def blame(self) -> List[dict]:
        """Makespan attribution per ``(rank, phase, kind)``, descending.

        Edge segments are charged to their source rank (a message's
        flight time is the sender's doing); gaps keep the rank the walk
        was on when it hit them.
        """
        agg: Dict[Tuple, float] = defaultdict(float)
        for s in self.segments:
            agg[(s.rank, s.phase, s.kind)] += s.duration
        rows = [
            {
                "rank": r,
                "phase": p,
                "kind": k,
                "seconds": sec,
                "fraction": sec / self.makespan if self.makespan > 0 else 0.0,
            }
            for (r, p, k), sec in agg.items()
        ]
        rows.sort(key=lambda row: (-row["seconds"], str(row["kind"]),
                                   row["rank"] if row["rank"] is not None else -9))
        return rows

    def to_dict(self, max_segments: int = 200) -> dict:
        return {
            "makespan": self.makespan,
            "length": self.length,
            "coverage": self.coverage,
            "n_segments": len(self.segments),
            "segments": [s.to_dict() for s in self.segments[:max_segments]],
            "blame": self.blame(),
        }


def _scope_fields(e: TraceEvent) -> Tuple[Optional[int], Optional[int], str]:
    s = e.scope
    if s is None:
        return None, None, ""
    return s.round, s.phase, s.label


def extract_critical_path(
    events: Sequence[TraceEvent],
    edges: Sequence[DepEdge] = (),
    max_steps: Optional[int] = None,
) -> CriticalPath:
    """Extract the longest weighted dependency chain from a recording.

    Walks backward from the event that ends at the makespan.  At each
    point ``(rank, t)`` the binding element is, in order of preference:

    1. an unused :class:`~repro.runtime.tracing.DepEdge` into ``rank``
       ending at ``t`` (crossing to its source rank at ``t_src``) —
       cross-rank dependencies always bind tighter than the local
       timeline, because the local event ending at ``t`` (a ``wait``, a
       collective) merely *observed* the dependency;
    2. the positive-duration event on ``rank`` ending at ``t``
       (program order);
    3. a ``gap`` down to the latest earlier element — first on the same
       rank, then anywhere (spliced timelines without a recorded
       barrier, retry backoff).

    Each step moves strictly backward in time or consumes an edge (each
    edge binds at most once), so the walk terminates.  On a single
    simulated run every virtual-clock advance is a recorded event and
    every unblock is a recorded edge, so the tiles cover ``[0,
    makespan]`` exactly and ``length == makespan``.
    """
    timed = [e for e in events if e.duration > 0]
    if not events or (not timed and not edges):
        return CriticalPath([], 0.0)
    makespan = max(e.t_end for e in events)
    eps = _REL_EPS * max(1.0, makespan)

    by_rank: Dict[int, List[TraceEvent]] = defaultdict(list)
    for e in timed:
        by_rank[e.rank].append(e)
    ends: Dict[int, List[float]] = {}
    for r, evs in by_rank.items():
        evs.sort(key=lambda e: (e.t_end, e.t_start))
        ends[r] = [e.t_end for e in evs]

    edges_in: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
    for i, d in enumerate(edges):
        edges_in[d.dst_rank].append((d.t_dst, i))
    for lst in edges_in.values():
        lst.sort()
    used = set()

    def edge_at(rank: int, t: float) -> Optional[DepEdge]:
        """An unused edge into ``rank`` ending at ~``t`` (binding first)."""
        lst = edges_in.get(rank)
        if not lst:
            return None
        hi = bisect.bisect_right(lst, (t + eps, len(edges)))
        best = None
        for j in range(hi - 1, -1, -1):
            t_dst, i = lst[j]
            if t_dst < t - eps:
                break
            if i in used:
                continue
            d = edges[i]
            # a zero-weight self edge neither moves time nor changes rank
            if d.src_rank == rank and d.weight <= eps:
                continue
            # prefer the earliest-originating edge (it carries the most
            # weight and therefore explains the most of the interval)
            if best is None or d.t_src < best[1].t_src:
                best = (i, d)
        if best is None:
            return None
        used.add(best[0])
        return best[1]

    def event_at(rank: int, t: float) -> Optional[TraceEvent]:
        """The positive-duration event on ``rank`` ending at ~``t``."""
        lst = ends.get(rank)
        if not lst:
            return None
        hi = bisect.bisect_right(lst, t + eps)
        for j in range(hi - 1, -1, -1):
            if lst[j] < t - eps:
                break
            return by_rank[rank][j]
        return None

    def latest_before(rank: int, t: float) -> Optional[Tuple[int, float]]:
        """The latest element ending strictly before ``t``: same rank
        first, then globally.  Returns ``(rank, t_end)`` or ``None``."""
        best = None
        lst = ends.get(rank)
        if lst:
            j = bisect.bisect_left(lst, t - eps)
            if j > 0:
                best = (rank, lst[j - 1])
        if best is None:
            for r2, lst2 in ends.items():
                j = bisect.bisect_left(lst2, t - eps)
                if j > 0 and (best is None or lst2[j - 1] > best[1]):
                    best = (r2, lst2[j - 1])
        return best

    start = max(timed, key=lambda e: e.t_end) if timed else None
    if start is not None and start.t_end >= makespan - eps:
        rank, t = start.rank, start.t_end
    else:
        # all time lives on edges (degenerate); start at the latest edge
        d = max(edges, key=lambda d: d.t_dst)
        rank, t = d.dst_rank, d.t_dst

    segments: List[PathSegment] = []
    budget = max_steps if max_steps is not None else 4 * (len(timed) + len(edges)) + 64
    while t > eps and budget > 0:
        budget -= 1
        d = edge_at(rank, t)
        if d is not None:
            if d.weight > eps:
                segments.append(PathSegment(
                    rank=d.src_rank, kind=d.kind, t_start=d.t_src, t_end=t,
                    via="edge", info=d.info,
                ))
            rank, t = d.src_rank, d.t_src
            continue
        e = event_at(rank, t)
        if e is not None:
            rnd, ph, lab = _scope_fields(e)
            segments.append(PathSegment(
                rank=rank, kind=e.kind, t_start=e.t_start, t_end=t,
                via="event", round=rnd, phase=ph, label=lab, info=e.info,
            ))
            t = e.t_start
            continue
        anchor = latest_before(rank, t)
        if anchor is None:
            # nothing earlier anywhere: unexplained leading time
            segments.append(PathSegment(rank=rank, kind="gap", t_start=0.0,
                                        t_end=t, via="gap"))
            t = 0.0
            break
        r2, t2 = anchor
        segments.append(PathSegment(rank=rank, kind="gap", t_start=t2,
                                    t_end=t, via="gap"))
        rank, t = r2, t2
    segments.reverse()
    return CriticalPath(segments, makespan)


def slack_histogram(
    events: Sequence[TraceEvent],
    path: CriticalPath,
    n_bins: int = 10,
) -> dict:
    """Local slack of everything *off* the critical path.

    For an off-path event the slack is the headroom before its rank's
    next on-path involvement (or the makespan when the rank never
    becomes critical again): how much later the event could have
    finished without delaying the chain that bounds the run.  Returns
    bin counts over ``[0, makespan]`` plus summary statistics.
    """
    makespan = path.makespan
    on_path: Dict[Tuple[int, float, float], bool] = {
        (s.rank, round(s.t_start, 12), round(s.t_end, 12)): True
        for s in path.segments
    }
    crit_starts: Dict[int, List[float]] = defaultdict(list)
    for s in path.segments:
        crit_starts[s.rank].append(s.t_start)
    for lst in crit_starts.values():
        lst.sort()

    slacks = []
    for e in events:
        if e.duration <= 0:
            continue
        if (e.rank, round(e.t_start, 12), round(e.t_end, 12)) in on_path:
            continue
        lst = crit_starts.get(e.rank, [])
        j = bisect.bisect_left(lst, e.t_end)
        nxt = lst[j] if j < len(lst) else makespan
        slacks.append(max(0.0, nxt - e.t_end))
    if not slacks:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "max": 0.0,
                "bin_width": 0.0, "bins": []}
    arr = np.asarray(slacks)
    width = makespan / n_bins if makespan > 0 else 1.0
    idx = np.minimum((arr / width).astype(int), n_bins - 1) if width > 0 else 0
    bins = np.bincount(idx, minlength=n_bins)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
        "bin_width": width,
        "bins": bins.tolist(),
    }


# --------------------------------------------------------------- analytics
def communication_matrix(events: Sequence[TraceEvent], nranks: int) -> dict:
    """nranks x nranks message counts and wire bytes, from send events."""
    msgs = np.zeros((nranks, nranks), dtype=np.int64)
    byts = np.zeros((nranks, nranks), dtype=np.int64)
    for e in events:
        if e.kind != "send" or not (0 <= e.rank < nranks):
            continue
        m = _PEER_RE.match(e.info)
        if m is None:
            continue
        dst = int(m.group(1))
        if 0 <= dst < nranks:
            msgs[e.rank, dst] += 1
            byts[e.rank, dst] += e.nbytes
    return {"messages": msgs.tolist(), "bytes": byts.tolist()}


def _phase_imbalance(events: Sequence[TraceEvent]) -> List[dict]:
    """Per-(round, phase) busy-time imbalance ``t_max / t_avg``."""
    busy: Dict[Tuple, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
    for e in events:
        s = e.scope
        if s is None or (s.round is None and s.phase is None):
            continue
        if _COMPONENT.get(e.kind) not in ("compute", "comm") or e.rank < 0:
            continue
        key = (s.round if s.round is not None else -1,
               s.phase if s.phase is not None else -1)
        busy[key][e.rank] += e.duration
    rows = []
    for key in sorted(busy):
        per_rank = busy[key]
        vals = list(per_rank.values())
        t_max = max(vals)
        t_avg = sum(vals) / len(vals)
        worst = max(per_rank.items(), key=lambda rv: (rv[1], -rv[0]))[0]
        rows.append({
            "round": key[0],
            "phase": key[1],
            "t_max": t_max,
            "t_avg": t_avg,
            "ratio": t_max / t_avg if t_avg > 0 else 1.0,
            "worst_rank": worst,
            "nranks_active": len(per_rank),
        })
    return rows


def _stragglers(
    summary: TraceSummary,
    events: Sequence[TraceEvent],
    fault_plan=None,
    n1: Optional[int] = None,
    threshold: float = 1.5,
) -> List[dict]:
    """Ranks whose busy time exceeds ``threshold`` x the median.

    Cross-references the injected fault plan: a straggler that matches a
    ``straggler``/``crash`` fault spec (by local sim rank when ``n1`` is
    given) is marked ``injected`` so real infrastructure slowness is not
    blamed on the program.
    """
    busy = summary.compute + summary.comm
    active = busy[busy > 0]
    if active.size == 0:
        return []
    med = float(np.median(active))
    if med <= 0:
        return []
    fault_ranks: Dict[int, List[str]] = defaultdict(list)
    for e in events:
        if e.kind == "fault" and e.rank >= 0:
            fault_ranks[e.rank].append(e.info)
    slow_specs = []
    if fault_plan is not None:
        slow_specs = [s for s in getattr(fault_plan, "specs", ())
                      if s.kind in ("straggler", "crash")]

    def injected_by_plan(rank: int) -> Optional[str]:
        local = rank % n1 if n1 else rank
        for s in slow_specs:
            if s.rank is None or s.rank in (rank, local):
                return s.kind
        return None

    rows = []
    for r in range(summary.nranks):
        if busy[r] <= threshold * med:
            continue
        kind = injected_by_plan(r)
        rows.append({
            "rank": r,
            "busy_seconds": float(busy[r]),
            "ratio_to_median": float(busy[r] / med),
            "injected": kind is not None or bool(fault_ranks.get(r)),
            "fault_kind": kind,
            "fault_events": fault_ranks.get(r, [])[:4],
        })
    rows.sort(key=lambda row: -row["ratio_to_median"])
    return rows


@dataclass
class RunAnalysis:
    """Joined performance analytics of one run (see module docs)."""

    nranks: int
    makespan: float
    critical_path: CriticalPath
    slack: dict
    per_rank: List[dict]
    phase_imbalance: List[dict]
    imbalance_ratio: float
    comm_matrix: dict
    stragglers: List[dict]

    def to_dict(self, max_segments: int = 200) -> dict:
        return {
            "nranks": self.nranks,
            "makespan": self.makespan,
            "critical_path": self.critical_path.to_dict(max_segments),
            "slack": self.slack,
            "per_rank": self.per_rank,
            "phase_imbalance": self.phase_imbalance,
            "imbalance_ratio": self.imbalance_ratio,
            "comm_matrix": self.comm_matrix,
            "stragglers": self.stragglers,
        }

    def text(self, max_blame: int = 6) -> str:
        cp = self.critical_path
        lines = [
            f"critical path: {cp.length:.6f}s over {len(cp.segments)} segment(s) "
            f"({cp.coverage:.1%} of makespan {cp.makespan:.6f}s)"
        ]
        blame = cp.blame()
        if blame:
            lines.append("  makespan blame (rank, phase, kind):")
            for b in blame[:max_blame]:
                where = f"rank {b['rank']}" if b["rank"] is not None else "?"
                ph = f" phase {b['phase']}" if b["phase"] is not None else ""
                lines.append(
                    f"    {where}{ph} {b['kind']}: {b['seconds']:.6f}s "
                    f"({b['fraction']:.1%})"
                )
        if self.slack.get("count"):
            s = self.slack
            lines.append(
                f"  off-path slack: {s['count']} event(s), median "
                f"{s['p50']:.6f}s, p90 {s['p90']:.6f}s, max {s['max']:.6f}s"
            )
        lines.append(f"load imbalance (busy t_max/t_avg): "
                     f"{self.imbalance_ratio:.2f} overall")
        worst = sorted(self.phase_imbalance, key=lambda p: -p["ratio"])[:3]
        for p in worst:
            lines.append(
                f"  round {p['round']} phase {p['phase']}: ratio "
                f"{p['ratio']:.2f} (worst rank {p['worst_rank']})"
            )
        msgs = np.asarray(self.comm_matrix["messages"])
        if msgs.sum() > 0:
            byts = np.asarray(self.comm_matrix["bytes"])
            hot = np.unravel_index(int(byts.argmax()), byts.shape)
            lines.append(
                f"communication: {int(msgs.sum())} message(s), "
                f"{int(byts.sum())} bytes; hottest pair "
                f"{hot[0]}->{hot[1]} ({int(byts[hot])} bytes, "
                f"{int(msgs[hot])} msgs)"
            )
        if self.stragglers:
            for srow in self.stragglers[:4]:
                tag = " [injected fault]" if srow["injected"] else ""
                lines.append(
                    f"straggler: rank {srow['rank']} busy "
                    f"{srow['busy_seconds']:.6f}s "
                    f"({srow['ratio_to_median']:.2f}x median){tag}"
                )
        else:
            lines.append("stragglers: none (no rank above 1.5x median busy)")
        return "\n".join(lines)


def analyze_run(
    events: Sequence[TraceEvent],
    edges: Sequence[DepEdge] = (),
    nranks: Optional[int] = None,
    fault_plan=None,
    n1: Optional[int] = None,
) -> RunAnalysis:
    """Full performance analytics for one recording (see module docs)."""
    events = list(events)
    if nranks is None:
        nranks = max((e.rank + 1 for e in events if e.rank >= 0), default=1)
    summary = TraceSummary.from_events(events, nranks)
    path = extract_critical_path(events, edges)
    busy = summary.compute + summary.comm
    avg = float(busy.mean()) if nranks else 0.0
    per_rank = [
        {
            "rank": r,
            "compute": float(summary.compute[r]),
            "comm": float(summary.comm[r]),
            "idle": float(summary.idle[r]),
            "busy_fraction": (float(busy[r] / summary.makespan)
                              if summary.makespan > 0 else 0.0),
        }
        for r in range(nranks)
    ]
    return RunAnalysis(
        nranks=nranks,
        makespan=summary.makespan,
        critical_path=path,
        slack=slack_histogram(events, path),
        per_rank=per_rank,
        phase_imbalance=_phase_imbalance(events),
        imbalance_ratio=float(busy.max() / avg) if avg > 0 else 1.0,
        comm_matrix=communication_matrix(events, nranks),
        stragglers=_stragglers(summary, events, fault_plan, n1),
    )


__all__ = [
    "CriticalPath",
    "PathSegment",
    "RunAnalysis",
    "analyze_run",
    "communication_matrix",
    "extract_critical_path",
    "slack_histogram",
]
