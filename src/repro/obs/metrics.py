"""Process-wide metrics: counters, gauges, and log-bucket histograms.

The registry follows the Prometheus data model scaled down to what this
repository needs: a metric *family* has a name, a kind, and help text;
``family.labels(dataset="miami", k="10")`` returns (creating on first
use) the child carrying those label values.  The family itself doubles
as its own unlabeled child, so ``registry.counter("midas_rounds_total")
.inc()`` works without ceremony.

Snapshots are plain data (:class:`MetricsSnapshot`) serialized through
the same versioned JSON envelope as every other result type::

    from repro.serialization import dump_result, load_result
    dump_result(registry.snapshot(), "metrics.json")
    snap = load_result("metrics.json")
    snap.get("midas_rounds_total", problem="k-path")

Histograms use *fixed log-scale buckets* (:func:`log_buckets`): the
bucket bounds are decided at construction, never rebalanced, so
snapshots from different runs are directly comparable — the property a
perf trajectory needs.

A process-wide default registry (:func:`get_default_registry`) is where
the driver, the kernel calibration, and the GF field constructors record
by default, so simulated runs and measured-kernel runs land in one
place.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_buckets(lo: float = 1e-9, hi: float = 1e3, per_decade: int = 3) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per factor of 10, rounded to 3 significant
    digits so bounds are stable across platforms (e.g. 1e-9, 2.15e-9,
    4.64e-9, 1e-8, ...).
    """
    if not (0 < lo < hi):
        raise ConfigurationError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ConfigurationError(f"per_decade must be >= 1, got {per_decade}")
    n = int(round(per_decade * math.log10(hi / lo)))
    bounds = []
    for i in range(n + 1):
        b = lo * 10.0 ** (i / per_decade)
        bounds.append(float(f"{b:.3g}"))
    return tuple(dict.fromkeys(bounds))  # dedupe, order-preserving


DEFAULT_TIME_BUCKETS = log_buckets(1e-9, 1e3, per_decade=3)


class Counter:
    """Monotonically increasing value.

    Mutation is lock-protected: metric children are shared across the
    threaded backend's workers and the detection service's concurrent
    query executions, and ``+=`` on a float is a read-modify-write that
    can drop increments under the GIL.
    """

    kind = "counter"

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> dict:
        return {"value": self._value}

    def _merge(self, sample: Mapping[str, Any]) -> None:
        self.inc(float(sample.get("value", 0.0)))

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """Value that can go up and down (mutation lock-protected, like
    :class:`Counter`)."""

    kind = "gauge"

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> dict:
        return {"value": self._value}

    def _merge(self, sample: Mapping[str, Any]) -> None:
        # Gauges are point-in-time: a shipped delta carries the source's
        # latest reading, which simply wins.
        self.set(float(sample.get("value", 0.0)))

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Distribution over fixed log-scale buckets.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` (and above
    ``bounds[i-1]``); observations above the last bound land in
    ``overflow``.  Non-cumulative counts keep snapshots mergeable by
    simple addition.
    """

    kind = "histogram"

    __slots__ = ("bounds", "bucket_counts", "overflow", "count", "sum",
                 "_exemplars", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if len(bounds) < 1 or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        # bucket index (len(bounds) = overflow) -> {"labels": {...}, "value": v}
        self._exemplars: Dict[int, dict] = {}
        self._lock = threading.Lock()

    def observe(self, value: float,
                exemplar: Optional[Mapping[str, Any]] = None) -> None:
        """Record ``value``; optionally attach an exemplar — a small label
        set (e.g. ``{"trace_id": ...}``) remembered per bucket, last
        observation wins — rendered OpenMetrics-style in exposition."""
        v = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= v
            mid = (lo + hi) // 2
            if self.bounds[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        with self._lock:
            self.count += 1
            self.sum += v
            if lo == len(self.bounds):
                self.overflow += 1
            else:
                self.bucket_counts[lo] += 1
            if exemplar:
                self._exemplars[lo] = {
                    "labels": {str(k): str(val) for k, val in exemplar.items()},
                    "value": v,
                }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _sample(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.sum,
            "buckets": [[b, c] for b, c in zip(self.bounds, self.bucket_counts)],
            "overflow": self.overflow,
        }
        with self._lock:
            if self._exemplars:
                out["exemplars"] = {
                    str(i): dict(e) for i, e in sorted(self._exemplars.items())
                }
        return out

    def _merge(self, sample: Mapping[str, Any]) -> None:
        """Fold a serialized sample (e.g. a worker-side delta) into this
        histogram.  Buckets merge positionally; mismatched bounds raise."""
        buckets = sample.get("buckets", [])
        bounds = tuple(float(b) for b, _c in buckets)
        if bounds != self.bounds:
            raise ConfigurationError(
                "cannot merge histogram samples with different bucket bounds"
            )
        with self._lock:
            self.count += int(sample.get("count", 0))
            self.sum += float(sample.get("sum", 0.0))
            self.overflow += int(sample.get("overflow", 0))
            for i, (_b, c) in enumerate(buckets):
                self.bucket_counts[i] += int(c)
            for key, ex in (sample.get("exemplars") or {}).items():
                self._exemplars[int(key)] = dict(ex)

    def _reset(self) -> None:
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self._exemplars = {}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with labeled children (see module docs)."""

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(
                f"invalid metric name {name!r}; use [a-zA-Z_:][a-zA-Z0-9_:]*"
            )
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelKey, Any] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets if self._buckets is not None
                             else DEFAULT_TIME_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labelvalues):
        """The child carrying these label values (created on first use).

        Creation is lock-protected so two threads first touching the same
        label set never race to install distinct children (one of which
        would silently swallow the loser's increments).
        """
        key = _label_key(labelvalues)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
        return child

    # ------------------------------------------- unlabeled-child shorthand
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float,
                exemplar: Optional[Mapping[str, Any]] = None) -> None:
        self.labels().observe(value, exemplar=exemplar)

    @property
    def value(self) -> float:
        return self.labels().value

    def _items(self):
        # shallow copy under the lock: a mid-scrape child creation on
        # another thread must not blow up the snapshot's iteration
        with self._lock:
            return sorted(self._children.items())

    def children(self):
        """Iterate ``(labels_dict, child)`` pairs."""
        for key, child in self._items():
            yield dict(key), child

    def _collect(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), **child._sample()}
                for key, child in self._items()
            ],
        }

    def _reset(self) -> None:
        for _, child in self._items():
            child._reset()


class MetricsRegistry:
    """Process-wide home for metric families; snapshot/reset semantics."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: str, help: str,
                       buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {fam.kind}, not {kind}"
                )
            return fam
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = MetricFamily(name, kind, help, buckets)
            return fam

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._get_or_create(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._get_or_create(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._get_or_create(name, "histogram", help, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def snapshot(self) -> "MetricsSnapshot":
        """An immutable plain-data copy of every family's current state."""
        return MetricsSnapshot(metrics=[f._collect() for f in self.families()])

    def reset(self) -> None:
        """Zero every metric (families and label sets survive)."""
        for fam in self._families.values():
            fam._reset()


@dataclass
class MetricsSnapshot:
    """Plain-data snapshot of a registry; see module docs for the shape."""

    metrics: List[dict] = field(default_factory=list)

    def names(self) -> List[str]:
        return [m["name"] for m in self.metrics]

    def family(self, name: str) -> Optional[dict]:
        for m in self.metrics:
            if m["name"] == name:
                return m
        return None

    def get(self, name: str, **labels):
        """The sample dict (or counter/gauge value) for ``name{labels}``.

        Returns ``None`` when the metric or label set is absent.  For
        counters/gauges the bare float is returned; histograms return
        their full sample dict.
        """
        fam = self.family(name)
        if fam is None:
            return None
        want = {str(k): str(v) for k, v in labels.items()}
        for s in fam["samples"]:
            if s["labels"] == want:
                if fam["kind"] in ("counter", "gauge"):
                    return s["value"]
                return {k: v for k, v in s.items() if k != "labels"}
        return None

    # ----------------------------------------------------------- exposition
    def to_prometheus(self) -> str:
        """Render as Prometheus text exposition format (version 0.0.4).

        Histograms convert the internal non-cumulative buckets to the
        cumulative ``_bucket{le=...}`` series Prometheus expects, ending
        with ``le="+Inf"`` plus ``_sum`` and ``_count``.  Label values
        are escaped per the spec (backslash, double-quote, newline).
        Buckets carrying an exemplar render it OpenMetrics-style as a
        ``# {trace_id="..."} <value>`` suffix on the ``_bucket`` line.
        """
        def esc(v: str) -> str:
            return (str(v).replace("\\", "\\\\").replace('"', '\\"')
                    .replace("\n", "\\n"))

        def fmt_labels(labels: Mapping[str, str], extra: str = "") -> str:
            parts = [f'{k}="{esc(v)}"' for k, v in sorted(labels.items())]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        def num(v: float) -> str:
            if v == math.inf:
                return "+Inf"
            if v == -math.inf:
                return "-Inf"
            f = float(v)
            return repr(int(f)) if f == int(f) and abs(f) < 1e15 else repr(f)

        lines: List[str] = []
        for fam in self.metrics:
            name, kind = fam["name"], fam["kind"]
            if fam.get("help"):
                lines.append(f"# HELP {name} {esc(fam['help'])}")
            lines.append(f"# TYPE {name} {kind}")
            for s in fam["samples"]:
                labels = s.get("labels", {})
                if kind in ("counter", "gauge"):
                    lines.append(f"{name}{fmt_labels(labels)} {num(s['value'])}")
                    continue
                exemplars = s.get("exemplars") or {}

                def ex_suffix(idx: int) -> str:
                    ex = exemplars.get(str(idx)) or exemplars.get(idx)
                    if not ex:
                        return ""
                    exl = ",".join(
                        f'{k}="{esc(v)}"'
                        for k, v in sorted(ex.get("labels", {}).items())
                    )
                    return " # {%s} %s" % (exl, num(ex.get("value", 0.0)))

                cum = 0
                nb = len(s.get("buckets", []))
                for i, (bound, cnt) in enumerate(s.get("buckets", [])):
                    cum += cnt
                    le = 'le="%s"' % num(bound)
                    lines.append(
                        f"{name}_bucket{fmt_labels(labels, le)} {cum}"
                        f"{ex_suffix(i)}"
                    )
                cum += s.get("overflow", 0)
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{fmt_labels(labels, inf)} {cum}"
                    f"{ex_suffix(nb)}"
                )
                lines.append(f"{name}_sum{fmt_labels(labels)} {num(s['sum'])}")
                lines.append(f"{name}_count{fmt_labels(labels)} {s['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        from repro.serialization import SCHEMA_VERSION  # local: avoid cycle

        return {
            "type": "MetricsSnapshot",
            "schema_version": SCHEMA_VERSION,
            "metrics": self.metrics,
        }

    @staticmethod
    def from_dict(data: dict) -> "MetricsSnapshot":
        if data.get("type") != "MetricsSnapshot":
            raise ConfigurationError("not a serialized MetricsSnapshot")
        return MetricsSnapshot(metrics=list(data.get("metrics", [])))


def snapshot_delta(new: MetricsSnapshot,
                   old: Optional[MetricsSnapshot]) -> List[dict]:
    """The per-family difference ``new - old``, for shipping increments
    across a process boundary.

    Counters and histograms subtract (non-cumulative histogram buckets
    make this positional subtraction); gauges carry their latest value.
    Families and samples absent from ``old`` ship whole.  Samples whose
    delta is all-zero are dropped; the result is ``[]`` when nothing
    changed — the cheap common case the process backend tests for before
    putting anything on the wire.
    """
    old_fams = {m["name"]: m for m in old.metrics} if old is not None else {}
    out: List[dict] = []
    for fam in new.metrics:
        ofam = old_fams.get(fam["name"])
        osamples = {}
        if ofam is not None and ofam["kind"] == fam["kind"]:
            osamples = {_label_key(s["labels"]): s for s in ofam["samples"]}
        kept: List[dict] = []
        for s in fam["samples"]:
            prev = osamples.get(_label_key(s["labels"]))
            d = _sample_delta(fam["kind"], s, prev)
            if d is not None:
                kept.append(d)
        if kept:
            out.append({"name": fam["name"], "kind": fam["kind"],
                        "help": fam.get("help", ""), "samples": kept})
    return out


def _sample_delta(kind: str, new: dict, old: Optional[dict]) -> Optional[dict]:
    if kind in ("counter", "gauge"):
        value = new["value"] - (old["value"] if old is not None else 0.0)
        if kind == "gauge":
            # Point-in-time: ship the reading itself when it moved.
            if old is not None and new["value"] == old["value"]:
                return None
            return {"labels": dict(new["labels"]), "value": new["value"]}
        if value == 0.0:
            return None
        return {"labels": dict(new["labels"]), "value": value}
    # histogram
    count = new["count"] - (old["count"] if old is not None else 0)
    if count == 0:
        return None
    oldb = {float(b): c for b, c in (old or {}).get("buckets", [])}
    return {
        "labels": dict(new["labels"]),
        "count": count,
        "sum": new["sum"] - (old["sum"] if old is not None else 0.0),
        "overflow": new["overflow"] - (old or {}).get("overflow", 0),
        "buckets": [[b, c - oldb.get(float(b), 0)] for b, c in new["buckets"]],
        "exemplars": dict(new.get("exemplars") or {}),
    }


def merge_into(registry: MetricsRegistry, delta: Sequence[dict]) -> int:
    """Fold a :func:`snapshot_delta` payload into ``registry``; returns
    the number of samples merged.  Families are created on demand with
    the shipped help text; histogram bucket bounds come from the shipped
    sample so parent and worker stay structurally identical."""
    merged = 0
    for fam in delta:
        kind = fam.get("kind")
        name = fam.get("name")
        if kind not in _KINDS or not name:
            continue
        for s in fam.get("samples", []):
            if kind == "histogram":
                mf = registry.histogram(
                    name, fam.get("help", ""),
                    buckets=[b for b, _c in s.get("buckets", [])] or None,
                )
            elif kind == "counter":
                mf = registry.counter(name, fam.get("help", ""))
            else:
                mf = registry.gauge(name, fam.get("help", ""))
            mf.labels(**dict(s.get("labels", {})))._merge(s)
            merged += 1
    return merged


_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code records into."""
    return _DEFAULT_REGISTRY
