"""Stdlib HTTP exporter for live runs.

:class:`LiveServer` runs a ``ThreadingHTTPServer`` on a daemon thread
and serves three endpoints:

* ``/metrics`` — Prometheus text exposition 0.0.4, rendered from the
  metrics registry via ``MetricsSnapshot.to_prometheus()``;
* ``/status`` — the JSON :class:`~repro.obs.live.RunStatus` snapshot;
* ``/healthz`` — ``ok`` (liveness for the service coordinator).

No third-party dependency: ``http.server`` is enough for a scrape
endpoint, and the threading server keeps slow scrapers from blocking
each other.  Use port 0 to bind an ephemeral port (the bound port is
reported by :meth:`LiveServer.start` and ``.port``); :meth:`stop` shuts
the server down and joins its thread, so tests can assert nothing
leaked.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.util.log import get_logger

_LOG = get_logger(__name__)

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # the server instance carries the providers (see LiveServer.start)
    server: "ThreadingHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server._metrics_provider().encode()  # type: ignore[attr-defined]
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/status":
            status = self.server._status_provider()  # type: ignore[attr-defined]
            self._reply(200, "application/json",
                        json.dumps(status).encode())
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        _LOG.debug("http %s", fmt % args)


class LiveServer:
    """The exporter thread (see module docs).

    ``status_provider`` returns the ``/status`` JSON payload (a plain
    dict — typically ``RunStatus.snapshot``); ``registry`` is snapshotted
    per ``/metrics`` scrape.
    """

    def __init__(
        self,
        status_provider: Callable[[], dict],
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self._status_provider = status_provider
        self._registry = registry if registry is not None else get_default_registry()
        self._host = host
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port, or ``None`` before :meth:`start`."""
        return self._httpd.server_address[1] if self._httpd is not None else None

    @property
    def url(self) -> Optional[str]:
        return f"http://{self._host}:{self.port}" if self._httpd is not None else None

    def start(self, port: int = 0) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port  # idempotent
        httpd = ThreadingHTTPServer((self._host, port), _Handler)
        httpd.daemon_threads = True
        httpd._status_provider = self._status_provider  # type: ignore[attr-defined]
        httpd._metrics_provider = (  # type: ignore[attr-defined]
            lambda: self._registry.snapshot().to_prometheus()
        )
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"repro-live-http:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("live telemetry endpoint on %s", self.url)
        return self.port

    def stop(self) -> None:
        """Shut down, close the socket, and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None


__all__ = ["LiveServer", "PROMETHEUS_CONTENT_TYPE"]
