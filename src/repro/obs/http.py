"""Stdlib HTTP exporter for live runs and the detection service.

:class:`LiveServer` runs a ``ThreadingHTTPServer`` on a daemon thread
and serves three built-in endpoints:

* ``/metrics`` — Prometheus text exposition 0.0.4, rendered from the
  metrics registry via ``MetricsSnapshot.to_prometheus()``;
* ``/status`` — the JSON :class:`~repro.obs.live.RunStatus` snapshot,
  with the server's own ``{"host", "port"}`` spliced in under
  ``"server"`` (so a port-0 ephemeral bind is discoverable from the
  endpoint itself);
* ``/healthz`` — ``ok`` (liveness for the service coordinator).

Additional routes — the detection service mounts its ``/api/*``
endpoints here — are registered via the ``routes`` constructor argument
or :meth:`LiveServer.add_route`.  A route handler has the signature
``handler(method, path, query, body) -> (status, content_type, bytes)``
and runs on the request thread; built-in paths always win over routes.

No third-party dependency: ``http.server`` is enough for a scrape
endpoint, and the threading server keeps slow scrapers from blocking
each other.  Use port 0 to bind an ephemeral port (the bound port is
reported by :meth:`LiveServer.start` and ``.port``); :meth:`stop` shuts
the server down and joins its thread, so tests can assert nothing
leaked.  :meth:`start` is idempotent, and a failed bind (port already
taken) raises a typed :class:`~repro.errors.ConfigurationError` while
leaving the server stopped — no half-started thread to leak.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.util.log import get_logger

_LOG = get_logger(__name__)

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: a mounted route: (method, path, query, body) -> (status, ctype, body)
RouteHandler = Callable[[str, str, str, bytes], Tuple[int, str, bytes]]


class _Handler(BaseHTTPRequestHandler):
    # the server instance carries the providers (see LiveServer.start)
    server: "ThreadingHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        if path == "/metrics":
            body = self.server._metrics_provider().encode()  # type: ignore[attr-defined]
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/status":
            status = self.server._status_provider()  # type: ignore[attr-defined]
            if isinstance(status, dict):
                status = dict(status)
                status.setdefault("server", self.server._self_address)  # type: ignore[attr-defined]
            self._reply(200, "application/json",
                        json.dumps(status).encode())
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._dispatch_route("GET", path, query, b"")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self._dispatch_route("POST", path, query, body)

    def _dispatch_route(self, method: str, path: str, query: str,
                        body: bytes) -> None:
        routes = self.server._routes  # type: ignore[attr-defined]
        handler = routes.get(path)
        if handler is None:
            # longest-prefix fallback so path-parameter routes work:
            # "/api/trace/<id>" dispatches to the "/api/trace" handler,
            # which receives the full path and parses the suffix itself
            probe = path.rstrip("/")
            while handler is None and "/" in probe[1:]:
                probe = probe.rsplit("/", 1)[0]
                handler = routes.get(probe)
        if handler is None:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")
            return
        try:
            code, ctype, payload = handler(method, path, query, body)
        except Exception as exc:  # a broken route must not kill the server
            _LOG.exception("route %s %s failed", method, path)
            payload = json.dumps({"ok": False, "error": str(exc)}).encode()
            code, ctype = 500, "application/json"
        self._reply(code, ctype, payload)

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        _LOG.debug("http %s", fmt % args)


class LiveServer:
    """The exporter thread (see module docs).

    ``status_provider`` returns the ``/status`` JSON payload (a plain
    dict — typically ``RunStatus.snapshot``); ``registry`` is snapshotted
    per ``/metrics`` scrape; ``routes`` maps extra exact paths to
    :data:`RouteHandler` callables (the detection service's ``/api/*``).
    """

    def __init__(
        self,
        status_provider: Callable[[], dict],
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        routes: Optional[Dict[str, RouteHandler]] = None,
    ) -> None:
        self._status_provider = status_provider
        self._registry = registry if registry is not None else get_default_registry()
        self._host = host
        self._routes: Dict[str, RouteHandler] = dict(routes or {})
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port, or ``None`` before :meth:`start`."""
        return self._httpd.server_address[1] if self._httpd is not None else None

    @property
    def url(self) -> Optional[str]:
        return f"http://{self._host}:{self.port}" if self._httpd is not None else None

    def add_route(self, path: str, handler: RouteHandler) -> None:
        """Mount ``handler`` at ``path`` (effective immediately; built-in
        ``/metrics`` ``/status`` ``/healthz`` cannot be shadowed).  A
        request for an unregistered subpath falls back to the longest
        registered ancestor, so one handler can serve ``path/<param>``."""
        if not path.startswith("/"):
            raise ConfigurationError(f"route path must start with '/', got {path!r}")
        self._routes[path] = handler

    def start(self, port: int = 0) -> int:
        """Bind and serve on a daemon thread; returns the bound port.

        Idempotent: a started server returns its existing port (the
        requested ``port`` is ignored — stop first to rebind).  A bind
        failure raises :class:`~repro.errors.ConfigurationError` and
        leaves the server fully stopped: the socket is closed by the
        ``TCPServer`` constructor and no thread was ever started.
        """
        if self._httpd is not None:
            return self.port  # idempotent
        try:
            httpd = ThreadingHTTPServer((self._host, port), _Handler)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind live endpoint on {self._host}:{port}: {exc}"
            ) from exc
        httpd.daemon_threads = True
        httpd._status_provider = self._status_provider  # type: ignore[attr-defined]
        httpd._metrics_provider = (  # type: ignore[attr-defined]
            lambda: self._registry.snapshot().to_prometheus()
        )
        httpd._routes = self._routes  # type: ignore[attr-defined]
        httpd._self_address = {  # type: ignore[attr-defined]
            "host": self._host, "port": httpd.server_address[1],
        }
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"repro-live-http:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("live telemetry endpoint on %s", self.url)
        return self.port

    def stop(self) -> None:
        """Shut down, close the socket, and join the serving thread.
        Idempotent: extra calls (and calls on a never-started server)
        are no-ops."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None


__all__ = ["LiveServer", "PROMETHEUS_CONTENT_TYPE", "RouteHandler"]
