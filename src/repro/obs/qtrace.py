"""End-to-end query tracing across the service and process-worker boundary.

This module gives every service query a W3C-traceparent-style identity
(:class:`TraceContext`) that is minted in the client, propagated through
the HTTP routes and the broker admission pipeline, threaded into the
engine via ``MidasRuntime.qtrace``, and carried across the
``mode="process"`` boundary — workers buffer spans locally and ship them
back on the task wire so the parent can splice a single cross-process
timeline with distinct pids per worker.

Three layers live here:

* :class:`TraceContext` / :class:`Span` / :class:`QueryTrace` — the
  per-query span collector.  All timestamps are ``time.perf_counter()``
  stamps: on Linux ``perf_counter`` is CLOCK_MONOTONIC, which is shared
  by every process on the machine, so client, service, and worker spans
  land on one common timebase and can be spliced without clock-skew
  correction.  Each :class:`QueryTrace` carries an ``anchor`` pairing a
  perf stamp with a unix wall stamp so renderers can map spans back to
  wall-clock time.
* :class:`QueryTracer` — the service-resident side: a bounded in-memory
  store of finished traces (for ``/api/trace/<id>`` and ``repro
  trace``), plus per-tenant SLO accounting — per-stage latency
  histograms with exemplar trace_ids and per-tenant
  error/quota/cache-hit counters — registered in the service metrics
  registry.
* :class:`FlightRecorder` — a bounded ring of recent notable events
  (admissions, crashes, watchdog trips, sanitizer errors, degraded
  results) that auto-dumps to ``$REPRO_FLIGHT_DIR`` when something goes
  wrong, so post-mortems of a crashed or interrupted service run have
  the last seconds of history.  When the environment variable is unset
  the dump stays in memory (``last_dump``) — test runs and ordinary CLI
  usage never scatter files.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "Span",
    "QueryTrace",
    "QueryTracer",
    "FlightRecorder",
    "get_flight_recorder",
    "reset_flight_recorder",
    "trace_to_chrome",
    "render_timeline",
    "SLO_STAGES",
]

_TRACEPARENT_VERSION = "00"

# Pipeline stages with per-tenant SLO histograms.  "total" is the
# end-to-end broker latency; the rest decompose it.
SLO_STAGES = ("total", "cache", "coalesce", "quota", "queue", "execute")


def _hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """A W3C-traceparent-style trace identity.

    ``trace_id`` is 32 lowercase hex chars, ``span_id`` 16; ``parent_id``
    is the span that created this context (None for a root).
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @staticmethod
    def mint() -> "TraceContext":
        return TraceContext(trace_id=_hex(16), span_id=_hex(8))

    def child(self) -> "TraceContext":
        """A new context under the same trace, parented to this span."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_hex(8), parent_id=self.span_id
        )

    def to_traceparent(self) -> str:
        return f"{_TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"

    @staticmethod
    def from_traceparent(value: str) -> "TraceContext":
        parts = value.strip().split("-")
        if len(parts) != 4:
            raise ValueError(f"malformed traceparent: {value!r}")
        version, trace_id, span_id, _flags = parts
        if version != _TRACEPARENT_VERSION:
            raise ValueError(f"unsupported traceparent version: {version!r}")
        if len(trace_id) != 32 or _nothex(trace_id) or trace_id == "0" * 32:
            raise ValueError(f"bad trace_id in traceparent: {trace_id!r}")
        if len(span_id) != 16 or _nothex(span_id) or span_id == "0" * 16:
            raise ValueError(f"bad span_id in traceparent: {span_id!r}")
        return TraceContext(trace_id=trace_id, span_id=span_id)


def _nothex(s: str) -> bool:
    try:
        int(s, 16)
        return False
    except ValueError:
        return True


@dataclass
class Span:
    """One timed operation inside a trace.

    ``t_start``/``t_end`` are perf_counter stamps (shared machine-wide
    monotonic timebase); ``pid`` distinguishes processes in the spliced
    Chrome trace, ``lane`` the thread/worker track within a process.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    t_start: float
    t_end: float
    pid: int
    lane: str = "main"
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.t_end - self.t_start, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "pid": self.pid,
            "lane": self.lane,
        }
        if self.tags:
            d["tags"] = dict(self.tags)
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Span":
        return Span(
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            name=d["name"],
            t_start=float(d["t_start"]),
            t_end=float(d["t_end"]),
            pid=int(d.get("pid", 0)),
            lane=str(d.get("lane", "main")),
            tags=dict(d.get("tags") or {}),
        )


class _SpanHandle:
    """Context manager returned by :meth:`QueryTrace.span`."""

    __slots__ = ("_qt", "_span")

    def __init__(self, qt: "QueryTrace", span: Span) -> None:
        self._qt = qt
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    @property
    def context(self) -> TraceContext:
        return TraceContext(
            trace_id=self._span.trace_id,
            span_id=self._span.span_id,
            parent_id=self._span.parent_id,
        )

    def tag(self, **tags: Any) -> "_SpanHandle":
        self._span.tags.update(tags)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(error=exc is not None)

    def finish(self, *, error: bool = False) -> Span:
        self._span.t_end = time.perf_counter()
        if error:
            self._span.tags.setdefault("error", True)
        self._qt._commit(self._span)
        return self._span


class QueryTrace:
    """Thread-safe span collector for one query.

    The trace lives in the service process; spans produced elsewhere
    (client, process workers) are serialized as dicts and spliced in via
    :meth:`add_spans`.
    """

    def __init__(self, ctx: TraceContext, *, tenant: str = "-") -> None:
        self.ctx = ctx
        self.tenant = tenant
        # Pair a perf stamp with a wall stamp so renderers can translate
        # the shared monotonic timebase back to wall-clock time.
        self.anchor = {"perf": time.perf_counter(), "unix": time.time()}
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._open: Dict[str, Span] = {}

    @property
    def trace_id(self) -> str:
        return self.ctx.trace_id

    def span(
        self,
        name: str,
        *,
        parent: Optional[TraceContext] = None,
        lane: str = "main",
        **tags: Any,
    ) -> _SpanHandle:
        par = parent if parent is not None else self.ctx
        sp = Span(
            trace_id=self.ctx.trace_id,
            span_id=_hex(8),
            parent_id=par.span_id,
            name=name,
            t_start=time.perf_counter(),
            t_end=0.0,
            pid=os.getpid(),
            lane=lane,
            tags=dict(tags),
        )
        with self._lock:
            self._open[sp.span_id] = sp
        return _SpanHandle(self, sp)

    def _commit(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
            self._spans.append(span)

    def add_span(
        self,
        name: str,
        t_start: float,
        t_end: float,
        *,
        parent: Optional[TraceContext] = None,
        pid: Optional[int] = None,
        lane: str = "main",
        **tags: Any,
    ) -> Span:
        """Record an already-measured span (no context manager)."""
        par = parent if parent is not None else self.ctx
        sp = Span(
            trace_id=self.ctx.trace_id,
            span_id=_hex(8),
            parent_id=par.span_id,
            name=name,
            t_start=t_start,
            t_end=t_end,
            pid=os.getpid() if pid is None else pid,
            lane=lane,
            tags=dict(tags),
        )
        with self._lock:
            self._spans.append(sp)
        return sp

    def add_spans(self, spans: Iterable[Dict[str, Any]]) -> int:
        """Splice in serialized spans (from a worker or a client).

        Spans keep their own pid/lane; their trace_id is rewritten to
        this trace (workers don't know it) and orphan parents are
        re-parented under the root so the timeline stays connected.
        """
        known: set
        with self._lock:
            known = {s.span_id for s in self._spans}
            known.add(self.ctx.span_id)
        added = []
        for d in spans:
            sp = Span.from_dict(dict(d, trace_id=self.ctx.trace_id))
            added.append(sp)
            known.add(sp.span_id)
        for sp in added:
            if sp.parent_id is None or sp.parent_id not in known:
                sp.parent_id = self.ctx.span_id
        with self._lock:
            self._spans.extend(added)
        return len(added)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def open_spans(self) -> List[Span]:
        """Snapshot of started-but-unfinished spans (for crash dumps)."""
        now = time.perf_counter()
        with self._lock:
            out = []
            for sp in self._open.values():
                cp = Span(**{**sp.to_dict(), "tags": dict(sp.tags, open=True)})
                cp.t_end = now
                out.append(cp)
            return out

    def stage_walls(self) -> Dict[str, float]:
        """Total wall per broker pipeline stage (``broker.<stage>`` spans)."""
        walls: Dict[str, float] = {}
        for sp in self.spans():
            if sp.name.startswith("broker."):
                stage = sp.name.split(".", 1)[1]
                walls[stage] = walls.get(stage, 0.0) + sp.duration
        return walls

    def to_doc(self, **extra: Any) -> Dict[str, Any]:
        """A JSON-safe document for the trace store / ``/api/trace``."""
        spans = sorted(self.spans(), key=lambda s: (s.t_start, s.t_end))
        doc: Dict[str, Any] = {
            "trace_id": self.ctx.trace_id,
            "root_span_id": self.ctx.span_id,
            "tenant": self.tenant,
            "anchor": dict(self.anchor),
            "spans": [s.to_dict() for s in spans],
        }
        doc.update(extra)
        return doc


# ---------------------------------------------------------------------------
# Service-side tracer: bounded store + per-tenant SLO accounting.
# ---------------------------------------------------------------------------


class QueryTracer:
    """Owns finished traces and per-tenant SLO metrics for one service."""

    def __init__(self, registry=None, *, capacity: int = 512) -> None:
        from .metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

        self.registry = registry if registry is not None else MetricsRegistry()
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._store: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._tenants: Dict[str, Dict[str, Any]] = {}
        self.m_stage = self.registry.histogram(
            "midas_slo_stage_seconds",
            "Per-tenant, per-stage query latency",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self.m_errors = self.registry.counter(
            "midas_tenant_errors_total", "Per-tenant query errors by type"
        )
        self.m_cache_hits = self.registry.counter(
            "midas_tenant_cache_hits_total", "Per-tenant result-cache hits"
        )
        self.m_traces = self.registry.counter(
            "midas_traces_total", "Traces finished, by outcome"
        )

    # -- trace lifecycle -------------------------------------------------

    def begin(self, ctx: TraceContext, *, tenant: str = "-") -> QueryTrace:
        return QueryTrace(ctx, tenant=tenant)

    def finish(
        self,
        qt: QueryTrace,
        *,
        outcome: str = "ok",
        error: Optional[str] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Store the finished trace and fold its stages into the SLOs."""
        doc = qt.to_doc(outcome=outcome, error=error, **extra)
        walls = qt.stage_walls()
        doc["stage_walls"] = walls
        tenant = qt.tenant
        exemplar = {"trace_id": qt.trace_id}
        for stage, wall in walls.items():
            if stage in SLO_STAGES:
                self.m_stage.labels(tenant=tenant, stage=stage).observe(
                    wall, exemplar=exemplar
                )
        self.m_traces.labels(outcome=outcome).inc()
        tstat = self._tenant(tenant)
        with self._lock:
            tstat["queries"] += 1
            if outcome == "cache_hit":
                tstat["cache_hits"] += 1
            elif outcome == "quota":
                tstat["rejected"] += 1
                tstat["errors"] += 1
            elif outcome not in ("ok", "coalesced"):
                tstat["errors"] += 1
            tstat["last_trace_id"] = qt.trace_id
            self._store[qt.trace_id] = doc
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
        if outcome == "cache_hit":
            self.m_cache_hits.labels(tenant=tenant).inc()
        elif outcome not in ("ok", "coalesced"):
            self.m_errors.labels(tenant=tenant, type=outcome).inc()
        return doc

    def note_rejected(self, tenant: str, reason: str) -> None:
        self.m_errors.labels(tenant=tenant, type=reason).inc()
        tstat = self._tenant(tenant)
        with self._lock:
            tstat["rejected"] += 1

    def _tenant(self, tenant: str) -> Dict[str, Any]:
        with self._lock:
            if tenant not in self._tenants:
                self._tenants[tenant] = {
                    "queries": 0,
                    "cache_hits": 0,
                    "errors": 0,
                    "rejected": 0,
                    "last_trace_id": None,
                }
            return self._tenants[tenant]

    # -- queries ---------------------------------------------------------

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            doc = self._store.get(trace_id)
            return json.loads(json.dumps(doc)) if doc is not None else None

    def ingest(self, trace_id: str, spans: List[Dict[str, Any]]) -> int:
        """Splice externally produced spans (e.g. client-side) into a
        stored trace.  Returns the number of spans accepted."""
        with self._lock:
            doc = self._store.get(trace_id)
            if doc is None:
                return 0
            known = {s["span_id"] for s in doc["spans"]}
            known.add(doc["root_span_id"])
            added = 0
            for d in spans:
                try:
                    sp = Span.from_dict(dict(d, trace_id=trace_id))
                except (KeyError, TypeError, ValueError):
                    continue
                if sp.span_id in known:
                    continue
                if sp.parent_id is None or sp.parent_id not in known:
                    sp.parent_id = doc["root_span_id"]
                doc["spans"].append(sp.to_dict())
                known.add(sp.span_id)
                added += 1
            doc["spans"].sort(key=lambda s: (s["t_start"], s["t_end"]))
            return added

    def tenant_slos(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {t: dict(v) for t, v in self._tenants.items()}

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "stored_traces": len(self._store),
                "capacity": self.capacity,
                "tenants": {t: dict(v) for t, v in self._tenants.items()},
            }


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

_FLIGHT_ENV = "REPRO_FLIGHT_DIR"


class FlightRecorder:
    """Bounded in-memory ring of recent notable events.

    ``record()`` is cheap (deque append under a lock); ``dump()``
    snapshots the ring to ``$REPRO_FLIGHT_DIR/flight_<reason>_<pid>_<n>.json``
    when that env var points at a directory, else keeps the snapshot on
    ``last_dump`` so tests and in-process consumers can inspect it
    without any filesystem side effects.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._dumps = 0
        self.last_dump: Optional[Dict[str, Any]] = None
        self.last_dump_path: Optional[str] = None

    def record(self, kind: str, **fields: Any) -> None:
        evt = {"t": time.perf_counter(), "unix": time.time(), "kind": kind}
        evt.update(fields)
        with self._lock:
            self._ring.append(evt)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(
        self,
        reason: str,
        *,
        extra: Optional[Dict[str, Any]] = None,
        directory: Optional[str] = None,
    ) -> Optional[str]:
        """Snapshot the ring.  Returns the path written, or None when no
        dump directory is configured (snapshot kept on ``last_dump``)."""
        with self._lock:
            events = list(self._ring)
            self._dumps += 1
            n = self._dumps
        snap: Dict[str, Any] = {
            "reason": reason,
            "pid": os.getpid(),
            "unix": time.time(),
            "events": events,
        }
        if extra:
            snap.update(extra)
        self.last_dump = snap
        target = directory if directory is not None else os.environ.get(_FLIGHT_ENV)
        if not target:
            self.last_dump_path = None
            return None
        try:
            os.makedirs(target, exist_ok=True)
            safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in reason)
            path = os.path.join(
                target, f"flight_{safe}_{os.getpid()}_{n}.json"
            )
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(snap, fh, indent=2, sort_keys=True, default=str)
            self.last_dump_path = path
            return path
        except OSError:
            self.last_dump_path = None
            return None

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_flight_lock = threading.Lock()
_flight: Optional[FlightRecorder] = None


def get_flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder (created on first use)."""
    global _flight
    with _flight_lock:
        if _flight is None:
            _flight = FlightRecorder()
        return _flight


def reset_flight_recorder() -> None:
    """Drop the process-wide recorder (test isolation)."""
    global _flight
    with _flight_lock:
        _flight = None


# ---------------------------------------------------------------------------
# Rendering: Chrome trace splice + text timeline
# ---------------------------------------------------------------------------


def trace_to_chrome(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a trace document into one Chrome ``traceEvents`` object.

    Each distinct span pid becomes a Chrome process (workers show up as
    their own pids); lanes become threads.  Events are complete ("X")
    events on the shared perf_counter timebase, shifted so the earliest
    span starts at ts=0, emitted sorted by (ts, dur) so the stream
    passes :func:`repro.obs.chrome_trace.validate_chrome_trace`.
    """
    spans = [Span.from_dict(d) for d in doc.get("spans", [])]
    events: List[Dict[str, Any]] = []
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "metadata": {"trace_id": doc.get("trace_id")}}
    t0 = min(s.t_start for s in spans)
    pids = sorted({s.pid for s in spans})
    service_pid = doc.get("service_pid")
    lanes = sorted({(s.pid, s.lane) for s in spans})
    for pid in pids:
        label = f"pid {pid}"
        if service_pid is not None and pid == service_pid:
            label = f"service (pid {pid})"
        elif any(s.pid == pid and s.name.startswith("client.") for s in spans):
            label = f"client (pid {pid})"
        elif any(s.pid == pid and s.name.startswith("worker.") for s in spans):
            label = f"worker (pid {pid})"
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    tid_of: Dict[Tuple[int, str], int] = {}
    for pid, lane in lanes:
        tid = len([1 for (p, _l) in tid_of if p == pid]) + 1
        tid_of[(pid, lane)] = tid
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": lane},
        })
    xevents = []
    for s in sorted(spans, key=lambda s: (s.t_start, s.t_end)):
        args: Dict[str, Any] = {"span_id": s.span_id}
        if s.parent_id:
            args["parent_id"] = s.parent_id
        if s.tags:
            args.update({str(k): v for k, v in s.tags.items()})
        xevents.append({
            "name": s.name,
            "ph": "X",
            "pid": s.pid,
            "tid": tid_of[(s.pid, s.lane)],
            "ts": (s.t_start - t0) * 1e6,
            "dur": s.duration * 1e6,
            "cat": s.name.split(".", 1)[0],
            "args": args,
        })
    events.extend(xevents)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "trace_id": doc.get("trace_id"),
            "tenant": doc.get("tenant"),
            "outcome": doc.get("outcome"),
        },
    }


def render_timeline(doc: Dict[str, Any], *, width: int = 72) -> str:
    """Human-readable tree timeline of one trace document."""
    spans = [Span.from_dict(d) for d in doc.get("spans", [])]
    lines: List[str] = []
    trace_id = doc.get("trace_id", "?")
    lines.append(f"trace {trace_id}  tenant={doc.get('tenant', '-')}  "
                 f"outcome={doc.get('outcome', '?')}")
    anchor = doc.get("anchor") or {}
    if anchor.get("unix") is not None:
        wall = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(anchor["unix"])
        )
        lines.append(f"  started {wall}")
    if not spans:
        lines.append("  (no spans)")
        return "\n".join(lines)
    t0 = min(s.t_start for s in spans)
    t1 = max(s.t_end for s in spans)
    total = max(t1 - t0, 1e-9)
    children: Dict[Optional[str], List[Span]] = {}
    ids = {s.span_id for s in spans}
    for s in spans:
        key = s.parent_id if s.parent_id in ids else None
        children.setdefault(key, []).append(s)
    for v in children.values():
        v.sort(key=lambda s: (s.t_start, s.t_end))
    name_w = max(
        (len(s.name) + 2 * _depth(s, spans, ids) for s in spans), default=20
    )
    name_w = min(max(name_w, 20), 44)
    barw = max(width - name_w - 26, 10)

    def emit(s: Span, depth: int) -> None:
        off = int((s.t_start - t0) / total * barw)
        length = max(int(s.duration / total * barw), 1)
        length = min(length, barw - off) or 1
        bar = " " * off + "#" * length
        label = ("  " * depth + s.name)[:name_w]
        pidmark = f"pid {s.pid}"
        lines.append(
            f"  {label:<{name_w}} {_ms(s.t_start - t0):>9} {_ms(s.duration):>9}"
            f"  {pidmark:>9}  |{bar:<{barw}}|"
        )
        for c in children.get(s.span_id, []):
            emit(c, depth + 1)

    lines.append(
        f"  {'span':<{name_w}} {'start':>9} {'dur':>9}  {'pid':>9}  "
        f"|{'timeline':<{barw}}|"
    )
    for root in children.get(None, []):
        emit(root, 0)
    walls = doc.get("stage_walls") or {}
    if walls:
        parts = ", ".join(
            f"{k}={_ms(v)}" for k, v in sorted(walls.items())
        )
        lines.append(f"  stage walls: {parts}")
    lines.append(f"  total: {_ms(total)} across {len(spans)} spans, "
                 f"{len({s.pid for s in spans})} process(es)")
    return "\n".join(lines)


def _depth(s: Span, spans: List[Span], ids: set) -> int:
    by_id = {x.span_id: x for x in spans}
    d = 0
    cur = s
    seen = set()
    while cur.parent_id in by_id and cur.parent_id not in seen:
        seen.add(cur.span_id)
        cur = by_id[cur.parent_id]
        d += 1
        if d > 32:
            break
    return d


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"
