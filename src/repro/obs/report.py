"""RunReport: one artifact joining trace, metrics, and the model.

A :class:`RunReport` answers the question the paper's performance
discussion keeps asking: *which phase is over the Theorem-2 model, on
which ranks, and is it compute or communication?*  It is built from

* a scoped trace recording (the run-level timeline the driver splices
  from per-phase simulator runs, or per-phase wall timings in
  sequential mode),
* a :class:`~repro.obs.metrics.MetricsSnapshot`, and
* optionally the analytic :class:`~repro.core.model.PerformanceEstimate`
  for the same ``(dataset, k, N, N1, N2)`` configuration,

and renders as text (:meth:`text`) or versioned JSON (through
:func:`repro.serialization.dump_result` / ``load_result``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.model import PerformanceEstimate
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsSnapshot
from repro.runtime.tracing import TraceEvent, TraceSummary
from repro.util.timing import format_seconds


def _phase_key(e: TraceEvent):
    s = e.scope
    if s is None or (s.round is None and s.phase is None):
        return None
    return (s.round if s.round is not None else -1,
            s.phase if s.phase is not None else -1)


def _phase_table(events: Sequence[TraceEvent]) -> List[dict]:
    """Aggregate scoped events into per-(round, phase) rows."""
    rows: Dict[tuple, dict] = {}
    for e in events:
        key = _phase_key(e)
        if key is None:
            continue
        row = rows.get(key)
        if row is None:
            s = e.scope
            row = rows[key] = {
                "round": key[0], "phase": key[1],
                "batch": s.batch, "q0": s.q0, "q1": s.q1,
                "t0": e.t_start, "t1": e.t_end,
                "compute": 0.0, "comm": 0.0, "idle": 0.0, "bytes": 0,
                "by_rank": defaultdict(lambda: {"compute": 0.0, "comm": 0.0,
                                                "idle": 0.0}),
            }
        row["t0"] = min(row["t0"], e.t_start)
        row["t1"] = max(row["t1"], e.t_end)
        if e.kind in ("compute", "charge"):
            comp = "compute"
        elif e.kind in ("send", "recv", "collective"):
            comp = "comm"
        elif e.kind == "wait":
            comp = "idle"
        else:
            continue
        row[comp] += e.duration
        if e.rank >= 0:
            row["by_rank"][e.rank][comp] += e.duration
        if e.kind == "send" and e.nbytes:
            row["bytes"] += e.nbytes
    out = []
    for key in sorted(rows):
        row = rows[key]
        row["span"] = row["t1"] - row["t0"]
        by_rank = {int(r): v for r, v in row["by_rank"].items()}
        row["by_rank"] = by_rank
        busiest = max(by_rank.items(),
                      key=lambda rv: rv[1]["compute"] + rv[1]["comm"],
                      default=(None, None))
        row["worst_rank"] = busiest[0]
        out.append(row)
    return out


@dataclass
class RunReport:
    """Joined observability view of one run (see module docs)."""

    problem: str
    mode: str
    nranks: int
    summary: TraceSummary
    phases: List[dict] = field(default_factory=list)
    metrics: Optional[MetricsSnapshot] = None
    estimate: Optional[PerformanceEstimate] = None
    meta: dict = field(default_factory=dict)
    resilience: Optional[dict] = None
    sanitizer: Optional[dict] = None
    analysis: Optional[dict] = None
    profile: Optional[dict] = None

    # ------------------------------------------------------------- builders
    @staticmethod
    def build(
        events: Sequence[TraceEvent],
        nranks: int,
        problem: str = "",
        mode: str = "",
        metrics: Optional[MetricsSnapshot] = None,
        estimate: Optional[PerformanceEstimate] = None,
        meta: Optional[dict] = None,
        resilience: Optional[dict] = None,
        sanitizer: Optional[dict] = None,
        analysis: Optional[dict] = None,
        profile: Optional[dict] = None,
        edges: Optional[Sequence] = None,
        fault_plan=None,
        n1: Optional[int] = None,
    ) -> "RunReport":
        """Build a report from a recording.

        Pass ``analysis`` as a ready-made dict, or pass the recorder's
        ``edges`` to have :func:`repro.obs.analyze.analyze_run` compute
        the critical-path / imbalance section here (``fault_plan`` and
        ``n1`` feed its straggler cross-referencing).
        """
        if analysis is None and edges is not None:
            from repro.obs.analyze import analyze_run  # local: avoid cycle

            analysis = analyze_run(
                events, edges, nranks=nranks, fault_plan=fault_plan, n1=n1
            ).to_dict()
        return RunReport(
            problem=problem,
            mode=mode,
            nranks=nranks,
            summary=TraceSummary.from_events(list(events), nranks),
            phases=_phase_table(events),
            metrics=metrics,
            estimate=estimate,
            meta=dict(meta or {}),
            resilience=dict(resilience) if resilience else None,
            sanitizer=dict(sanitizer) if sanitizer else None,
            analysis=dict(analysis) if analysis else None,
            profile=dict(profile) if profile else None,
        )

    # ------------------------------------------------------------- analysis
    def over_model(self, tolerance: float = 1.2) -> List[dict]:
        """Phases whose measured span exceeds the model's phase time.

        Each row names the phase, the measured vs modeled seconds, the
        dominant component (compute or comm), and the busiest rank —
        i.e. exactly where the run diverges from Theorem 2.  Empty when
        no estimate is attached.
        """
        if self.estimate is None:
            return []
        model_phase = self.estimate.phase_seconds
        rows = []
        for p in self.phases:
            if model_phase <= 0 or p["span"] <= tolerance * model_phase:
                continue
            dominant = "compute" if p["compute"] >= p["comm"] else "comm"
            rows.append({
                "round": p["round"],
                "phase": p["phase"],
                "measured_seconds": p["span"],
                "model_seconds": model_phase,
                "ratio": p["span"] / model_phase,
                "dominant": dominant,
                "worst_rank": p["worst_rank"],
            })
        rows.sort(key=lambda r: r["ratio"], reverse=True)
        return rows

    # ------------------------------------------------------------ renderers
    def text(self, max_phases: int = 12) -> str:
        lines = [
            f"RunReport: problem={self.problem or '?'} mode={self.mode or '?'} "
            f"ranks={self.nranks}"
        ]
        if self.meta:
            lines.append("  " + "  ".join(f"{k}={v}" for k, v in sorted(self.meta.items())))
        lines.append(self.summary.report())
        if self.summary.total_bytes:
            lines.append(f"wire bytes: {self.summary.total_bytes}")
        if self.phases:
            lines.append(f"phases ({len(self.phases)} scoped):")
            lines.append(f"  {'round':>5} {'phase':>5} {'span':>10} {'compute':>10} "
                         f"{'comm':>10} {'idle':>10} {'bytes':>8}")
            for p in self.phases[:max_phases]:
                lines.append(
                    f"  {p['round']:>5} {p['phase']:>5} "
                    f"{format_seconds(p['span']):>10} "
                    f"{format_seconds(p['compute']):>10} "
                    f"{format_seconds(p['comm']):>10} "
                    f"{format_seconds(p['idle']):>10} {p['bytes']:>8}"
                )
            if len(self.phases) > max_phases:
                lines.append(f"  ... {len(self.phases) - max_phases} more")
        if self.estimate is not None:
            est = self.estimate
            lines.append(
                f"model (Theorem 2): total {format_seconds(est.total_seconds)}  "
                f"phase {format_seconds(est.phase_seconds)}  "
                f"comm-frac {est.comm_fraction:.1%}"
            )
            over = self.over_model()
            if over:
                lines.append(f"over model (> 1.2x phase time): {len(over)} phase(s)")
                for r in over[:5]:
                    lines.append(
                        f"  round {r['round']} phase {r['phase']}: "
                        f"{format_seconds(r['measured_seconds'])} vs "
                        f"{format_seconds(r['model_seconds'])} "
                        f"({r['ratio']:.1f}x, {r['dominant']}-bound, "
                        f"worst rank {r['worst_rank']})"
                    )
            else:
                lines.append("no phase exceeds 1.2x the modeled phase time")
        if self.resilience:
            r = self.resilience
            injected = r.get("faults_injected", {})
            inj = ", ".join(f"{k}={v}" for k, v in sorted(injected.items())) or "none"
            lines.append("resilience:")
            lines.append(f"  faults injected: {inj}")
            lines.append(
                f"  phase failures: {r.get('phase_failures', 0)}  "
                f"retries: {r.get('retries', 0)}"
            )
            lines.append(
                f"  work lost {format_seconds(r.get('work_lost_seconds', 0.0))}  "
                f"recomputed {format_seconds(r.get('work_recomputed_seconds', 0.0))}  "
                f"backoff {format_seconds(r.get('backoff_seconds', 0.0))}"
            )
            lines.append(
                f"  makespan overhead "
                f"{format_seconds(r.get('makespan_overhead_seconds', 0.0))} "
                f"({r.get('overhead_fraction', 0.0):.1%} of fault-free)"
            )
        if self.analysis:
            a = self.analysis
            cp = a.get("critical_path", {})
            lines.append("analysis:")
            lines.append(
                f"  critical path: {format_seconds(cp.get('length', 0.0))} over "
                f"{cp.get('n_segments', 0)} segment(s) "
                f"({cp.get('coverage', 0.0):.1%} of makespan)"
            )
            for b in cp.get("blame", [])[:5]:
                ph = f" phase {b['phase']}" if b.get("phase") is not None else ""
                lines.append(
                    f"    rank {b['rank']}{ph} {b['kind']}: "
                    f"{format_seconds(b['seconds'])} ({b['fraction']:.1%})"
                )
            lines.append(
                f"  imbalance (busy t_max/t_avg): "
                f"{a.get('imbalance_ratio', 1.0):.2f}"
            )
            sl = a.get("slack", {})
            if sl.get("count"):
                lines.append(
                    f"  off-path slack: {sl['count']} event(s), median "
                    f"{format_seconds(sl['p50'])}, p90 {format_seconds(sl['p90'])}"
                )
            for srow in a.get("stragglers", [])[:4]:
                tag = " [injected fault]" if srow.get("injected") else ""
                lines.append(
                    f"  straggler: rank {srow['rank']} "
                    f"({srow['ratio_to_median']:.2f}x median busy){tag}"
                )
        if self.profile:
            pr = self.profile
            lines.append(
                f"profile (wall): total {format_seconds(pr.get('wall_total', 0.0))} "
                f"across {pr.get('spans', 0)} span(s), "
                f"{pr.get('threads', 0)} thread(s)"
            )
            for ph, secs in sorted(pr.get("phases", {}).items(),
                                   key=lambda kv: kv[1], reverse=True):
                lines.append(f"  {ph}: {format_seconds(secs)}")
            for row in pr.get("ops", [])[:6]:
                site = f" {row['callsite']}" if row.get("callsite") else ""
                lines.append(
                    f"  {row['phase']}/{row['op']}{site}: "
                    f"{format_seconds(row['seconds'])} over {row['calls']} call(s)"
                )
            if pr.get("dropped_spans"):
                lines.append(f"  ({pr['dropped_spans']} span(s) dropped)")
        if self.sanitizer:
            sn = self.sanitizer
            lines.append("sanitizer:")
            status = "clean" if sn.get("clean", True) else "VIOLATIONS"
            lines.append(
                f"  {status}: {sn.get('ops_checked', 0)} ops across "
                f"{sn.get('runs', 0)} run(s)"
            )
            for kind, n in sorted(sn.get("violations", {}).items()):
                lines.append(f"  {kind}: {n}")
            for finding in sn.get("findings", [])[:8]:
                lines.append(f"    {finding}")
        if self.metrics is not None:
            lines.append(f"metrics: {len(self.metrics.metrics)} families "
                         f"({', '.join(self.metrics.names()[:6])}"
                         f"{', ...' if len(self.metrics.metrics) > 6 else ''})")
        return "\n".join(lines)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        from repro.serialization import SCHEMA_VERSION, result_to_dict

        s = self.summary
        phases = []
        for p in self.phases:
            q = dict(p)
            q["by_rank"] = {str(r): v for r, v in p["by_rank"].items()}
            phases.append(q)
        return {
            "type": "RunReport",
            "schema_version": SCHEMA_VERSION,
            "problem": self.problem,
            "mode": self.mode,
            "nranks": self.nranks,
            "summary": {
                "nranks": s.nranks,
                "compute": s.compute.tolist(),
                "comm": s.comm.tolist(),
                "idle": s.idle.tolist(),
                "makespan": s.makespan,
                "bytes_sent": s.bytes_sent.tolist(),
                "other": s.other,
            },
            "phases": phases,
            "metrics": self.metrics.to_dict() if self.metrics is not None else None,
            "estimate": (result_to_dict(self.estimate)
                         if self.estimate is not None else None),
            "meta": self.meta,
            "resilience": self.resilience,
            "sanitizer": self.sanitizer,
            "analysis": self.analysis,
            "profile": self.profile,
        }

    @staticmethod
    def from_dict(data: dict) -> "RunReport":
        from repro.serialization import result_from_dict

        if data.get("type") != "RunReport":
            raise ConfigurationError("not a serialized RunReport")
        s = data["summary"]
        summary = TraceSummary(
            nranks=s["nranks"],
            compute=np.asarray(s["compute"], dtype=np.float64),
            comm=np.asarray(s["comm"], dtype=np.float64),
            idle=np.asarray(s["idle"], dtype=np.float64),
            makespan=s["makespan"],
            bytes_sent=(np.asarray(s["bytes_sent"], dtype=np.int64)
                        if s.get("bytes_sent") else None),
            other=s.get("other", 0.0),
        )
        phases = []
        for p in data.get("phases", []):
            q = dict(p)
            q["by_rank"] = {int(r): v for r, v in p.get("by_rank", {}).items()}
            phases.append(q)
        metrics = (MetricsSnapshot.from_dict(data["metrics"])
                   if data.get("metrics") else None)
        estimate = (result_from_dict(data["estimate"])
                    if data.get("estimate") else None)
        return RunReport(
            problem=data.get("problem", ""),
            mode=data.get("mode", ""),
            nranks=data["nranks"],
            summary=summary,
            phases=phases,
            metrics=metrics,
            estimate=estimate,
            meta=data.get("meta", {}),
            resilience=data.get("resilience"),
            sanitizer=data.get("sanitizer"),
            analysis=data.get("analysis"),
            profile=data.get("profile"),
        )
