"""Run-history store: a regression-tracking trajectory of runs.

A perf regression that ships silently is the failure mode this module
closes: every instrumented run distills into a compact, flat
:class:`RunRecord` keyed by ``(scenario, git_sha, config_hash)`` and is
appended to a :class:`RunStore` — one JSON object per line, append-only,
so records written by old code stay readable forever.

``RunRecord.values`` is a flat ``{metric_name: float}`` map where, by
convention, **higher is worse** (virtual seconds, bytes, imbalance
ratios).  :func:`compare_runs` diffs two records (or a record against a
rolling baseline of its predecessors) and flags any metric beyond a
configurable tolerance; the result renders as JSON and as markdown for
CI logs and PR comments.

JSONL schema (one record per line)::

    {"type": "RunRecord", "version": 1,
     "scenario": "perf-smoke", "git_sha": "a3c12cf",
     "config_hash": "9f2c01d44a1b", "timestamp": "2026-08-06T12:00:00Z",
     "problem": "k-path", "mode": "simulated", "nranks": 8,
     "values": {"makespan": 3.7e-05, "compute": ..., "comm": ...,
                "span:r0p1": ..., "critical_path_length": ...},
     "meta": {"n1": "4", "k": "5"}}

CLI: ``repro history runs.jsonl`` lists the trajectory; ``repro compare
runs.jsonl --scenario S --tolerance 0.25`` exits non-zero on a
regression (the CI perf gate).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.util.log import get_logger

try:  # POSIX-only; appends degrade to unlocked writes elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

_LOG = get_logger(__name__)

PathLike = Union[str, Path]

RUN_RECORD_VERSION = 1

#: meta flags marking a record as non-comparable provenance-wise: resumed
#: runs, watchdog-degraded partials, and interrupted/truncated flushes
#: must never silently enter a rolling baseline.
PROVENANCE_FLAGS = ("resumed_from", "degraded", "truncated")

_GIT_SHA_CACHE: Optional[str] = None


def current_git_sha(default: str = "unknown") -> str:
    """The current commit's short SHA: ``$GIT_SHA``/``$GITHUB_SHA`` if
    set (CI), else ``git rev-parse``, else ``default``.  Cached."""
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is not None:
        return _GIT_SHA_CACHE
    sha = os.environ.get("GIT_SHA") or os.environ.get("GITHUB_SHA")
    if not sha:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                capture_output=True, text=True, timeout=5, check=False,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            sha = None
    _GIT_SHA_CACHE = (sha or default)[:12]
    return _GIT_SHA_CACHE


def config_fingerprint(config: Mapping) -> str:
    """A stable 12-hex-char hash of a configuration mapping.

    Keys are sorted and values stringified, so logically identical
    configurations hash identically across runs and python versions.
    """
    canon = json.dumps(
        {str(k): str(v) for k, v in config.items()}, sort_keys=True
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


def _utc_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class RunRecord:
    """One run's compact perf fingerprint (see module docs).

    ``values`` holds flat numeric metrics where higher means worse;
    ``meta`` holds small string context (k, n1, dataset, ...).  Runs
    executed under the detection service also carry the originating
    query's ``meta["trace_id"]`` so a regression flagged by
    ``repro compare`` can be joined back to its end-to-end timeline
    via ``repro trace <trace_id>``.
    """

    scenario: str
    git_sha: str = "unknown"
    config_hash: str = ""
    timestamp: str = field(default_factory=_utc_stamp)
    problem: str = ""
    mode: str = ""
    nranks: int = 1
    values: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------- builders
    @staticmethod
    def from_report(
        report,
        scenario: str,
        git_sha: Optional[str] = None,
        config: Optional[Mapping] = None,
        config_hash: Optional[str] = None,
    ) -> "RunRecord":
        """Distill a :class:`~repro.obs.report.RunReport` into a record.

        Captures the makespan, the compute/comm/idle totals, wire bytes,
        each scoped phase's span (``span:r<round>p<phase>``), — when
        the report carries an analysis section — the critical-path
        length and the overall imbalance ratio, and — when it carries a
        wall-clock ``profile`` section — a ``wall_*`` family (total plus
        per profiler phase) so the perf gate tracks real seconds, not
        just virtual time.
        """
        s = report.summary
        values: Dict[str, float] = {
            "makespan": float(s.makespan),
            "compute": s.total_compute,
            "comm": s.total_comm,
            "idle": float(s.idle.sum()),
            "bytes": float(s.total_bytes),
        }
        for p in report.phases:
            values[f"span:r{p['round']}p{p['phase']}"] = float(p["span"])
        if report.analysis:
            cp = report.analysis.get("critical_path", {})
            if cp:
                values["critical_path_length"] = float(cp.get("length", 0.0))
            values["imbalance_ratio"] = float(
                report.analysis.get("imbalance_ratio", 1.0)
            )
        if report.profile:
            values["wall_total"] = float(report.profile.get("wall_total", 0.0))
            for ph, secs in report.profile.get("phases", {}).items():
                values[f"wall_{ph}"] = float(secs)
        return RunRecord(
            scenario=scenario,
            git_sha=git_sha if git_sha is not None else current_git_sha(),
            config_hash=(config_hash if config_hash is not None
                         else config_fingerprint(config or {})),
            problem=report.problem,
            mode=report.mode,
            nranks=report.nranks,
            values=values,
            meta={str(k): str(v) for k, v in report.meta.items()},
        )

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "type": "RunRecord",
            "version": RUN_RECORD_VERSION,
            "scenario": self.scenario,
            "git_sha": self.git_sha,
            "config_hash": self.config_hash,
            "timestamp": self.timestamp,
            "problem": self.problem,
            "mode": self.mode,
            "nranks": self.nranks,
            "values": {k: float(v) for k, v in sorted(self.values.items())},
            "meta": dict(self.meta),
        }

    @staticmethod
    def from_dict(d: dict) -> "RunRecord":
        if d.get("type") != "RunRecord":
            raise ConfigurationError("not a serialized RunRecord")
        if "scenario" not in d:
            raise ConfigurationError("RunRecord lacks a scenario")
        return RunRecord(
            scenario=d["scenario"],
            git_sha=d.get("git_sha", "unknown"),
            config_hash=d.get("config_hash", ""),
            timestamp=d.get("timestamp", ""),
            problem=d.get("problem", ""),
            mode=d.get("mode", ""),
            nranks=int(d.get("nranks", 1)),
            values={str(k): float(v) for k, v in d.get("values", {}).items()},
            meta={str(k): str(v) for k, v in d.get("meta", {}).items()},
        )

    @property
    def provenance_flags(self) -> List[str]:
        """Which of :data:`PROVENANCE_FLAGS` this record's meta carries
        (flags whose value is an explicit falsy string don't count)."""
        out = []
        for flag in PROVENANCE_FLAGS:
            v = self.meta.get(flag, "")
            if v and v.lower() not in ("false", "0", "no", ""):
                out.append(flag)
        return out

    def describe(self) -> str:
        mk = self.values.get("makespan")
        mk_s = f"makespan {mk:.6g}s" if mk is not None else f"{len(self.values)} metric(s)"
        return (f"{self.timestamp}  {self.scenario:<20} sha={self.git_sha:<12} "
                f"cfg={self.config_hash or '-':<12} {mk_s}")


class RunStore:
    """Append-only JSONL trajectory of :class:`RunRecord`\\ s."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> None:
        """Append one record as a single ``O_APPEND`` write under an
        ``fcntl`` lock, so concurrent writers never interleave records
        and a crash mid-append can damage at most the trailing line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = (json.dumps(record.to_dict()) + "\n").encode("utf-8")
        fd = os.open(str(self.path),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, payload)
        finally:
            # closing the fd releases the flock
            os.close(fd)

    def append_many(self, records) -> int:
        """Append a batch of records under one lock/open.

        The detection service's coordinator sweep drains every completed
        query since the last tick in one call — per-record opens would
        turn a busy sweep into an fsync storm.  Returns the number of
        records written (0 skips the open entirely).
        """
        records = list(records)
        if not records:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(
            json.dumps(r.to_dict()) + "\n" for r in records
        ).encode("utf-8")
        fd = os.open(str(self.path),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, payload)
        finally:
            os.close(fd)
        return len(records)

    def load(self, scenario: Optional[str] = None) -> List[RunRecord]:
        """All records (oldest first), optionally filtered by scenario.

        A truncated *final* line — the signature of a process killed
        mid-append — is skipped with a warning instead of poisoning
        every later ``history``/``compare``; malformed lines anywhere
        else still raise (they indicate real corruption, not a crash).
        """
        if not self.path.exists():
            return []
        out = []
        lines = self.path.read_text().splitlines()
        last_lineno = len(lines)
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = RunRecord.from_dict(json.loads(line))
            except json.JSONDecodeError as exc:
                if lineno == last_lineno:
                    _LOG.warning(
                        "%s:%d: skipping truncated trailing record "
                        "(interrupted append?): %s", self.path, lineno, exc)
                    continue
                raise ConfigurationError(
                    f"{self.path}:{lineno}: bad RunRecord line: {exc}"
                ) from exc
            except (ConfigurationError, ValueError) as exc:
                raise ConfigurationError(
                    f"{self.path}:{lineno}: bad RunRecord line: {exc}"
                ) from exc
            if scenario is None or rec.scenario == scenario:
                out.append(rec)
        return out

    def scenarios(self) -> List[str]:
        seen = dict.fromkeys(r.scenario for r in self.load())
        return list(seen)

    def latest(self, scenario: Optional[str] = None) -> Optional[RunRecord]:
        recs = self.load(scenario)
        return recs[-1] if recs else None

    def rolling_baseline(
        self, scenario: str, window: int = 5, before: Optional[int] = None
    ) -> Optional[RunRecord]:
        """Mean of the up-to-``window`` records preceding the newest.

        ``before`` caps which records count (an index into the
        scenario's history; default: all but the newest).  Returns
        ``None`` when no prior record exists.  Records carrying
        provenance flags (resumed, degraded, truncated) are excluded —
        a partial run must never drag the baseline down.
        """
        recs = self.load(scenario)
        if before is None:
            before = len(recs) - 1
        clean = [r for r in recs[:max(0, before)] if not r.provenance_flags]
        prior = clean[-window:]
        if not prior:
            return None
        keys = set(prior[0].values)
        for r in prior[1:]:
            keys &= set(r.values)
        values = {k: sum(r.values[k] for r in prior) / len(prior) for k in keys}
        return RunRecord(
            scenario=scenario,
            git_sha=f"baseline({len(prior)})",
            config_hash=prior[-1].config_hash,
            timestamp=prior[-1].timestamp,
            problem=prior[-1].problem,
            mode=prior[-1].mode,
            nranks=prior[-1].nranks,
            values=values,
            meta={"baseline_of": str(len(prior))},
        )


# ------------------------------------------------------------- comparison
@dataclass
class RunComparison:
    """The diff of two records at a tolerance (see :func:`compare_runs`)."""

    ref: RunRecord
    new: RunRecord
    tolerance: float
    rows: List[dict] = field(default_factory=list)

    @property
    def regressions(self) -> List[dict]:
        return [r for r in self.rows if r["status"] == "REGRESSED"]

    @property
    def improvements(self) -> List[dict]:
        return [r for r in self.rows if r["status"] == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "type": "RunComparison",
            "scenario": self.new.scenario,
            "ref": {"git_sha": self.ref.git_sha, "timestamp": self.ref.timestamp,
                    "config_hash": self.ref.config_hash},
            "new": {"git_sha": self.new.git_sha, "timestamp": self.new.timestamp,
                    "config_hash": self.new.config_hash},
            "tolerance": self.tolerance,
            "ok": self.ok,
            "n_regressions": len(self.regressions),
            "rows": self.rows,
        }

    def markdown(self, max_rows: int = 40) -> str:
        """Human-readable markdown summary (CI logs, PR comments)."""
        verdict = ("**OK** — no metric regressed" if self.ok else
                   f"**REGRESSION** — {len(self.regressions)} metric(s) beyond "
                   f"tolerance")
        lines = [
            f"## repro compare — scenario `{self.new.scenario}`",
            "",
            f"baseline `{self.ref.git_sha}` ({self.ref.timestamp}) vs "
            f"current `{self.new.git_sha}` ({self.new.timestamp}), "
            f"tolerance {self.tolerance:.0%}",
            "",
            verdict,
            "",
            "| metric | baseline | current | ratio | status |",
            "|---|---:|---:|---:|---|",
        ]
        shown = sorted(
            self.rows,
            key=lambda r: (r["status"] != "REGRESSED", -abs(r["ratio"] - 1.0)),
        )[:max_rows]
        for r in shown:
            lines.append(
                f"| {r['metric']} | {r['ref']:.6g} | {r['new']:.6g} "
                f"| {r['ratio']:.3f} | {r['status']} |"
            )
        if len(self.rows) > max_rows:
            lines.append(f"| ... {len(self.rows) - max_rows} more | | | | |")
        if self.new.config_hash and self.ref.config_hash and \
                self.new.config_hash != self.ref.config_hash:
            lines.append("")
            lines.append(
                f"⚠ config hashes differ (`{self.ref.config_hash}` vs "
                f"`{self.new.config_hash}`) — the runs may not be comparable."
            )
        for side, rec in (("baseline", self.ref), ("current", self.new)):
            flags = rec.provenance_flags
            if flags:
                lines.append("")
                lines.append(
                    f"⚠ {side} record carries provenance flag(s) "
                    f"{', '.join(f'`{f}`' for f in flags)} — it is a "
                    f"resumed/partial run, not a clean measurement."
                )
        return "\n".join(lines)


def compare_runs(
    ref: RunRecord,
    new: RunRecord,
    tolerance: float = 0.25,
    min_delta: float = 1e-12,
    wall_tolerance: Optional[float] = None,
) -> RunComparison:
    """Diff every metric present in both records.

    A metric REGRESSED when ``new > ref * (1 + tolerance)`` (and the
    absolute delta exceeds ``min_delta``, guarding near-zero noise);
    symmetric shrinkage marks it ``improved``; everything else is
    ``ok``.  Metrics present on only one side are listed as ``added`` /
    ``removed`` and never fail the comparison.

    ``wall_*`` metrics are real wall-clock seconds — noisy on shared
    hosts, unlike the bit-deterministic virtual metrics — so by default
    they are reported as ``noted`` and never fail.  Pass
    ``wall_tolerance`` (typically much looser than ``tolerance``) to
    gate them too.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    if wall_tolerance is not None and wall_tolerance < 0:
        raise ConfigurationError(
            f"wall_tolerance must be >= 0, got {wall_tolerance}"
        )
    rows = []
    for key in sorted(set(ref.values) | set(new.values)):
        rv = ref.values.get(key)
        nv = new.values.get(key)
        if rv is None or nv is None:
            rows.append({
                "metric": key,
                "ref": rv if rv is not None else math.nan,
                "new": nv if nv is not None else math.nan,
                "ratio": math.nan,
                "status": "added" if rv is None else "removed",
            })
            continue
        if rv > 0:
            ratio = nv / rv
        else:
            ratio = 1.0 if nv <= min_delta else math.inf
        is_wall = key.startswith("wall_")
        tol = wall_tolerance if is_wall else tolerance
        if is_wall and tol is None:
            status = "noted"
        elif nv > rv * (1.0 + tol) and nv - rv > min_delta:
            status = "REGRESSED"
        elif nv < rv * (1.0 - tol) and rv - nv > min_delta:
            status = "improved"
        else:
            status = "ok"
        rows.append({"metric": key, "ref": rv, "new": nv, "ratio": ratio,
                     "status": status})
    return RunComparison(ref=ref, new=new, tolerance=tolerance, rows=rows)


def compare_to_baseline(
    store: RunStore,
    scenario: str,
    tolerance: float = 0.25,
    window: int = 5,
    wall_tolerance: Optional[float] = None,
) -> RunComparison:
    """Compare a scenario's newest record against its rolling baseline."""
    latest = store.latest(scenario)
    if latest is None:
        raise ConfigurationError(
            f"store {store.path} has no records for scenario {scenario!r}"
        )
    base = store.rolling_baseline(scenario, window=window)
    if base is None:
        raise ConfigurationError(
            f"scenario {scenario!r} has a single record — nothing to compare "
            f"against (need at least 2)"
        )
    return compare_runs(base, latest, tolerance=tolerance,
                        wall_tolerance=wall_tolerance)


__all__ = [
    "PROVENANCE_FLAGS",
    "RunComparison",
    "RunRecord",
    "RunStore",
    "compare_runs",
    "compare_to_baseline",
    "config_fingerprint",
    "current_git_sha",
]
