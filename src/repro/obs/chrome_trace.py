"""Export trace recordings to Chrome / Perfetto ``trace_event`` JSON.

Any list of :class:`~repro.runtime.tracing.TraceEvent` (one simulator
run, or a whole detection spliced together by the driver) becomes a
timeline loadable in ``chrome://tracing`` or https://ui.perfetto.dev:

* one virtual thread per rank (plus a ``coordinator`` thread for
  events charged to rank ``-1``, e.g. the round-final reduce);
* duration (``ph: "X"``) events named after their structured
  :class:`~repro.runtime.tracing.Scope`, with the schedule coordinates
  in ``args`` so Perfetto's query engine can slice by round/phase;
* a cumulative ``comm bytes`` counter track (``ph: "C"``) fed by the
  wire-byte accounting of :mod:`repro.runtime.comm`, one series per
  sending rank.

Timestamps are microseconds of *virtual* time (the simulator's modeled
clocks), or wall time for sequential recordings — the format does not
care, and neither does the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.runtime.tracing import TraceEvent

PathLike = Union[str, Path]

_PID = 1  # single virtual process; ranks are threads within it

#: event kinds -> trace_event category (used for colouring/filtering)
_CATEGORIES = {
    "compute": "compute",
    "charge": "compute",
    "send": "comm",
    "recv": "comm",
    "collective": "comm",
    "wait": "idle",
    "fault": "fault",
}


def _event_name(e: TraceEvent) -> str:
    if e.scope is not None:
        desc = e.scope.describe()
        if desc:
            return f"{e.kind} {desc}"
    return f"{e.kind} {e.info}".rstrip() if e.info else e.kind


def _tid(rank: int, nranks: int) -> int:
    return rank if rank >= 0 else nranks  # coordinator thread after ranks


def to_chrome_trace(
    events: Sequence[TraceEvent],
    nranks: Optional[int] = None,
    meta: Optional[dict] = None,
    pid: int = _PID,
    process_name: str = "midas",
) -> dict:
    """Build the ``trace_event`` JSON object for a recording.

    ``nranks`` sizes the thread list; inferred from the events when
    omitted.  ``meta`` lands in ``otherData`` (run parameters etc.).
    ``pid``/``process_name`` label the Chrome process the recording's
    threads live in — callers splicing several recordings into one
    multi-process trace (e.g. qtrace's cross-process query timelines)
    give each its own.
    """
    events = list(events)
    if nranks is None:
        nranks = max((e.rank + 1 for e in events if e.rank >= 0), default=1)
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")

    _PID = int(pid)  # noqa: N806 - shadows the module default on purpose
    out: List[dict] = [
        {"ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
    ]
    has_coordinator = any(e.rank < 0 for e in events)
    for r in range(nranks):
        out.append({"ph": "M", "pid": _PID, "tid": r, "name": "thread_name",
                    "args": {"name": f"rank {r}"}})
        out.append({"ph": "M", "pid": _PID, "tid": r, "name": "thread_sort_index",
                    "args": {"sort_index": r}})
    if has_coordinator:
        out.append({"ph": "M", "pid": _PID, "tid": nranks, "name": "thread_name",
                    "args": {"name": "coordinator"}})
        out.append({"ph": "M", "pid": _PID, "tid": nranks,
                    "name": "thread_sort_index", "args": {"sort_index": nranks}})

    cumulative: Dict[int, int] = {}
    for e in sorted(events, key=lambda ev: (ev.t_start, ev.t_end)):
        args: dict = {}
        if e.scope is not None:
            args.update(e.scope.to_dict())
        if e.info:
            args["info"] = e.info
        if e.nbytes:
            args["nbytes"] = e.nbytes
        out.append({
            "ph": "X",
            "pid": _PID,
            "tid": _tid(e.rank, nranks),
            "name": _event_name(e),
            "cat": _CATEGORIES.get(e.kind, e.kind),
            "ts": e.t_start * 1e6,
            "dur": max(0.0, e.duration) * 1e6,
            "args": args,
        })
        if e.kind == "send" and e.nbytes:
            key = _tid(e.rank, nranks)
            cumulative[key] = cumulative.get(key, 0) + e.nbytes
            out.append({
                "ph": "C",
                "pid": _PID,
                "tid": 0,
                "name": "comm bytes",
                "ts": e.t_start * 1e6,
                "args": {f"rank{k}": v for k, v in sorted(cumulative.items())},
            })

    doc = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }
    return doc


def dump_chrome_trace(
    events: Sequence[TraceEvent],
    path: PathLike,
    nranks: Optional[int] = None,
    meta: Optional[dict] = None,
) -> None:
    """Write a recording as ``trace_event`` JSON (open in Perfetto)."""
    Path(path).write_text(json.dumps(to_chrome_trace(events, nranks, meta)))


def validate_chrome_trace(data: Union[dict, list]) -> int:
    """Validate ``trace_event`` JSON; returns the event count.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare array form; raises :class:`~repro.errors.ConfigurationError` on
    any malformed event.  Beyond per-event shape it checks stream-level
    invariants viewers rely on: timestamps of timed events must be
    monotonically non-decreasing in stream order (Perfetto's importer
    tolerates disorder; ``chrome://tracing``'s does not), and ``B``/``E``
    duration events must nest — every ``E`` matches an open ``B`` on the
    same ``(pid, tid)``, none left open at the end.  Used by the unit
    tests and the CI smoke job.
    """
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ConfigurationError("trace object lacks a 'traceEvents' list")
    elif isinstance(data, list):
        events = data
    else:
        raise ConfigurationError(f"trace must be an object or array, got {type(data).__name__}")

    last_ts: Optional[float] = None
    open_spans: Dict[tuple, List[int]] = {}  # (pid, tid) -> stack of B indices
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ConfigurationError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ConfigurationError(f"traceEvents[{i}] lacks a phase ('ph')")
        if "name" not in ev:
            raise ConfigurationError(f"traceEvents[{i}] lacks a name")
        if "pid" not in ev:
            raise ConfigurationError(f"traceEvents[{i}] lacks a pid")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                raise ConfigurationError(f"traceEvents[{i}]: metadata needs args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ConfigurationError(f"traceEvents[{i}] lacks a numeric ts")
        if last_ts is not None and ts < last_ts:
            raise ConfigurationError(
                f"traceEvents[{i}]: ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ConfigurationError(
                    f"traceEvents[{i}]: complete event needs dur >= 0"
                )
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ConfigurationError(
                    f"traceEvents[{i}]: counter event needs numeric args"
                )
        elif ph == "B":
            open_spans.setdefault((ev.get("pid"), ev.get("tid")), []).append(i)
        elif ph == "E":
            stack = open_spans.get((ev.get("pid"), ev.get("tid")))
            if not stack:
                raise ConfigurationError(
                    f"traceEvents[{i}]: 'E' with no open 'B' on "
                    f"pid={ev.get('pid')} tid={ev.get('tid')}"
                )
            stack.pop()
        elif ph not in ("I", "i", "b", "e", "n", "s", "t", "f"):
            raise ConfigurationError(f"traceEvents[{i}]: unknown phase {ph!r}")
    for (pid, tid), stack in open_spans.items():
        if stack:
            raise ConfigurationError(
                f"traceEvents[{stack[-1]}]: 'B' never closed on "
                f"pid={pid} tid={tid} ({len(stack)} open)"
            )
    return len(events)
