"""Live run telemetry: a thread-safe RunStatus and progress event bus.

Everything else in :mod:`repro.obs` is post-mortem — traces, reports,
and RunRecords materialize after a run ends.  This module is the
in-flight view: the :class:`~repro.core.engine.DetectionEngine` updates
a :class:`LiveRun` at round/batch/phase boundaries and the state is
observable three ways *while the run executes*:

* :class:`RunStatus` — a locked, always-consistent snapshot (rounds
  completed, the amplification schedule's current failure-probability
  bound, ETA, fault/retry counts, last heartbeat) served as JSON by the
  HTTP exporter's ``/status`` (see :mod:`repro.obs.http`);
* a **progress stream** — an append-only JSONL file next to the run
  (``MidasRuntime(progress_path=...)`` / CLI ``--progress-out``), one
  event per line, flushed eagerly so a crashed or interrupted run keeps
  everything emitted so far; ``repro watch`` tails it;
* **subscribers** — in-process callbacks receiving every event dict (the
  service coordinator's sweep hook).

Live gauges (``midas_live_*``) are also published into the metrics
registry, so the Prometheus ``/metrics`` endpoint shows progress too.

Event kinds on the stream: ``run_start``, ``stage_start``, ``phase``,
``round`` (carries a full status snapshot), ``restore`` (rounds
recovered from a durable checkpoint on resume), ``fault``, ``result``,
``run_end`` (carries a final snapshot).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.util.log import get_logger

_LOG = get_logger(__name__)

#: per-round success probability of the multilinear detection sieve
ROUND_FAILURE = 0.8  # = 4/5; see repro.core.schedule.rounds_for_epsilon

_TERMINAL = ("done", "failed", "interrupted", "degraded")


class RunStatus:
    """Mutable, lock-protected status of one (or more) engine runs.

    ``rounds_completed`` / ``rounds_planned`` are cumulative across every
    stage and engine run sharing this status (so the value is monotone —
    the property a polling coordinator needs); the ``stage_*`` fields
    describe the stage currently executing.  All reads go through
    :meth:`snapshot`, which is consistent under concurrent updates from
    the threaded backend's workers.
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.state = "idle"
        self.error = ""
        self.problem = ""
        self.mode = ""
        self.graph: Dict[str, int] = {}
        self.runs = 0
        self.stage = ""
        self.k = 0
        self.target_eps: Optional[float] = None
        self.stage_rounds_planned = 0
        self.stage_rounds_completed = 0
        self.rounds_planned = 0
        self.rounds_completed = 0
        self.phases_per_round = 0
        self.phases_completed = 0
        self.witness_found: Optional[bool] = None
        self.found: Optional[bool] = None
        self.virtual_seconds = 0.0
        self.eta_seconds: Optional[float] = None
        self.eta_virtual_seconds: Optional[float] = None
        self.fault_failures = 0
        self.fault_retries = 0
        self.faults_injected = 0
        self.started_at = self._clock()
        self.last_heartbeat = self.started_at

    # every mutator below is called with self._lock held by LiveRun
    def heartbeat(self) -> None:
        self.last_heartbeat = self._clock()

    @property
    def p_failure_bound(self) -> float:
        """Upper bound on a miss after the current stage's completed
        rounds: ``(4/5)^rounds`` (1.0 before any round finishes)."""
        return ROUND_FAILURE ** self.stage_rounds_completed

    def snapshot(self) -> dict:
        """A consistent plain-dict copy (what ``/status`` serves)."""
        with self._lock:
            now = self._clock()
            return {
                "state": self.state,
                "error": self.error,
                "problem": self.problem,
                "mode": self.mode,
                "graph": dict(self.graph),
                "runs": self.runs,
                "stage": self.stage,
                "k": self.k,
                "target_eps": self.target_eps,
                "rounds_planned": self.rounds_planned,
                "rounds_completed": self.rounds_completed,
                "stage_rounds_planned": self.stage_rounds_planned,
                "stage_rounds_completed": self.stage_rounds_completed,
                "phases_per_round": self.phases_per_round,
                "phases_completed": self.phases_completed,
                "p_failure_bound": self.p_failure_bound,
                "witness_found": self.witness_found,
                "found": self.found,
                "virtual_seconds": self.virtual_seconds,
                "eta_seconds": self.eta_seconds,
                "eta_virtual_seconds": self.eta_virtual_seconds,
                "faults": {
                    "injected": self.faults_injected,
                    "phase_failures": self.fault_failures,
                    "retries": self.fault_retries,
                },
                "started_at": self.started_at,
                "wall_seconds": now - self.started_at,
                "last_heartbeat": self.last_heartbeat,
                "heartbeat_age_seconds": now - self.last_heartbeat,
            }


class ProgressStream:
    """Append-only JSONL event stream, flushed per event."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a")

    def write(self, event: dict) -> None:
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class LiveRun:
    """The event bus the engine publishes into (see module docs).

    Attach one to a runtime (``MidasRuntime(live=...)``, or implicitly
    via ``live_port=`` / ``progress_path=``) and every engine run on
    that runtime reports through it.  ``serve(port)`` starts the HTTP
    exporter; :meth:`close` stops the exporter and closes the stream.
    """

    def __init__(
        self,
        progress_path: Optional[Union[str, Path]] = None,
        metrics=None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.status = RunStatus(clock=clock)
        self._clock = clock
        self._metrics = metrics
        self._stream = ProgressStream(progress_path) if progress_path else None
        self._subs: List[Callable[[dict], None]] = []
        self._server = None
        # when set (the service's per-query runs), every emitted event
        # carries the query's trace id so the progress stream joins the
        # qtrace/RunStore records
        self.trace_id: Optional[str] = None
        if metrics is not None:
            g = metrics.gauge
            self._g_rounds = g("midas_live_rounds_completed",
                               "Rounds completed by the in-flight run")
            self._g_planned = g("midas_live_rounds_planned",
                                "Rounds planned by the in-flight run")
            self._g_pbound = g("midas_live_p_failure_bound",
                               "Current amplification failure-probability bound")
            self._g_eta = g("midas_live_eta_seconds",
                            "Estimated wall seconds to stage completion")
            self._g_running = g("midas_live_running",
                                "1 while an engine run is executing")
            self._g_beat = g("midas_live_last_heartbeat_unixtime",
                             "Unix time of the last engine heartbeat")
        else:
            self._g_rounds = self._g_planned = self._g_pbound = None
            self._g_eta = self._g_running = self._g_beat = None

    # ------------------------------------------------------------- plumbing
    def subscribe(self, fn: Callable[[dict], None]) -> None:
        """Register a callback receiving every event dict."""
        self._subs.append(fn)

    def serve(self, port: int = 0, host: str = "127.0.0.1", routes=None):
        """Start the HTTP exporter on ``port`` (0 = ephemeral); idempotent.

        ``routes`` optionally mounts extra endpoints beside ``/metrics``
        ``/status`` ``/healthz`` — this is how the detection service
        shares one exporter with live telemetry instead of binding a
        second port.  On an already-running server new routes are merged
        in (existing paths are preserved, not shadowed).
        """
        if self._server is None:
            from repro.obs.http import LiveServer  # local: optional layer

            self._server = LiveServer(self.status.snapshot,
                                      registry=self._metrics, host=host,
                                      routes=routes)
            self._server.start(port)
        elif routes:
            for path, handler in routes.items():
                if path not in self._server._routes:
                    self._server.add_route(path, handler)
        return self._server

    @property
    def server(self):
        return self._server

    @property
    def port(self) -> Optional[int]:
        return self._server.port if self._server is not None else None

    def close(self) -> None:
        """Stop the HTTP exporter (joining its thread) and close the stream."""
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _emit(self, event: str, **payload) -> None:
        evt = {"t": self._clock(), "event": event, **payload}
        if self.trace_id:
            evt["trace_id"] = self.trace_id
        if self._stream is not None:
            self._stream.write(evt)
        for fn in self._subs:
            try:
                fn(evt)
            except Exception:  # a bad subscriber must not kill the run
                _LOG.exception("live-run subscriber failed on %r", event)

    def _sync_gauges(self, s: RunStatus) -> None:
        if self._g_rounds is None:
            return
        self._g_rounds.set(s.rounds_completed)
        self._g_planned.set(s.rounds_planned)
        self._g_pbound.set(s.p_failure_bound)
        self._g_eta.set(s.eta_seconds if s.eta_seconds is not None else -1.0)
        self._g_running.set(1.0 if s.state == "running" else 0.0)
        self._g_beat.set(s.last_heartbeat)

    # ------------------------------------------------------- engine-facing
    def run_started(self, problem: str, mode: str,
                    graph_nodes: int = 0, graph_edges: int = 0) -> None:
        s = self.status
        with s._lock:
            s.state = "running"
            s.error = ""
            s.problem = problem
            s.mode = mode
            s.graph = {"nodes": int(graph_nodes), "edges": int(graph_edges)}
            s.runs += 1
            s.witness_found = None
            s.found = None
            s.heartbeat()
            self._sync_gauges(s)
        self._emit("run_start", problem=problem, mode=mode,
                   graph=dict(s.graph), run=s.runs)

    def stage_started(self, stage: str, k: int, rounds: int,
                      phases_per_round: int, eps: Optional[float] = None) -> None:
        s = self.status
        with s._lock:
            s.stage = stage
            s.k = int(k)
            s.target_eps = eps
            s.stage_rounds_planned = int(rounds)
            s.stage_rounds_completed = 0
            s.rounds_planned += int(rounds)
            s.phases_per_round = int(phases_per_round)
            s.phases_completed = 0
            s.eta_seconds = None
            s.eta_virtual_seconds = None
            s.heartbeat()
            self._sync_gauges(s)
        self._emit("stage_start", stage=stage, k=int(k), rounds=int(rounds),
                   phases_per_round=int(phases_per_round), eps=eps)

    def phase_done(self, round_index: int, phase_index: int) -> None:
        s = self.status
        with s._lock:
            s.phases_completed += 1
            s.heartbeat()
        self._emit("phase", round=int(round_index), phase=int(phase_index))

    def round_done(self, round_index: int, hit: bool,
                   virtual_seconds: float,
                   eta_seconds: Optional[float] = None,
                   eta_virtual_seconds: Optional[float] = None) -> None:
        s = self.status
        with s._lock:
            s.stage_rounds_completed += 1
            s.rounds_completed += 1
            s.phases_completed = 0
            s.virtual_seconds = float(virtual_seconds)
            s.eta_seconds = eta_seconds
            s.eta_virtual_seconds = eta_virtual_seconds
            if hit:
                s.witness_found = True
                # an early exit forfeits the stage's remaining rounds
                skipped = s.stage_rounds_planned - s.stage_rounds_completed
                s.rounds_planned -= max(0, skipped)
                s.stage_rounds_planned = s.stage_rounds_completed
            s.heartbeat()
            self._sync_gauges(s)
        self._emit("round", round=int(round_index), hit=bool(hit),
                   status=self.status.snapshot())

    def rounds_restored(self, n: int, virtual_seconds: float) -> None:
        """``n`` rounds of the current stage were recovered from a durable
        checkpoint (no new work was done — the counters jump so the
        failure bound and ETA stay honest on a resumed run)."""
        s = self.status
        with s._lock:
            s.stage_rounds_completed += int(n)
            s.rounds_completed += int(n)
            s.virtual_seconds = float(virtual_seconds)
            s.heartbeat()
            self._sync_gauges(s)
        self._emit("restore", rounds=int(n),
                   virtual_seconds=float(virtual_seconds))

    def fault_update(self, failures: int, retries: int, injected: int) -> None:
        s = self.status
        with s._lock:
            s.fault_failures = int(failures)
            s.fault_retries = int(retries)
            s.faults_injected = int(injected)
            s.heartbeat()
        self._emit("fault", failures=int(failures), retries=int(retries),
                   injected=int(injected))

    def heartbeat(self) -> None:
        """Cheap liveness tick (no event emitted) — safe to call often."""
        s = self.status
        with s._lock:
            s.heartbeat()
            if self._g_beat is not None:
                self._g_beat.set(s.last_heartbeat)

    def note_result(self, found: bool) -> None:
        s = self.status
        with s._lock:
            s.found = bool(found)
            if found:
                s.witness_found = True
        self._emit("result", found=bool(found))

    def run_ended(self, state: str = "done", error: str = "") -> None:
        if state not in _TERMINAL:
            raise ValueError(f"terminal state must be one of {_TERMINAL}, got {state!r}")
        s = self.status
        with s._lock:
            s.state = state
            s.error = error
            s.eta_seconds = 0.0 if state == "done" else s.eta_seconds
            s.heartbeat()
            self._sync_gauges(s)
        self._emit("run_end", state=state, error=error,
                   status=self.status.snapshot())


__all__ = ["LiveRun", "ProgressStream", "RunStatus", "ROUND_FAILURE"]
