"""Run-level observability: metrics, Chrome-trace export, run reports.

Three complementary views of one MIDAS run:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucket histograms with labeled children) that
  the driver, the calibration, and the GF kernels all write into;
* :mod:`repro.obs.chrome_trace` — export any
  :class:`~repro.runtime.tracing.TraceEvent` recording to Chrome /
  Perfetto ``trace_event`` JSON (one virtual thread per rank, a
  bytes-on-the-wire counter track);
* :mod:`repro.obs.report` — :class:`RunReport` joins the trace, a
  metrics snapshot, and the Theorem-2 model prediction into a single
  artifact with text and JSON renderers.

CLI: ``python -m repro detect-path ... --trace-out run.json
--metrics-out metrics.json --report-out report.json`` and
``python -m repro report report.json``.
"""

from repro.obs.chrome_trace import (
    dump_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsSnapshot,
    get_default_registry,
    log_buckets,
)
from repro.obs.report import RunReport

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunReport",
    "dump_chrome_trace",
    "get_default_registry",
    "log_buckets",
    "to_chrome_trace",
    "validate_chrome_trace",
]
