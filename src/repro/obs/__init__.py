"""Run-level observability: metrics, Chrome-trace export, run reports.

Three complementary views of one MIDAS run:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucket histograms with labeled children) that
  the driver, the calibration, and the GF kernels all write into;
* :mod:`repro.obs.chrome_trace` — export any
  :class:`~repro.runtime.tracing.TraceEvent` recording to Chrome /
  Perfetto ``trace_event`` JSON (one virtual thread per rank, a
  bytes-on-the-wire counter track);
* :mod:`repro.obs.report` — :class:`RunReport` joins the trace, a
  metrics snapshot, and the Theorem-2 model prediction into a single
  artifact with text and JSON renderers;
* :mod:`repro.obs.analyze` — critical-path extraction over the
  happens-before edges the scheduler records, makespan blame, slack,
  load-imbalance and communication-matrix analytics;
* :mod:`repro.obs.store` — append-only JSONL :class:`RunStore` of
  compact :class:`RunRecord` perf fingerprints with baseline
  comparison (``repro history`` / ``repro compare``);
* :mod:`repro.obs.live` — in-flight telemetry: a thread-safe
  :class:`RunStatus` the engine updates at round/phase boundaries, an
  append-only JSONL progress stream, and live gauges (``repro watch``);
* :mod:`repro.obs.http` — stdlib HTTP exporter serving ``/metrics``
  (Prometheus text), ``/status`` (JSON RunStatus) and ``/healthz``
  (``MidasRuntime(live_port=...)`` / CLI ``--live-port``);
* :mod:`repro.obs.profile` — wall-clock span profiler over the real
  kernel/evaluator/collective call sites with per-(phase, op, callsite)
  aggregates, a ``profile`` RunReport section, and speedscope export;
* :mod:`repro.obs.qtrace` — end-to-end query tracing for the detection
  service: W3C-traceparent contexts minted per query, spans across
  client/broker/engine/process-worker boundaries on one shared
  monotonic timebase, per-tenant SLO histograms with exemplar trace
  ids, and a crash flight recorder (``repro trace <id>``).

CLI: ``python -m repro detect-path ... --trace-out run.json
--metrics-out metrics.json --report-out report.json`` and
``python -m repro report report.json``.
"""

from repro.obs.analyze import (
    CriticalPath,
    PathSegment,
    RunAnalysis,
    analyze_run,
    communication_matrix,
    extract_critical_path,
    slack_histogram,
)
from repro.obs.chrome_trace import (
    dump_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.http import LiveServer
from repro.obs.live import LiveRun, ProgressStream, RunStatus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsSnapshot,
    get_default_registry,
    log_buckets,
)
from repro.obs.profile import (
    SpanRecord,
    WallProfiler,
    validate_speedscope,
)
from repro.obs.qtrace import (
    FlightRecorder,
    QueryTrace,
    QueryTracer,
    Span,
    TraceContext,
    get_flight_recorder,
    render_timeline,
    reset_flight_recorder,
    trace_to_chrome,
)
from repro.obs.report import RunReport
from repro.obs.store import (
    RunComparison,
    RunRecord,
    RunStore,
    compare_runs,
    compare_to_baseline,
    config_fingerprint,
    current_git_sha,
)

__all__ = [
    "Counter",
    "CriticalPath",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LiveRun",
    "LiveServer",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PathSegment",
    "ProgressStream",
    "QueryTrace",
    "QueryTracer",
    "RunAnalysis",
    "RunComparison",
    "RunRecord",
    "RunReport",
    "RunStatus",
    "RunStore",
    "Span",
    "SpanRecord",
    "TraceContext",
    "WallProfiler",
    "analyze_run",
    "communication_matrix",
    "compare_runs",
    "compare_to_baseline",
    "config_fingerprint",
    "current_git_sha",
    "dump_chrome_trace",
    "extract_critical_path",
    "get_default_registry",
    "get_flight_recorder",
    "log_buckets",
    "render_timeline",
    "reset_flight_recorder",
    "slack_histogram",
    "to_chrome_trace",
    "trace_to_chrome",
    "validate_chrome_trace",
    "validate_speedscope",
]
