"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied by the caller.

    Raised eagerly, before any expensive work starts, so that a bad
    ``(N, N1, N2, k)`` combination never produces a half-finished run.
    """


class FieldError(ReproError, ValueError):
    """Invalid finite-field construction or operation."""


class GraphError(ReproError, ValueError):
    """Invalid graph construction or query."""


class PartitionError(ReproError, ValueError):
    """Invalid graph partition (empty parts, out-of-range labels, ...)."""


class TemplateError(ReproError, ValueError):
    """Invalid tree template (cycles, disconnected, too large, ...)."""


class RuntimeSimulationError(ReproError, RuntimeError):
    """The SPMD runtime simulator reached an illegal state."""


class DeadlockError(RuntimeSimulationError):
    """All live ranks are blocked on communication that can never complete."""


class ResourceExhaustedError(ReproError, RuntimeError):
    """A modeled resource limit (e.g. per-node memory) was exceeded.

    Used by the FASCIA baseline model to reproduce the paper's observation
    that color coding fails beyond subgraph size 12 on random-1e6.
    """


class DetectionError(ReproError, RuntimeError):
    """A detection pipeline failed to produce a usable answer."""
