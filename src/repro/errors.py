"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied by the caller.

    Raised eagerly, before any expensive work starts, so that a bad
    ``(N, N1, N2, k)`` combination never produces a half-finished run.
    """


class FieldError(ReproError, ValueError):
    """Invalid finite-field construction or operation."""


class GraphError(ReproError, ValueError):
    """Invalid graph construction or query."""


class PartitionError(ReproError, ValueError):
    """Invalid graph partition (empty parts, out-of-range labels, ...)."""


class TemplateError(ReproError, ValueError):
    """Invalid tree template (cycles, disconnected, too large, ...)."""


class RuntimeSimulationError(ReproError, RuntimeError):
    """The SPMD runtime simulator reached an illegal state."""


class DeadlockError(RuntimeSimulationError):
    """All live ranks are blocked on communication that can never complete."""


class FaultInjectedError(RuntimeSimulationError):
    """Base class for failures caused by injected faults (see
    :mod:`repro.runtime.faults`).

    The fault-tolerant driver catches this family — and only this family —
    to decide that a phase is retryable: a :class:`RuntimeSimulationError`
    that is *not* fault-induced (a program bug, a mismatched collective)
    must keep propagating.
    """


class RankFailedError(FaultInjectedError):
    """One or more ranks crashed (or their messages were lost) while the
    survivors were waiting on them.

    ``ranks`` lists the crashed ranks; ``lost_messages`` summarizes
    injected message drops as ``(src, dst, tag)`` triples when the failure
    was pure message loss rather than a crash.
    """

    def __init__(self, message: str, ranks=(), lost_messages=()):
        super().__init__(message)
        self.ranks = tuple(ranks)
        self.lost_messages = tuple(lost_messages)


class TimeoutExpired(FaultInjectedError):
    """A ``Recv(timeout=...)`` expired before a matching message arrived.

    Delivered *into* the waiting rank program (via ``generator.throw``) so
    programs can catch it and take a recovery path; uncaught, it aborts the
    simulated run.  ``rank`` is the waiting rank, ``src``/``tag`` the
    receive it was blocked on, ``deadline`` the virtual time at expiry.
    """

    def __init__(self, message: str, rank=None, src=None, tag=None, deadline=None):
        super().__init__(message)
        self.rank = rank
        self.src = src
        self.tag = tag
        self.deadline = deadline


class SendFailedError(FaultInjectedError):
    """A transient injected failure of a ``Send``; retrying may succeed.

    Delivered into the sending rank program at the yield point of the
    failed ``Send`` so it can catch and re-issue the operation.
    """

    def __init__(self, message: str, rank=None, dst=None, tag=None):
        super().__init__(message)
        self.rank = rank
        self.dst = dst
        self.tag = tag


class SanitizerError(ReproError, RuntimeError):
    """The runtime sanitizer detected a communication-discipline violation.

    Raised by :class:`repro.sanitize.CommSanitizer` in ``strict`` mode at
    the first violation; ``kind`` is the violation class (one of
    :data:`repro.sanitize.comm.VIOLATION_KINDS`), ``rank`` the offending
    rank, and ``op``/``tag`` describe the operation.  Deliberately *not* a
    :class:`FaultInjectedError`: a sanitizer finding is a program bug, so
    the fault-tolerant driver must never retry it away.
    """

    def __init__(self, message: str, kind: str = "", rank=None, op: str = "",
                 tag=None):
        super().__init__(message)
        self.kind = kind
        self.rank = rank
        self.op = op
        self.tag = tag


class CertificationError(ReproError, RuntimeError):
    """An engine output failed independent re-validation.

    Raised by :mod:`repro.sanitize.certify` when a returned witness does
    not check out against the graph (missing edge, duplicate vertex,
    wrong size/weight, disconnected cluster) or a recomputed score
    disagrees with the reported one.  The message names the exact
    offending element (e.g. the missing edge).
    """


class ReplayMismatchError(ReproError, RuntimeError):
    """Deterministic replay diverged between two execution backends.

    Raised by :func:`repro.sanitize.verify_replay` in strict mode;
    ``round_index``/``batch``/``phase`` locate the first divergent
    phase window (``None`` coordinates mean the round-level accumulator).
    """

    def __init__(self, message: str, round_index=None, batch=None, phase=None):
        super().__init__(message)
        self.round_index = round_index
        self.batch = batch
        self.phase = phase


class CheckpointCorruptError(ReproError, RuntimeError):
    """A durable checkpoint failed validation on load.

    Raised by :mod:`repro.runtime.durable` when a checkpoint file is
    truncated, fails its CRC, or carries an unknown format version.
    ``path`` names the offending file and ``reason`` the failed check
    (``"truncated"``, ``"crc"``, ``"version"``, ``"header"``).  A resume
    may fall back to restart-from-scratch only when the caller passed
    ``allow_restart`` — silently discarding state would hide corruption.
    """

    def __init__(self, path, reason: str, detail: str = ""):
        msg = f"{path}: corrupt checkpoint ({reason})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.path = str(path)
        self.reason = reason


class WatchdogExpired(ReproError, RuntimeError):
    """The wall-clock watchdog tripped: the run exhausted its deadline or
    the simulator heartbeat stalled past ``hang_timeout``.

    ``reason`` is ``"deadline"`` or ``"stall"``.  Deliberately *not* a
    :class:`FaultInjectedError`: the fault-tolerant phase runner must
    never retry past an expired watchdog — the engine catches this at
    round boundaries, checkpoints, and returns a degraded partial
    result instead.
    """

    def __init__(self, message: str, reason: str = "deadline"):
        super().__init__(message)
        self.reason = reason


class WorkerCrashedError(ReproError, RuntimeError):
    """A worker process of the ``mode="process"`` backend died mid-round.

    Raised by the parent when the process pool reports a broken worker
    (segfault, ``os._exit``, OOM-kill) — the round cannot be completed and
    the pool is unusable, so the backend closes its shared-memory segments
    and surfaces this typed error instead of hanging on lost futures.
    Deliberately *not* a :class:`FaultInjectedError`: a real worker crash
    is not a simulated fault and must never be retried away by the
    fault-tolerant phase runner.
    """


class ResourceExhaustedError(ReproError, RuntimeError):
    """A modeled resource limit (e.g. per-node memory) was exceeded.

    Used by the FASCIA baseline model to reproduce the paper's observation
    that color coding fails beyond subgraph size 12 on random-1e6.
    """


class DetectionError(ReproError, RuntimeError):
    """A detection pipeline failed to produce a usable answer."""


class ServiceError(ReproError, RuntimeError):
    """The detection service could not satisfy a request.

    Base class for broker/registry failures that are *request* problems
    (unknown graph, malformed query, quota), as opposed to engine bugs.
    HTTP transports map subclasses onto status codes (404/400/429); the
    in-process client raises them directly.
    """


class UnknownGraphError(ServiceError, KeyError):
    """A query referenced a graph the registry does not hold.

    ``ref`` is the sha prefix or name the client sent.  Maps to HTTP 404.
    """

    def __init__(self, ref: str):
        super().__init__(f"no registered graph matches {ref!r}")
        self.ref = ref

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class QuotaExceededError(ServiceError):
    """A tenant exceeded its in-flight query quota (backpressure).

    The broker admits at most ``limit`` concurrently *executing* queries
    per tenant; the excess is rejected immediately — clients back off and
    retry rather than queueing unboundedly.  Maps to HTTP 429.
    """

    def __init__(self, tenant: str, limit: int):
        super().__init__(
            f"tenant {tenant!r} exceeded its quota of {limit} in-flight "
            f"quer{'y' if limit == 1 else 'ies'}; retry after one completes"
        )
        self.tenant = tenant
        self.limit = limit
