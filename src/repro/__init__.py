"""MIDAS: Multilinear Detection at Scale — a Python reproduction.

Reproduction of Ekanayake, Cadena, Wickramasinghe, and Vullikanti,
*"MIDAS: Multilinear Detection at Scale"*, IPDPS 2018: distributed
multilinear-term detection with applications to finding k-paths and
k-trees and to network scan statistics, plus the FASCIA color-coding
baseline and a simulated-MPI substrate for the scaling experiments.

Quick taste::

    from repro import detect_path, erdos_renyi, RngStream
    g = erdos_renyi(10_000, rng=RngStream(1))
    result = detect_path(g, k=12, eps=0.05, rng=RngStream(2))
    print(result.summary())

See README.md for the architecture tour and DESIGN.md / EXPERIMENTS.md for
the paper-experiment mapping.
"""

from repro.core.midas import (
    MidasRuntime,
    detect_path,
    detect_scan_cell,
    detect_tree,
    max_weight_path,
    scan_grid,
    sequential_detect_path,
)
from repro.core.model import PartitionStats, PerformanceEstimate, estimate_runtime
from repro.core.result import DetectionResult, ScanGridResult
from repro.core.schedule import PhaseSchedule, rounds_for_epsilon
from repro.core.witness import extract_witness
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid2d,
    miami_like,
    orkut_like,
    plant_cluster,
    plant_path,
    plant_tree,
    watts_strogatz,
)
from repro.graph.partition import Partition, make_partition
from repro.graph.templates import TreeTemplate
from repro.obs import (
    LiveRun,
    LiveServer,
    MetricsRegistry,
    RunRecord,
    RunReport,
    RunStatus,
    RunStore,
    WallProfiler,
    analyze_run,
    compare_runs,
    compare_to_baseline,
    extract_critical_path,
    get_default_registry,
)
from repro.runtime.cluster import VirtualCluster, juliet, laptop, shadowfax
from repro.runtime.costmodel import KernelCalibration
from repro.runtime.tracing import Scope, TraceRecorder
from repro.sanitize import (
    CertificationReport,
    CommSanitizer,
    DigestLog,
    ReplayReport,
    ResultCertifier,
    SanitizerReport,
    verify_replay,
)
from repro.scanstat.detect import AnomalyDetector, AnomalyResult
from repro.scanstat.statistics import (
    BerkJones,
    ElevatedMean,
    ExpectationBasedPoisson,
    HigherCriticism,
    Kulldorff,
)
from repro.util.rng import RngStream

__version__ = "1.0.0"

__all__ = [
    "MidasRuntime",
    "detect_path",
    "detect_scan_cell",
    "detect_tree",
    "max_weight_path",
    "scan_grid",
    "sequential_detect_path",
    "PartitionStats",
    "PerformanceEstimate",
    "estimate_runtime",
    "DetectionResult",
    "ScanGridResult",
    "PhaseSchedule",
    "rounds_for_epsilon",
    "extract_witness",
    "CSRGraph",
    "DATASETS",
    "load_dataset",
    "barabasi_albert",
    "erdos_renyi",
    "grid2d",
    "miami_like",
    "orkut_like",
    "plant_cluster",
    "plant_path",
    "plant_tree",
    "watts_strogatz",
    "Partition",
    "make_partition",
    "TreeTemplate",
    "VirtualCluster",
    "juliet",
    "laptop",
    "shadowfax",
    "KernelCalibration",
    "LiveRun",
    "LiveServer",
    "MetricsRegistry",
    "RunRecord",
    "RunReport",
    "RunStatus",
    "RunStore",
    "WallProfiler",
    "analyze_run",
    "compare_runs",
    "compare_to_baseline",
    "extract_critical_path",
    "get_default_registry",
    "Scope",
    "TraceRecorder",
    "CertificationReport",
    "CommSanitizer",
    "DigestLog",
    "ReplayReport",
    "ResultCertifier",
    "SanitizerReport",
    "verify_replay",
    "AnomalyDetector",
    "AnomalyResult",
    "BerkJones",
    "ElevatedMean",
    "ExpectationBasedPoisson",
    "HigherCriticism",
    "Kulldorff",
    "RngStream",
    "__version__",
]
