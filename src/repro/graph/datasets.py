"""Dataset registry reproducing the paper's Table II.

The paper evaluates on four graphs:

================  ============  ============
Dataset           Nodes (x1e6)  Edges (x1e6)
================  ============  ============
miami             2.1           51.5
com-Orkut         3.1           234.3
random-1e6        1             13.8
random-1e7        10            161.8
================  ============  ============

miami and com-Orkut are not redistributable, so each entry pairs the paper's
published size with a *generator* producing a structurally-matched synthetic
stand-in at any ``scale`` (``scale=1.0`` is paper size; benches default to
laptop scale).  ``random-1e6``/``random-1e7`` are exactly reproducible:
Erdős–Rényi with expected ``m = n ln n`` (``ln 1e6 ~ 13.8``, matching the
paper's edge counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, miami_like, orkut_like
from repro.util.rng import as_stream


@dataclass(frozen=True)
class DatasetSpec:
    """A Table II row plus the generator for its synthetic stand-in."""

    name: str
    paper_nodes: int
    paper_edges: int
    kind: str  # "real-standin" or "synthetic"
    generator: Callable[[int, object], CSRGraph]

    def nodes_at_scale(self, scale: float) -> int:
        return max(16, int(round(self.paper_nodes * scale)))

    def load(self, scale: float = 1.0, rng=None) -> CSRGraph:
        """Instantiate the dataset at ``scale`` (1.0 = paper size)."""
        if scale <= 0:
            raise GraphError(f"scale must be positive, got {scale}")
        rng = as_stream(rng, f"dataset/{self.name}")
        g = self.generator(self.nodes_at_scale(scale), rng)
        return CSRGraph(g.n, g.indptr, g.indices, name=f"{self.name}@{scale:g}")


def _gen_miami(n: int, rng) -> CSRGraph:
    # paper avg degree = 2 * 51.5e6 / 2.1e6 ~ 49
    return miami_like(n, avg_degree=49.0, rng=rng)


def _gen_orkut(n: int, rng) -> CSRGraph:
    # paper avg degree = 2 * 234.3e6 / 3.1e6 ~ 151
    return orkut_like(n, avg_degree=151.0, rng=rng)


def _gen_random(n: int, rng) -> CSRGraph:
    return erdos_renyi(n, m=int(round(n * math.log(n))), rng=rng)


DATASETS: Dict[str, DatasetSpec] = {
    "miami": DatasetSpec("miami", 2_100_000, 51_500_000, "real-standin", _gen_miami),
    "com-Orkut": DatasetSpec("com-Orkut", 3_100_000, 234_300_000, "real-standin", _gen_orkut),
    "random-1e6": DatasetSpec("random-1e6", 1_000_000, 13_800_000, "synthetic", _gen_random),
    "random-1e7": DatasetSpec("random-1e7", 10_000_000, 161_800_000, "synthetic", _gen_random),
}


def load_dataset(name: str, scale: float = 1.0, rng=None) -> CSRGraph:
    """Load a Table II dataset (stand-in) at the requested scale."""
    if name not in DATASETS:
        raise GraphError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    return DATASETS[name].load(scale=scale, rng=rng)


def table2_rows(scale: Optional[float] = None, rng=None):
    """Yield (name, paper_nodes_M, paper_edges_M[, gen_nodes, gen_edges]) rows.

    With ``scale`` given, each stand-in is actually generated and its true
    size reported alongside the paper's — this is what the Table II bench
    prints.
    """
    for name, spec in DATASETS.items():
        row = {
            "dataset": name,
            "paper_nodes_x1e6": spec.paper_nodes / 1e6,
            "paper_edges_x1e6": spec.paper_edges / 1e6,
        }
        if scale is not None:
            g = spec.load(scale=scale, rng=rng)
            row["generated_nodes"] = g.n
            row["generated_edges"] = g.num_edges
            row["generated_avg_degree"] = 2.0 * g.num_edges / max(g.n, 1)
        yield row
