"""Structural graph metrics for dataset validation.

The Table II stand-ins claim to match the originals' *structure*; these
metrics quantify that: degree statistics (mean/max/heavy-tail index),
sampled clustering coefficient, sampled BFS eccentricity, and degree
assortativity.  All are exact or sampling-based so they run on
million-edge graphs; the dataset tests assert e.g. that the orkut stand-in
is heavy-tailed while the random one is not.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.util.rng import as_stream


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    mean: float
    std: float
    maximum: int
    p99: float
    tail_index: float  # Hill estimator over the top 5% (lower = heavier tail)

    @property
    def heavy_tailed(self) -> bool:
        """Rough heavy-tail indicator: max degree far above p99 and a small
        Hill index (power-law-ish)."""
        return self.maximum > 5 * max(self.p99, 1.0) or self.tail_index < 3.0


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Exact degree statistics plus a Hill tail-index estimate."""
    deg = graph.degrees().astype(np.float64)
    if graph.n == 0:
        raise GraphError("empty graph")
    top = np.sort(deg)[-max(10, graph.n // 20):]
    top = top[top > 0]
    if len(top) >= 2 and top[0] > 0:
        ref = top[0]
        with np.errstate(divide="ignore"):
            logs = np.log(top / ref)
        hill = 1.0 / max(logs.mean(), 1e-9)
    else:
        hill = float("inf")
    return DegreeStats(
        mean=float(deg.mean()),
        std=float(deg.std()),
        maximum=int(deg.max()) if graph.n else 0,
        p99=float(np.percentile(deg, 99)),
        tail_index=float(hill),
    )


def clustering_coefficient(graph: CSRGraph, samples: int = 500, rng=None) -> float:
    """Sampled average local clustering coefficient.

    Per sampled vertex: fraction of neighbour pairs that are themselves
    adjacent (0 for degree < 2 vertices).
    """
    rng = as_stream(rng, "clustering")
    if graph.n == 0:
        raise GraphError("empty graph")
    nodes = rng.choice(graph.n, size=min(samples, graph.n), replace=False)
    total = 0.0
    for v in nodes:
        nb = graph.neighbors(int(v))
        d = len(nb)
        if d < 2:
            continue
        nbset = set(nb.tolist())
        links = 0
        for u in nb:
            # count neighbours of u that are also neighbours of v
            links += len(nbset.intersection(graph.neighbors(int(u)).tolist()))
        total += links / (d * (d - 1))
    return total / len(nodes)


def sampled_eccentricity(graph: CSRGraph, samples: int = 8, rng=None) -> float:
    """Mean BFS eccentricity over sampled sources (diameter proxy).

    Unreachable vertices are ignored (per-component eccentricity).
    """
    rng = as_stream(rng, "ecc")
    if graph.n == 0:
        raise GraphError("empty graph")
    sources = rng.choice(graph.n, size=min(samples, graph.n), replace=False)
    eccs = []
    for s in sources:
        dist = -np.ones(graph.n, dtype=np.int64)
        dist[s] = 0
        frontier = np.array([s], dtype=np.int64)
        d = 0
        while len(frontier):
            d += 1
            nxt = []
            for u in frontier:
                nb = graph.neighbors(int(u))
                fresh = nb[dist[nb] < 0]
                dist[fresh] = d
                nxt.append(fresh)
            frontier = np.concatenate(nxt) if nxt else np.zeros(0, dtype=np.int64)
        reached = dist[dist >= 0]
        if len(reached):
            eccs.append(int(reached.max()))
    return float(np.mean(eccs)) if eccs else 0.0


def degree_assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of endpoint degrees over edges (exact).

    Positive: hubs link to hubs (social); negative: hubs link to leaves
    (technological/spatial hubs).
    """
    e = graph.edges()
    if len(e) < 2:
        return 0.0
    deg = graph.degrees().astype(np.float64)
    x = np.concatenate([deg[e[:, 0]], deg[e[:, 1]]])
    y = np.concatenate([deg[e[:, 1]], deg[e[:, 0]]])
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
