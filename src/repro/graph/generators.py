"""Synthetic graph generators and structure planting.

These produce the workloads of the paper's Table II at arbitrary scale:

* :func:`erdos_renyi` — the paper's ``random-1e6`` / ``random-1e7`` family
  (``G(n, m)`` with expected ``m = n ln n``);
* :func:`miami_like` — a spatial proximity network standing in for the
  ``miami`` synthetic-population contact network (2.1M nodes, 51.5M edges,
  average degree ~49);
* :func:`orkut_like` — a heavy-tailed Chung–Lu graph standing in for
  ``com-Orkut`` (3.1M nodes, 234.3M edges, average degree ~151);

plus planting utilities used by the correctness tests and the anomaly
benchmarks (a detector must find exactly what was planted).

All generators are vectorized: edges are drawn in bulk numpy batches and
deduplicated once, so million-edge graphs build in seconds.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.util.rng import as_stream


def _dedupe_edges(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Canonicalize, drop self-loops/duplicates; return (m, 2) array."""
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    key = lo * n + hi
    _, first = np.unique(key, return_index=True)
    return np.stack([lo[first], hi[first]], axis=1)


def erdos_renyi(n: int, m: Optional[int] = None, rng=None, name: str = "") -> CSRGraph:
    """Uniform ``G(n, m)`` random graph (default ``m = round(n ln n)``).

    Edges are drawn with replacement in 10%-oversampled batches and
    deduplicated, giving a uniform sample of ``m`` distinct edges.
    """
    rng = as_stream(rng, "erdos_renyi")
    if n < 2:
        raise GraphError(f"erdos_renyi needs n >= 2, got {n}")
    if m is None:
        m = int(round(n * math.log(n)))
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise GraphError(f"requested m={m} exceeds max {max_m} for n={n}")
    edges = np.zeros((0, 2), dtype=np.int64)
    while len(edges) < m:
        need = m - len(edges)
        batch = int(need * 1.1) + 16
        u = rng.integers(0, n, size=batch)
        v = rng.integers(0, n, size=batch)
        cand = _dedupe_edges(n, u, v)
        edges = _dedupe_edges(
            n, np.concatenate([edges[:, 0], cand[:, 0]]), np.concatenate([edges[:, 1], cand[:, 1]])
        )
    # uniform truncation back to exactly m
    if len(edges) > m:
        pick = rng.choice(len(edges), size=m, replace=False)
        edges = edges[np.sort(pick)]
    return CSRGraph.from_edges(n, edges, name=name or f"er(n={n},m={m})")


def grid2d(rows: int, cols: int, periodic: bool = False, name: str = "") -> CSRGraph:
    """A ``rows x cols`` lattice (optionally a torus)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid2d needs rows, cols >= 1")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    eh: List[np.ndarray] = []
    if cols > 1:
        eh.append(np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1))
    if rows > 1:
        eh.append(np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1))
    if periodic:
        if cols > 2:
            eh.append(np.stack([idx[:, -1].ravel(), idx[:, 0].ravel()], axis=1))
        if rows > 2:
            eh.append(np.stack([idx[-1, :].ravel(), idx[0, :].ravel()], axis=1))
    edges = np.concatenate(eh, axis=0) if eh else np.zeros((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(rows * cols, edges, name=name or f"grid({rows}x{cols})")


def barabasi_albert(n: int, m_attach: int, rng=None, name: str = "") -> CSRGraph:
    """Preferential-attachment graph (each new node attaches to ``m_attach``).

    Uses the classic repeated-endpoint list so degree-proportional sampling
    is a uniform draw; per-node loop but with O(m_attach) numpy work inside.
    """
    rng = as_stream(rng, "ba")
    if m_attach < 1 or n <= m_attach:
        raise GraphError(f"barabasi_albert needs 1 <= m_attach < n, got {m_attach}, {n}")
    repeated: List[int] = []
    edges: List[Tuple[int, int]] = []
    # seed: a star on the first m_attach + 1 nodes
    for i in range(m_attach):
        edges.append((i, m_attach))
        repeated.extend([i, m_attach])
    rep = np.array(repeated, dtype=np.int64)
    rep_len = len(rep)
    cap = max(4 * rep_len, 4 * n * m_attach)
    buf = np.zeros(cap, dtype=np.int64)
    buf[:rep_len] = rep
    gen = rng.generator
    for v in range(m_attach + 1, n):
        targets = np.unique(buf[gen.integers(0, rep_len, size=3 * m_attach)])[:m_attach]
        while len(targets) < m_attach:  # extremely rare for small m_attach
            extra = buf[gen.integers(0, rep_len, size=3 * m_attach)]
            targets = np.unique(np.concatenate([targets, extra]))[:m_attach]
        for t in targets:
            edges.append((v, int(t)))
        new = np.empty(2 * len(targets), dtype=np.int64)
        new[0::2] = targets
        new[1::2] = v
        buf[rep_len : rep_len + len(new)] = new
        rep_len += len(new)
    return CSRGraph.from_edges(n, np.array(edges, dtype=np.int64), name=name or f"ba(n={n})")


def watts_strogatz(n: int, k_ring: int, beta: float, rng=None, name: str = "") -> CSRGraph:
    """Small-world ring lattice with vectorized rewiring."""
    rng = as_stream(rng, "ws")
    if k_ring % 2 or k_ring < 2 or k_ring >= n:
        raise GraphError(f"watts_strogatz needs even 2 <= k_ring < n, got {k_ring}")
    if not (0.0 <= beta <= 1.0):
        raise GraphError(f"beta must be in [0, 1], got {beta}")
    src = np.repeat(np.arange(n, dtype=np.int64), k_ring // 2)
    offs = np.tile(np.arange(1, k_ring // 2 + 1, dtype=np.int64), n)
    dst = (src + offs) % n
    rewire = rng.random(len(src)) < beta
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    return CSRGraph.from_edges(
        n, np.stack([src, dst], axis=1), name=name or f"ws(n={n},k={k_ring})"
    )


def chung_lu(n: int, weights: np.ndarray, m_target: int, rng=None, name: str = "") -> CSRGraph:
    """Chung–Lu graph: endpoints drawn with probability proportional to weight.

    Produces ``~m_target`` distinct edges with degree sequence following
    ``weights`` in expectation — the stand-in mechanism for heavy-tailed
    social graphs like com-Orkut.
    """
    rng = as_stream(rng, "cl")
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (n,) or np.any(w < 0) or w.sum() == 0:
        raise GraphError("weights must be a non-negative length-n vector with positive sum")
    p = w / w.sum()
    cdf = np.cumsum(p)
    edges = np.zeros((0, 2), dtype=np.int64)
    attempts = 0
    while len(edges) < m_target and attempts < 50:
        need = m_target - len(edges)
        batch = int(need * 1.3) + 16
        u = np.searchsorted(cdf, rng.random(batch))
        v = np.searchsorted(cdf, rng.random(batch))
        cand = _dedupe_edges(n, u.astype(np.int64), v.astype(np.int64))
        edges = _dedupe_edges(
            n, np.concatenate([edges[:, 0], cand[:, 0]]), np.concatenate([edges[:, 1], cand[:, 1]])
        )
        attempts += 1
    return CSRGraph.from_edges(n, edges[:m_target], name=name or f"cl(n={n})")


def miami_like(n: int, avg_degree: float = 49.0, rng=None, name: str = "") -> CSRGraph:
    """Spatial proximity network resembling the miami contact network.

    Nodes get uniform 2D positions; each connects to its nearest neighbours
    (plus a few random long-range contacts), matching the locally-dense,
    low-diameter-cut structure of synthetic-population contact graphs.
    """
    rng = as_stream(rng, "miami")
    if n < 8:
        raise GraphError(f"miami_like needs n >= 8, got {n}")
    from scipy.spatial import cKDTree

    pos = rng.random((n, 2))
    k_nn = max(2, int(round(avg_degree / 2.0)))
    tree = cKDTree(pos)
    _, nn = tree.query(pos, k=k_nn + 1)
    src = np.repeat(np.arange(n, dtype=np.int64), k_nn)
    dst = nn[:, 1:].astype(np.int64).ravel()
    # ~2% long-range shortcuts give the small-world flavour of contact nets
    n_far = max(1, int(0.02 * len(src)))
    fu = rng.integers(0, n, size=n_far)
    fv = rng.integers(0, n, size=n_far)
    edges = np.stack([np.concatenate([src, fu]), np.concatenate([dst, fv])], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"miami_like(n={n})")


def orkut_like(n: int, avg_degree: float = 151.0, exponent: float = 2.4, rng=None,
               name: str = "") -> CSRGraph:
    """Heavy-tailed Chung–Lu graph resembling com-Orkut's degree profile."""
    rng = as_stream(rng, "orkut")
    if n < 8:
        raise GraphError(f"orkut_like needs n >= 8, got {n}")
    # Pareto weights, capped at sqrt(expected total) to keep Chung-Lu valid
    w = (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    m_target = int(n * avg_degree / 2.0)
    cap = math.sqrt(2.0 * m_target)
    w = np.minimum(w, cap)
    return chung_lu(n, w, m_target, rng=rng, name=name or f"orkut_like(n={n})")


def random_tree_graph(n: int, rng=None, name: str = "") -> CSRGraph:
    """A uniform random labelled tree via Prüfer sequences (test fixture)."""
    rng = as_stream(rng, "tree")
    if n < 1:
        raise GraphError(f"random_tree_graph needs n >= 1, got {n}")
    if n == 1:
        return CSRGraph.from_edges(1, [], name=name or "tree(1)")
    if n == 2:
        return CSRGraph.from_edges(2, [(0, 1)], name=name or "tree(2)")
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    np.add.at(degree, prufer, 1)
    edges = []
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for a in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(a)))
        degree[a] -= 1
        if degree[a] == 1:
            heapq.heappush(leaves, int(a))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return CSRGraph.from_edges(n, np.array(edges, dtype=np.int64), name=name or f"tree({n})")


# --------------------------------------------------------------- planting
def _add_edges(g: CSRGraph, new_edges: np.ndarray, name: str) -> CSRGraph:
    combined = np.concatenate([g.edges(), np.asarray(new_edges, dtype=np.int64)], axis=0)
    return CSRGraph.from_edges(g.n, combined, name=name)


def plant_path(g: CSRGraph, k: int, rng=None) -> Tuple[CSRGraph, np.ndarray]:
    """Plant a simple path on ``k`` distinct random vertices.

    Returns ``(new_graph, path_nodes)``; used by tests and benchmarks to
    guarantee a k-path exists.
    """
    rng = as_stream(rng, "plant_path")
    if k < 1 or k > g.n:
        raise GraphError(f"cannot plant a path of {k} nodes in a graph with {g.n}")
    nodes = rng.choice(g.n, size=k, replace=False).astype(np.int64)
    if k == 1:
        return g, nodes
    new = np.stack([nodes[:-1], nodes[1:]], axis=1)
    return _add_edges(g, new, f"{g.name}+path{k}"), nodes


def plant_tree(g: CSRGraph, template, rng=None) -> Tuple[CSRGraph, np.ndarray]:
    """Plant an embedding of a :class:`~repro.graph.templates.TreeTemplate`.

    Returns ``(new_graph, mapping)`` with ``mapping[t]`` the graph vertex
    hosting template node ``t``.
    """
    rng = as_stream(rng, "plant_tree")
    k = template.k
    if k > g.n:
        raise GraphError(f"cannot plant a {k}-node tree in a graph with {g.n} nodes")
    mapping = rng.choice(g.n, size=k, replace=False).astype(np.int64)
    new = mapping[np.asarray(template.edges, dtype=np.int64)]
    return _add_edges(g, new, f"{g.name}+tree{k}"), mapping


def plant_clique(g: CSRGraph, size: int, rng=None) -> Tuple[CSRGraph, np.ndarray]:
    """Plant a clique on ``size`` random vertices; returns (graph, nodes)."""
    rng = as_stream(rng, "plant_clique")
    if size > g.n:
        raise GraphError(f"cannot plant a {size}-clique in a graph with {g.n} nodes")
    nodes = rng.choice(g.n, size=size, replace=False).astype(np.int64)
    iu, iv = np.triu_indices(size, k=1)
    new = np.stack([nodes[iu], nodes[iv]], axis=1)
    return _add_edges(g, new, f"{g.name}+clique{size}"), nodes


def plant_cluster(g: CSRGraph, size: int, rng=None, max_tries: int = 64) -> np.ndarray:
    """Pick a random *connected* vertex set of ``size`` nodes by BFS growth.

    No edges are added — the cluster is carved out of the existing topology
    (the anomaly-injection scenario: an existing neighbourhood lights up).
    Raises :class:`GraphError` if the graph has no component that large.
    """
    rng = as_stream(rng, "plant_cluster")
    if size < 1 or size > g.n:
        raise GraphError(f"cluster size {size} out of range for n={g.n}")
    for _ in range(max_tries):
        start = int(rng.integers(0, g.n))
        picked = [start]
        seen = {start}
        frontier = [start]
        while frontier and len(picked) < size:
            u = frontier.pop(int(rng.integers(0, len(frontier))))
            nbrs = [int(x) for x in g.neighbors(u) if int(x) not in seen]
            rng.generator.shuffle(nbrs)
            for x in nbrs:
                if len(picked) >= size:
                    break
                seen.add(x)
                picked.append(x)
                frontier.append(x)
        if len(picked) == size:
            return np.array(sorted(picked), dtype=np.int64)
    raise GraphError(f"could not find a connected set of {size} nodes in {max_tries} tries")
