"""Immutable CSR (compressed sparse row) graph storage.

The DP inner loop of every evaluator is "for each node, XOR-accumulate a
field product over its neighbours".  With CSR storage that whole step is two
vectorized operations: a fancy-indexed gather ``P[indices]`` followed by
:func:`xor_segment_reduce` (a ``bitwise_xor.reduceat`` with empty-row
repair).  No Python-level per-node loop ever runs.

Graphs are simple and undirected: both ``(u, v)`` and ``(v, u)`` are stored,
self-loops and duplicates are dropped at construction.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import GraphError


def xor_segment_reduce(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """XOR-reduce ``values`` over CSR segments defined by ``indptr``.

    ``values`` has shape ``(nnz, ...)``; the result has shape
    ``(len(indptr) - 1, ...)`` where row ``i`` is the XOR of
    ``values[indptr[i]:indptr[i+1]]`` (zeros for empty segments).

    This is GF(2^m) summation over each node's neighbourhood — the single
    hottest reduction in the library.  ``np.bitwise_xor.reduceat`` computes
    it in one pass; empty segments (isolated vertices) and a trailing
    ``indptr`` entry equal to ``nnz`` need repair, handled here.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    n = len(indptr) - 1
    nnz = values.shape[0]
    out_shape = (n,) + values.shape[1:]
    out = np.zeros(out_shape, dtype=values.dtype)
    if n == 0 or nnz == 0:
        return out
    if indptr[-1] != nnz:
        raise GraphError(
            f"indptr[-1] (={indptr[-1]}) must equal len(values) (={nnz})"
        )
    starts = indptr[:-1]
    nonempty = starts < indptr[1:]
    if np.any(nonempty):
        # reduceat over non-empty starts only: consecutive non-empty starts
        # are exactly the segment boundaries (empty segments in between do
        # not advance indptr), so each reduction covers one segment.
        out[nonempty] = np.bitwise_xor.reduceat(values, starts[nonempty], axis=0)
    return out


class CSRGraph:
    """A simple undirected graph in CSR form.

    Attributes
    ----------
    n:
        Number of vertices (ids ``0..n-1``).
    indptr:
        int64 array of length ``n + 1``.
    indices:
        int64 array of neighbour ids, sorted within each row; length is
        ``2m`` for ``m`` undirected edges.
    """

    __slots__ = ("n", "indptr", "indices", "name")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray, name: str = "") -> None:
        self.n = int(n)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        if self.n < 0:
            raise GraphError(f"vertex count must be non-negative, got {self.n}")
        if self.indptr.shape != (self.n + 1,):
            raise GraphError(
                f"indptr must have length n+1={self.n + 1}, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise GraphError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise GraphError("neighbour ids out of range")

    # ------------------------------------------------------------ factories
    @staticmethod
    def from_edges(
        n: int, edges: "np.ndarray | Iterable[Tuple[int, int]]", name: str = ""
    ) -> "CSRGraph":
        """Build from an iterable/array of (u, v) pairs.

        Self-loops and duplicate edges (in either orientation) are dropped.
        """
        e = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if e.size == 0:
            return CSRGraph(n, np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), name)
        if e.ndim != 2 or e.shape[1] != 2:
            raise GraphError(f"edges must be (m, 2), got shape {e.shape}")
        if e.min() < 0 or e.max() >= n:
            raise GraphError("edge endpoint out of range")
        u = np.minimum(e[:, 0], e[:, 1])
        v = np.maximum(e[:, 0], e[:, 1])
        keep = u != v  # drop self loops
        u, v = u[keep], v[keep]
        key = u * n + v
        _, first = np.unique(key, return_index=True)
        u, v = u[first], v[first]
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(n, indptr, dst, name)

    @staticmethod
    def from_networkx(g, name: str = "") -> "CSRGraph":
        """Build from a networkx graph with integer-convertible node labels."""
        import networkx as nx

        nodes = list(g.nodes())
        relabel = {u: i for i, u in enumerate(nodes)}
        edges = np.array(
            [(relabel[a], relabel[b]) for a, b in g.edges()], dtype=np.int64
        ).reshape(-1, 2)
        return CSRGraph.from_edges(len(nodes), edges, name=name or str(getattr(g, "name", "")))

    # -------------------------------------------------------------- queries
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degrees(self) -> np.ndarray:
        """Degree of every vertex, as int64."""
        return np.diff(self.indptr)

    def neighbors(self, i: int) -> np.ndarray:
        """Sorted neighbour ids of vertex ``i`` (a view, do not mutate)."""
        if not (0 <= i < self.n):
            raise GraphError(f"vertex {i} out of range")
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nb = self.neighbors(u)
        pos = np.searchsorted(nb, v)
        return pos < len(nb) and nb[pos] == v

    def edges(self) -> np.ndarray:
        """All undirected edges as an (m, 2) array with u < v."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
        mask = src < self.indices
        return np.stack([src[mask], self.indices[mask]], axis=1)

    # ---------------------------------------------------------- transforms
    def subgraph(self, nodes: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``nodes``; returns (graph, old_ids) where the
        new graph's vertex ``i`` corresponds to ``old_ids[i]``."""
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if len(nodes) and (nodes[0] < 0 or nodes[-1] >= self.n):
            raise GraphError("subgraph nodes out of range")
        relabel = -np.ones(self.n, dtype=np.int64)
        relabel[nodes] = np.arange(len(nodes))
        e = self.edges()
        keep = (relabel[e[:, 0]] >= 0) & (relabel[e[:, 1]] >= 0)
        new_edges = relabel[e[keep]]
        return CSRGraph.from_edges(len(nodes), new_edges, name=f"{self.name}|sub"), nodes

    def relabel(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices: new id of old vertex ``i`` is ``perm[i]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self.n)):
            raise GraphError("perm must be a permutation of 0..n-1")
        e = self.edges()
        return CSRGraph.from_edges(self.n, perm[e], name=self.name)

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges()))
        return g

    # ----------------------------------------------------------- traversal
    def connected_components(self) -> np.ndarray:
        """Component label per vertex (BFS; labels are 0-based, dense)."""
        labels = -np.ones(self.n, dtype=np.int64)
        comp = 0
        for start in range(self.n):
            if labels[start] >= 0:
                continue
            frontier = np.array([start], dtype=np.int64)
            labels[start] = comp
            while len(frontier):
                nxt = []
                for u in frontier:
                    nb = self.neighbors(int(u))
                    fresh = nb[labels[nb] < 0]
                    labels[fresh] = comp
                    nxt.append(fresh)
                frontier = np.concatenate(nxt) if nxt else np.zeros(0, dtype=np.int64)
            comp += 1
        return labels

    def memory_bytes(self) -> int:
        """Resident bytes of the CSR arrays (for the cost model)."""
        return self.indptr.nbytes + self.indices.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"CSRGraph(n={self.n}, m={self.num_edges}{label})"
