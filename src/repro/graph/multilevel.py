"""Multilevel graph partitioning (METIS-style, simplified).

The paper uses "a naive partitioning scheme" and explicitly leaves better
partitioning as headroom; this module provides the standard multilevel
recipe so the ablation benchmarks can quantify that headroom:

1. **Coarsen** — repeated heavy-edge matching contracts matched pairs;
   contracted parallel edges accumulate weight, so the coarse cut equals
   the fine cut.
2. **Initial partition** — greedy growth on the coarsest graph (a few
   hundred vertices), weighted by collapsed vertex counts so parts come
   out balanced in *fine* vertices.
3. **Uncoarsen + refine** — project the labels back level by level and run
   boundary refinement (Fiduccia–Mattheyses-lite): move boundary vertices
   to the neighbouring part with the best cut gain, subject to a balance
   cap.

Pure numpy + short Python loops over levels; partitions a few-hundred-
thousand-edge graph in seconds, which is the scale the simulator runs at.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.util.rng import as_stream


def _heavy_edge_matching(n, eu, ev, ew, rng) -> np.ndarray:
    """Greedy matching preferring heavy edges; returns mate array (-1 = unmatched)."""
    order = np.argsort(-ew, kind="stable")
    # tie-shuffle for randomness: permute within, cheap approximation
    mate = -np.ones(n, dtype=np.int64)
    for idx in order:
        a, b = int(eu[idx]), int(ev[idx])
        if mate[a] < 0 and mate[b] < 0 and a != b:
            mate[a] = b
            mate[b] = a
    return mate


def _contract(n, eu, ev, ew, vw, mate):
    """Contract matched pairs; returns (n2, eu2, ev2, ew2, vw2, cmap)."""
    cmap = -np.ones(n, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if cmap[v] >= 0:
            continue
        m = int(mate[v])
        cmap[v] = nxt
        if m >= 0 and cmap[m] < 0:
            cmap[m] = nxt
        nxt += 1
    n2 = nxt
    vw2 = np.zeros(n2, dtype=np.int64)
    np.add.at(vw2, cmap, vw)
    cu, cv = cmap[eu], cmap[ev]
    keep = cu != cv
    cu, cv, cw = cu[keep], cv[keep], ew[keep]
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    key = lo * n2 + hi
    order = np.argsort(key, kind="stable")
    key, cw = key[order], cw[order]
    uniq, start = np.unique(key, return_index=True)
    sums = np.add.reduceat(cw, start) if len(cw) else cw
    return n2, uniq // n2, uniq % n2, sums, vw2, cmap


def _initial_partition(n, eu, ev, ew, vw, n_parts, rng) -> np.ndarray:
    """Greedy BFS-ish growth on the coarsest graph, balanced by vertex weight."""
    total = int(vw.sum())
    cap = total / n_parts * 1.1
    # adjacency lists
    adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for a, b, w in zip(eu, ev, ew):
        adj[int(a)].append((int(b), int(w)))
        adj[int(b)].append((int(a), int(w)))
    owner = -np.ones(n, dtype=np.int64)
    load = np.zeros(n_parts, dtype=np.float64)
    order = rng.permutation(n)
    part = 0
    for seed in order:
        if owner[seed] >= 0:
            continue
        if load[part] >= cap:
            part = int(np.argmin(load))
        stack = [int(seed)]
        while stack and load[part] < cap:
            u = stack.pop()
            if owner[u] >= 0:
                continue
            owner[u] = part
            load[part] += vw[u]
            for v, _w in adj[u]:
                if owner[v] < 0:
                    stack.append(v)
        part = int(np.argmin(load))
    return owner


def _refine(graph_arrays, owner, vw, n_parts, passes=3):
    """FM-lite boundary refinement on one level (in place on owner)."""
    n, eu, ev, ew = graph_arrays
    total = int(vw.sum())
    cap = total / n_parts * 1.1
    for _ in range(passes):
        load = np.zeros(n_parts, dtype=np.float64)
        np.add.at(load, owner, vw)
        # per-vertex, per-part adjacency weight via edge passes
        moved = 0
        gain_to = {}
        # accumulate neighbour-part weights per vertex
        conn = {}
        for a, b, w in zip(eu, ev, ew):
            a, b, w = int(a), int(b), int(w)
            conn.setdefault(a, {}).setdefault(owner[b], 0)
            conn[a][owner[b]] += w
            conn.setdefault(b, {}).setdefault(owner[a], 0)
            conn[b][owner[a]] += w
        for v, parts in conn.items():
            cur = owner[v]
            internal = parts.get(cur, 0)
            best_p, best_gain = cur, 0
            for p, w in parts.items():
                if p == cur:
                    continue
                gain = w - internal
                if gain > best_gain and load[p] + vw[v] <= cap:
                    best_p, best_gain = p, gain
            if best_p != cur:
                load[cur] -= vw[v]
                load[best_p] += vw[v]
                owner[v] = best_p
                moved += 1
        if moved == 0:
            break
    return owner


def multilevel_partition(graph: CSRGraph, n_parts: int, rng=None,
                         coarsest: int = 200) -> Partition:
    """METIS-style multilevel partition (coarsen / partition / refine)."""
    rng = as_stream(rng, "multilevel")
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts == 1:
        return Partition(graph, np.zeros(graph.n, dtype=np.int64), 1, method="multilevel")
    e = graph.edges()
    levels = []  # (n, eu, ev, ew, vw, cmap_from_finer)
    n = graph.n
    eu, ev = e[:, 0].copy(), e[:, 1].copy()
    ew = np.ones(len(eu), dtype=np.int64)
    vw = np.ones(n, dtype=np.int64)
    cmaps = []
    sizes = [n]
    target = max(coarsest, 8 * n_parts)
    while n > target:
        mate = _heavy_edge_matching(n, eu, ev, ew, rng)
        n2, eu2, ev2, ew2, vw2, cmap = _contract(n, eu, ev, ew, vw, mate)
        if n2 >= n:  # no progress (e.g. empty matching)
            break
        cmaps.append(cmap)
        levels.append((n, eu, ev, ew, vw))
        n, eu, ev, ew, vw = n2, eu2, ev2, ew2, vw2
        sizes.append(n)

    owner = _initial_partition(n, eu, ev, ew, vw, n_parts, rng)
    # fill any vertex missed by growth (isolated coarse vertices)
    missing = owner < 0
    if np.any(missing):
        owner[missing] = rng.integers(0, n_parts, size=int(missing.sum()))
    owner = _refine((n, eu, ev, ew), owner, vw, n_parts)

    # uncoarsen with refinement at every level
    for (fn, feu, fev, few, fvw), cmap in zip(reversed(levels), reversed(cmaps)):
        owner = owner[cmap]
        owner = _refine((fn, feu, fev, few), owner, fvw, n_parts)

    # guarantee no empty part
    counts = np.bincount(owner, minlength=n_parts)
    for j in np.nonzero(counts == 0)[0]:
        donor = int(np.argmax(np.bincount(owner, minlength=n_parts)))
        victim = np.nonzero(owner == donor)[0][0]
        owner[victim] = j
    return Partition(graph, owner.astype(np.int64), n_parts, method="multilevel")
