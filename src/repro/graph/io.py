"""Edge-list I/O for :class:`~repro.graph.csr.CSRGraph`.

The on-disk format is the plain whitespace-separated edge list used by SNAP
datasets (com-Orkut etc.): one ``u v`` pair per line, ``#`` comments
allowed, optional gzip.  Node ids are compacted to ``0..n-1`` on read.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str):
    p = Path(path)
    if p.suffix == ".gz":
        return gzip.open(p, mode + "t")
    return open(p, mode)


def write_edge_list(graph: CSRGraph, path: PathLike, header: Optional[str] = None) -> None:
    """Write ``graph`` as a ``u v`` edge list (gzip if path ends in .gz)."""
    with _open(path, "w") as fh:
        fh.write(f"# nodes: {graph.n} edges: {graph.num_edges}\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        np.savetxt(fh, graph.edges(), fmt="%d")


def read_edge_list(path: PathLike, n: Optional[int] = None, name: str = "") -> CSRGraph:
    """Read a whitespace edge list; compacts ids unless ``n`` is given.

    With ``n`` provided, ids must already be in ``0..n-1`` and are kept
    verbatim (including isolated vertices).  Without it, ids are relabelled
    densely in sorted order.
    """
    rows = []
    with _open(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            rows.append((int(parts[0]), int(parts[1])))
    edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
    if n is None:
        ids = np.unique(edges)
        relabel = {int(v): i for i, v in enumerate(ids)}
        edges = np.vectorize(relabel.__getitem__)(edges) if len(edges) else edges
        n = len(ids)
    return CSRGraph.from_edges(n, edges, name=name or Path(path).stem)
