"""Graph substrate: storage, generators, partitioning, tree templates.

Everything MIDAS needs from a graph is (a) a CSR adjacency it can gather
neighbour DP values through, and (b) a partition into ``N_1`` parts with the
load/degree metrics that Theorem 2 of the paper bounds runtime in terms of.
"""

from repro.graph.csr import CSRGraph, xor_segment_reduce
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    erdos_renyi,
    grid2d,
    miami_like,
    orkut_like,
    plant_clique,
    plant_cluster,
    plant_path,
    plant_tree,
    random_tree_graph,
    watts_strogatz,
)
from repro.graph.partition import (
    Partition,
    bfs_partition,
    block_partition,
    greedy_partition,
    random_partition,
    make_partition,
)
from repro.graph.templates import TreeTemplate, SubtreeSpec, decompose_template

__all__ = [
    "CSRGraph",
    "xor_segment_reduce",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "barabasi_albert",
    "chung_lu",
    "erdos_renyi",
    "grid2d",
    "miami_like",
    "orkut_like",
    "plant_clique",
    "plant_cluster",
    "plant_path",
    "plant_tree",
    "random_tree_graph",
    "watts_strogatz",
    "Partition",
    "bfs_partition",
    "block_partition",
    "greedy_partition",
    "random_partition",
    "make_partition",
    "TreeTemplate",
    "SubtreeSpec",
    "decompose_template",
]
