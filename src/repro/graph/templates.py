"""Tree templates and their recursive decomposition (paper Fig 2).

A *template* is the tree ``H`` being searched for.  The k-tree evaluator
needs ``H`` broken into the hierarchy of rooted subtrees the paper
describes: every subtree ``H'`` with more than one node has two *children*
obtained by deleting one edge at its root — ``H'_1`` keeps the root,
``H'_2`` is rooted at the removed neighbour.  Recursing until single nodes
yields at most ``2k - 1`` distinct subtrees; the DP evaluates them smallest
first.

:class:`SubtreeSpec` carries, for each subtree: its id, root *template*
node, size, and child ids (``None`` for leaves).  The k-path is the special
case of a path template, and :func:`decompose_template` on a path produces
exactly the chain structure of Algorithm 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import TemplateError
from repro.util.rng import as_stream


class TreeTemplate:
    """A rooted tree on nodes ``0..k-1`` given by its edge list.

    Parameters
    ----------
    k:
        Number of template nodes.
    edges:
        ``k - 1`` undirected edges; must form a tree.
    root:
        Root template node (default 0).  The paper picks it arbitrarily.
    name:
        Label for reports.
    """

    def __init__(
        self, k: int, edges: Sequence[Tuple[int, int]], root: int = 0, name: str = ""
    ) -> None:
        self.k = int(k)
        self.edges = [(int(a), int(b)) for a, b in edges]
        self.root = int(root)
        self.name = name or f"tree(k={k})"
        self._adj: Dict[int, List[int]] = {i: [] for i in range(self.k)}
        self._validate()

    def _validate(self) -> None:
        if self.k < 1:
            raise TemplateError(f"template must have >= 1 node, got k={self.k}")
        if len(self.edges) != self.k - 1:
            raise TemplateError(
                f"a tree on {self.k} nodes has {self.k - 1} edges, got {len(self.edges)}"
            )
        if not (0 <= self.root < self.k):
            raise TemplateError(f"root {self.root} out of range")
        seen = set()
        for a, b in self.edges:
            if not (0 <= a < self.k and 0 <= b < self.k):
                raise TemplateError(f"edge ({a},{b}) out of range for k={self.k}")
            if a == b:
                raise TemplateError(f"self-loop ({a},{b}) in template")
            key = (min(a, b), max(a, b))
            if key in seen:
                raise TemplateError(f"duplicate edge {key} in template")
            seen.add(key)
            self._adj[a].append(b)
            self._adj[b].append(a)
        # connectivity (k-1 distinct edges + connected == tree)
        if self.k > 1:
            stack = [self.root]
            visited = {self.root}
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in visited:
                        visited.add(v)
                        stack.append(v)
            if len(visited) != self.k:
                raise TemplateError("template edges do not form a connected tree")

    def neighbors(self, t: int) -> List[int]:
        return list(self._adj[t])

    # ------------------------------------------------------------ factories
    @staticmethod
    def path(k: int) -> "TreeTemplate":
        """The k-node path template (the k-Path problem)."""
        return TreeTemplate(k, [(i, i + 1) for i in range(k - 1)], root=0, name=f"path{k}")

    @staticmethod
    def star(k: int) -> "TreeTemplate":
        """A star: node 0 adjacent to all others."""
        return TreeTemplate(k, [(0, i) for i in range(1, k)], root=0, name=f"star{k}")

    @staticmethod
    def binary(k: int) -> "TreeTemplate":
        """A complete-as-possible binary tree on ``k`` nodes (heap order)."""
        return TreeTemplate(
            k, [((i - 1) // 2, i) for i in range(1, k)], root=0, name=f"binary{k}"
        )

    @staticmethod
    def caterpillar(k: int, legs_every: int = 2) -> "TreeTemplate":
        """A caterpillar: a spine with a leg at every ``legs_every``-th vertex."""
        if k < 2:
            return TreeTemplate.path(k)
        edges = []
        spine = [0]
        nxt = 1
        while nxt < k:
            prev = spine[-1]
            edges.append((prev, nxt))
            spine.append(nxt)
            nxt += 1
            if nxt < k and (len(spine) % legs_every == 0):
                edges.append((spine[-1], nxt))
                nxt += 1
        return TreeTemplate(k, edges, root=0, name=f"caterpillar{k}")

    @staticmethod
    def random(k: int, rng=None) -> "TreeTemplate":
        """Uniform random labelled tree (random attachment for k <= 2)."""
        rng = as_stream(rng, "template")
        if k <= 2:
            return TreeTemplate.path(k)
        # Prüfer decoding
        prufer = [int(x) for x in rng.integers(0, k, size=k - 2)]
        degree = [1] * k
        for a in prufer:
            degree[a] += 1
        import heapq

        leaves = [i for i in range(k) if degree[i] == 1]
        heapq.heapify(leaves)
        edges = []
        for a in prufer:
            leaf = heapq.heappop(leaves)
            edges.append((leaf, a))
            degree[a] -= 1
            if degree[a] == 1:
                heapq.heappush(leaves, a)
        edges.append((heapq.heappop(leaves), heapq.heappop(leaves)))
        return TreeTemplate(k, edges, root=0, name=f"random_tree{k}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeTemplate({self.name}, k={self.k}, root={self.root})"


@dataclass(frozen=True)
class SubtreeSpec:
    """One subtree in the recursive decomposition.

    Attributes
    ----------
    sid:
        Dense subtree id; specs are ordered so children precede parents.
    root:
        The *template* node at this subtree's root.
    size:
        Number of template nodes in the subtree.
    nodes:
        Frozen set of template nodes (for tests and display).
    child_same, child_branch:
        Ids of the two children — ``child_same`` keeps this root
        (``H'_1`` in the paper), ``child_branch`` is rooted at the removed
        neighbour (``H'_2``).  ``None`` for single-node subtrees.
    """

    sid: int
    root: int
    size: int
    nodes: FrozenSet[int]
    child_same: Optional[int]
    child_branch: Optional[int]

    @property
    def is_leaf(self) -> bool:
        return self.child_same is None


def decompose_template(template: TreeTemplate) -> List[SubtreeSpec]:
    """Decompose ``template`` into evaluation-ordered :class:`SubtreeSpec`s.

    The split rule is deterministic (always detach the smallest-id neighbour
    of the root), so decompositions — and hence parallel/sequential
    transcripts — are reproducible.  The returned list is topologically
    sorted: every child appears before its parent, and the final spec is the
    full template.
    """
    memo: Dict[Tuple[int, FrozenSet[int]], int] = {}
    specs: List[SubtreeSpec] = []

    def subtree_nodes(root: int, allowed: FrozenSet[int]) -> FrozenSet[int]:
        stack = [root]
        seen = {root}
        while stack:
            u = stack.pop()
            for v in template.neighbors(u):
                if v in allowed and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return frozenset(seen)

    def build(root: int, nodes: FrozenSet[int]) -> int:
        key = (root, nodes)
        if key in memo:
            return memo[key]
        if len(nodes) == 1:
            sid = len(specs)
            specs.append(SubtreeSpec(sid, root, 1, nodes, None, None))
            memo[key] = sid
            return sid
        nbrs = sorted(v for v in template.neighbors(root) if v in nodes)
        u = nbrs[0]  # deterministic split: smallest-id root neighbour
        branch_nodes = subtree_nodes(u, nodes - {root})
        same_nodes = nodes - branch_nodes
        c_branch = build(u, branch_nodes)
        c_same = build(root, same_nodes)
        key_check = (root, nodes)
        if key_check in memo:  # children may have created us? (they cannot)
            return memo[key_check]
        sid = len(specs)
        specs.append(
            SubtreeSpec(sid, root, len(nodes), nodes, c_same, c_branch)
        )
        memo[key] = sid
        return sid

    all_nodes = frozenset(range(template.k))
    build(template.root, all_nodes)
    # sanity: children precede parents by construction
    for s in specs:
        if not s.is_leaf:
            assert s.child_same < s.sid and s.child_branch < s.sid
    return specs
