"""Graph partitioning into ``N_1`` parts, with the paper's quality metrics.

MIDAS's Theorem 2 bounds compute time by ``MAXLOAD`` (largest part, in
vertices) and communication by ``MAXDEG`` (most cut edges incident to any
one part).  The partitioners here trade those two off:

* :func:`random_partition` — the paper's "naive partitioning scheme":
  uniform owner per vertex.  Perfect load balance in expectation, but cuts
  a ``(1 - 1/N_1)`` fraction of all edges.
* :func:`block_partition` — contiguous vertex-id blocks; good for graphs
  whose ids carry locality (grids, spatial nets).
* :func:`bfs_partition` — grows parts breadth-first from random seeds;
  cheap locality for arbitrary graphs.
* :func:`greedy_partition` — linear deterministic greedy (LDG) streaming:
  each vertex joins the part holding most of its already-placed neighbours,
  damped by a capacity penalty.  The best cut quality of the four.

The partition-quality ablation benchmark feeds all four into the MIDAS cost
model to show how MAXDEG moves the optimal ``N_1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.util.rng import as_stream


@dataclass
class Partition:
    """An assignment of every vertex to one of ``n_parts`` owners.

    ``owner[i]`` is the part id of vertex ``i``.  All derived quantities are
    computed once and cached (the arrays are treated as immutable).
    """

    graph: CSRGraph
    owner: np.ndarray
    n_parts: int
    method: str = "custom"
    _cache: Dict[str, object] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.owner = np.ascontiguousarray(self.owner, dtype=np.int64)
        if self.owner.shape != (self.graph.n,):
            raise PartitionError(
                f"owner must have one entry per vertex ({self.graph.n}), got {self.owner.shape}"
            )
        if self.n_parts < 1:
            raise PartitionError(f"n_parts must be >= 1, got {self.n_parts}")
        if self.graph.n and (self.owner.min() < 0 or self.owner.max() >= self.n_parts):
            raise PartitionError("owner labels out of range")

    # ------------------------------------------------------------- derived
    def part_nodes(self, j: int) -> np.ndarray:
        """Sorted vertex ids owned by part ``j``."""
        key = f"part{j}"
        if key not in self._cache:
            self._cache[key] = np.nonzero(self.owner == j)[0]
        return self._cache[key]  # type: ignore[return-value]

    def loads(self) -> np.ndarray:
        """Vertices per part (the paper's per-part 'load')."""
        if "loads" not in self._cache:
            self._cache["loads"] = np.bincount(self.owner, minlength=self.n_parts)
        return self._cache["loads"]  # type: ignore[return-value]

    @property
    def max_load(self) -> int:
        """MAXLOAD = max_j |G^j| (Theorem 2's compute-side metric)."""
        return int(self.loads().max()) if self.graph.n else 0

    def degrees(self) -> np.ndarray:
        """DEG(j) = number of cut edges incident to part ``j``, per part.

        Counts each cut edge once for each of its two incident parts, as in
        the paper's definition (edges from ``G^j`` to elsewhere).
        """
        if "degs" not in self._cache:
            e = self.graph.edges()
            ou, ov = self.owner[e[:, 0]], self.owner[e[:, 1]]
            cut = ou != ov
            degs = np.zeros(self.n_parts, dtype=np.int64)
            np.add.at(degs, ou[cut], 1)
            np.add.at(degs, ov[cut], 1)
            self._cache["degs"] = degs
        return self._cache["degs"]  # type: ignore[return-value]

    @property
    def max_degree(self) -> int:
        """MAXDEG = max_j DEG(j) (Theorem 2's communication-side metric)."""
        return int(self.degrees().max()) if self.graph.n else 0

    @property
    def edge_cut(self) -> int:
        """Total number of edges with endpoints in different parts."""
        return int(self.degrees().sum()) // 2

    def imbalance(self) -> float:
        """MAXLOAD / (n / n_parts); 1.0 is perfect balance."""
        if self.graph.n == 0:
            return 1.0
        return self.max_load / (self.graph.n / self.n_parts)

    def summary(self) -> str:
        return (
            f"Partition({self.method}, parts={self.n_parts}, maxload={self.max_load}, "
            f"maxdeg={self.max_degree}, cut={self.edge_cut}, imbalance={self.imbalance():.3f})"
        )


# ----------------------------------------------------------- partitioners
def random_partition(graph: CSRGraph, n_parts: int, rng=None) -> Partition:
    """Uniform random owner per vertex (the paper's naive scheme)."""
    rng = as_stream(rng, "random_partition")
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    owner = rng.integers(0, n_parts, size=graph.n)
    # guarantee no empty part when n >= n_parts (simplifies the runtime)
    if graph.n >= n_parts:
        counts = np.bincount(owner, minlength=n_parts)
        for j in np.nonzero(counts == 0)[0]:
            donor = int(np.argmax(np.bincount(owner, minlength=n_parts)))
            victim = np.nonzero(owner == donor)[0][0]
            owner[victim] = j
    return Partition(graph, owner, n_parts, method="random")


def block_partition(graph: CSRGraph, n_parts: int, rng=None) -> Partition:
    """Contiguous equal blocks of vertex ids."""
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    owner = (np.arange(graph.n, dtype=np.int64) * n_parts) // max(graph.n, 1)
    return Partition(graph, owner, n_parts, method="block")


def bfs_partition(graph: CSRGraph, n_parts: int, rng=None) -> Partition:
    """Grow parts breadth-first from random seeds, capped at ceil(n/p) each."""
    rng = as_stream(rng, "bfs_partition")
    n = graph.n
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    cap = -(-n // n_parts)
    owner = -np.ones(n, dtype=np.int64)
    order = rng.permutation(n)
    load = np.zeros(n_parts, dtype=np.int64)
    part = 0
    from collections import deque

    for seed in order:
        if owner[seed] >= 0:
            continue
        if load[part] >= cap:
            part = int(np.argmin(load))
        q = deque([int(seed)])
        owner[seed] = part
        load[part] += 1
        while q and load[part] < cap:
            u = q.popleft()
            for v in graph.neighbors(u):
                v = int(v)
                if owner[v] < 0 and load[part] < cap:
                    owner[v] = part
                    load[part] += 1
                    q.append(v)
        part = int(np.argmin(load))
    return Partition(graph, owner, n_parts, method="bfs")


def greedy_partition(graph: CSRGraph, n_parts: int, rng=None) -> Partition:
    """Linear deterministic greedy (LDG) streaming partitioner.

    Each vertex (in random stream order) is placed on
    ``argmax_j |placed neighbours in j| * (1 - load_j / capacity)``.
    """
    rng = as_stream(rng, "greedy_partition")
    n = graph.n
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    cap = max(1.0, n / n_parts) * 1.05
    owner = -np.ones(n, dtype=np.int64)
    load = np.zeros(n_parts, dtype=np.float64)
    order = rng.permutation(n)
    for u in order:
        nbr_owner = owner[graph.neighbors(int(u))]
        nbr_owner = nbr_owner[nbr_owner >= 0]
        score = np.zeros(n_parts, dtype=np.float64)
        if len(nbr_owner):
            np.add.at(score, nbr_owner, 1.0)
        score *= np.maximum(0.0, 1.0 - load / cap)
        score -= 1e-9 * load  # tie-break toward lighter parts
        full = load >= cap
        if np.all(full):
            j = int(np.argmin(load))
        else:
            score[full] = -np.inf
            j = int(np.argmax(score))
        owner[u] = j
        load[j] += 1.0
    return Partition(graph, owner, n_parts, method="greedy")


def _multilevel(graph: CSRGraph, n_parts: int, rng=None) -> Partition:
    # local import: multilevel builds on Partition, avoid a cycle
    from repro.graph.multilevel import multilevel_partition

    return multilevel_partition(graph, n_parts, rng=rng)


PARTITIONERS: Dict[str, Callable[..., Partition]] = {
    "random": random_partition,
    "block": block_partition,
    "bfs": bfs_partition,
    "greedy": greedy_partition,
    "multilevel": _multilevel,
}


def make_partition(graph: CSRGraph, n_parts: int, method: str = "random", rng=None) -> Partition:
    """Dispatch to a named partitioner (``random``/``block``/``bfs``/``greedy``)."""
    if method not in PARTITIONERS:
        raise PartitionError(
            f"unknown partitioner {method!r}; choose from {sorted(PARTITIONERS)}"
        )
    return PARTITIONERS[method](graph, n_parts, rng=rng)
