"""Vectorized arithmetic in ``GF(2^m)``.

This is the single hottest substrate in the reproduction: every DP step of
every evaluator multiplies arrays of field elements of shape
``(local_nodes, N2)``.  The paper does this in C; we get within a usable
factor in pure Python by doing the arithmetic on whole numpy arrays:

* addition is ``XOR`` (characteristic 2) — a single vectorized op;
* multiplication uses either log/antilog tables (``exp[(log a + log b)]``
  with a sentinel trick that avoids both the modulo and the zero-masking
  ``where``), or, for ``m <= 8``, one dense ``2^m x 2^m`` product table
  indexed with ``table[a, b]`` — measured fastest for the uint8 fields MIDAS
  actually uses (``m = 3 + ceil(log2 k) <= 8`` for ``k <= 18``; see the
  ``bench_ablation_gf_kernels`` benchmark).

Elements are numpy ``uint8`` (m <= 8) or ``uint16`` (m <= 16) whose integer
value encodes the coefficient vector of the residue polynomial.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import FieldError
from repro.ff.poly2 import find_irreducible, is_irreducible, poly_degree, poly_mulmod
from repro.util.rng import RngStream

_MAX_M = 16
_TABLE_MAX_M = 8


class GF2m:
    """The finite field with ``2^m`` elements, with array-first operations.

    Parameters
    ----------
    m:
        Extension degree; ``1 <= m <= 16``.
    modulus:
        Packed irreducible polynomial of degree ``m`` (see
        :mod:`repro.ff.poly2`).  Defaults to a known primitive polynomial.
    mul_strategy:
        ``"table"`` (dense product table, only for ``m <= 8``),
        ``"logexp"``, or ``"auto"`` (table when possible).
    kernel_strategy:
        Superset of ``mul_strategy`` that also accepts ``"bitsliced"``:
        element arrays are transposed into ``m`` uint64 bit-planes and
        multiplied with carry-less AND/XOR schedules
        (:class:`repro.ff.bitsliced.BitslicedGF2m`).  When given, it takes
        precedence over ``mul_strategy``; the resolved choice is stored as
        both attributes (``mul_strategy`` keeps its pre-kernel meaning for
        back-compat, falling back to ``"logexp"`` tables under
        ``"bitsliced"`` for scalar calls and the inverse's zero check).
    """

    def __init__(
        self,
        m: int,
        modulus: Optional[int] = None,
        mul_strategy: str = "auto",
        kernel_strategy: Optional[str] = None,
    ) -> None:
        if not (1 <= m <= _MAX_M):
            raise FieldError(f"GF2m supports 1 <= m <= {_MAX_M}, got m={m}")
        self.m = int(m)
        self.order = 1 << self.m
        self.dtype = np.uint8 if self.m <= 8 else np.uint16
        self.modulus = find_irreducible(self.m) if modulus is None else int(modulus)
        if poly_degree(self.modulus) != self.m or not is_irreducible(self.modulus):
            raise FieldError(
                f"modulus {bin(self.modulus)} is not an irreducible polynomial of degree {m}"
            )
        if kernel_strategy is not None:
            if kernel_strategy not in ("auto", "table", "logexp", "bitsliced"):
                raise FieldError(f"unknown kernel_strategy {kernel_strategy!r}")
            mul_strategy = "auto" if kernel_strategy == "bitsliced" else kernel_strategy
        if mul_strategy not in ("auto", "table", "logexp"):
            raise FieldError(f"unknown mul_strategy {mul_strategy!r}")
        use_table = mul_strategy == "table" or (mul_strategy == "auto" and m <= _TABLE_MAX_M)
        if mul_strategy == "table" and m > _TABLE_MAX_M:
            raise FieldError(f"dense table strategy needs m <= {_TABLE_MAX_M}, got m={m}")

        # lazy import: the field is a leaf dependency of nearly everything,
        # so it must not pull repro.obs (and transitively numpy-heavy
        # modules) at module-import time
        import time

        from repro.obs.metrics import get_default_registry

        t0 = time.perf_counter()
        self._build_log_tables()
        self.mul_strategy = "table" if use_table else "logexp"
        self.kernel_strategy = (
            "bitsliced" if kernel_strategy == "bitsliced" else self.mul_strategy
        )
        self._mul_table = self._build_mul_table() if use_table else None
        self._bitsliced = None
        reg = get_default_registry()
        reg.counter("midas_field_builds_total", "GF(2^m) table constructions").labels(
            m=self.m, strategy=self.kernel_strategy
        ).inc()
        reg.histogram(
            "midas_field_table_build_seconds", "GF(2^m) log/mul table build time"
        ).observe(time.perf_counter() - t0)

    # ------------------------------------------------------------------ setup
    def _build_log_tables(self) -> None:
        q1 = self.order - 1
        exp = np.zeros(q1, dtype=self.dtype)
        log = np.zeros(self.order, dtype=np.int64)
        x = 1
        generator = 0b10 if self.m > 1 else 1
        for i in range(q1):
            exp[i] = x
            log[x] = i
            x = poly_mulmod(x, generator, self.modulus)
        if x != 1 or len(set(exp.tolist())) != q1:
            # x was not a generator for this modulus; fall back to searching one.
            x = self._find_generator()
            e = 1
            for i in range(q1):
                exp[i] = e
                log[e] = i
                e = poly_mulmod(e, x, self.modulus)
        # Sentinel trick: log[0] = 2*q1 and an extended exp table that maps
        # any index >= 2*q1 to 0, so mul needs no branch and no modulo.
        log[0] = 2 * q1
        exp_ext = np.zeros(4 * q1 + 1, dtype=self.dtype)
        exp_ext[:q1] = exp
        exp_ext[q1 : 2 * q1] = exp
        self._exp = exp
        self._log = log
        self._exp_ext = exp_ext
        self._q1 = q1

    def _find_generator(self) -> int:
        q1 = self.order - 1
        for cand in range(2, self.order):
            x, n = cand, 1
            while True:
                x = poly_mulmod(x, cand, self.modulus)
                n += 1
                if x == 1:
                    break
            if n == q1:
                return cand
        raise FieldError("no multiplicative generator found (impossible for a field)")

    def _build_mul_table(self) -> np.ndarray:
        a = np.arange(self.order, dtype=self.dtype)
        la = self._log[a]
        idx = la[:, None] + la[None, :]
        return self._exp_ext[idx]

    # --------------------------------------------------------------- kernels
    @property
    def bitsliced(self):
        """The plane-wise kernel substrate for this ``(m, modulus)`` pair.

        Built lazily: fields resolved to the table/logexp kernels never pay
        for it, and the plane-resident evaluators fetch it through here so
        the scalar-column cache is shared per field instance.
        """
        if self._bitsliced is None:
            from repro.ff.bitsliced import BitslicedGF2m

            self._bitsliced = BitslicedGF2m(self.m, self.modulus)
        return self._bitsliced

    def _is_bitsliced_array(self, a: np.ndarray) -> bool:
        return self.kernel_strategy == "bitsliced" and a.ndim >= 1

    # ------------------------------------------------------------- operations
    def add(self, a, b):
        """Field addition (XOR); works elementwise on arrays or scalars."""
        return np.bitwise_xor(np.asarray(a, self.dtype), np.asarray(b, self.dtype))

    sub = add  # characteristic 2: subtraction is addition

    def mul(self, a, b):
        """Field multiplication, elementwise with broadcasting."""
        a = np.asarray(a, self.dtype)
        b = np.asarray(b, self.dtype)
        if self._is_bitsliced_array(a) or self._is_bitsliced_array(b):
            a, b = np.broadcast_arrays(a, b)
            bs = self.bitsliced
            return bs.unslice(bs.mul(bs.slice(a), bs.slice(b)), a.shape[-1], self.dtype)
        if self._mul_table is not None:
            return self._mul_table[a, b]
        return self._exp_ext[self._log[a] + self._log[b]]

    def inv(self, a):
        """Multiplicative inverse; raises on any zero element."""
        a = np.asarray(a, self.dtype)
        if np.any(a == 0):
            raise FieldError("zero has no multiplicative inverse")
        if self._is_bitsliced_array(a):
            bs = self.bitsliced
            return bs.unslice(bs.inv(bs.slice(a)), a.shape[-1], self.dtype)
        return self._exp_ext[(self._q1 - self._log[a]) % self._q1]

    def div(self, a, b):
        """Field division ``a / b``; raises on any zero divisor."""
        return self.mul(a, self.inv(b))

    def pow(self, a, e: int):
        """Field power ``a^e`` for integer ``e >= 0``, elementwise."""
        if e < 0:
            raise FieldError(f"exponent must be non-negative, got {e}")
        a = np.asarray(a, self.dtype)
        if e == 0:
            return np.ones_like(a)
        if self._is_bitsliced_array(a):
            bs = self.bitsliced
            return bs.unslice(bs.pow(bs.slice(a), e), a.shape[-1], self.dtype)
        le = (self._log[a] * e) % self._q1
        out = self._exp[le]
        return np.where(a == 0, self.dtype(0), out)

    def xor_sum(self, a, axis=None):
        """Field sum (XOR-reduce) along ``axis``."""
        return np.bitwise_xor.reduce(np.asarray(a, self.dtype), axis=axis)

    def mul_scalar(self, a, s: int):
        """Multiply array ``a`` by the scalar field element ``s``."""
        s = int(s)
        if not (0 <= s < self.order):
            raise FieldError(f"scalar {s} is not an element of GF(2^{self.m})")
        if s == 0:
            return np.zeros_like(np.asarray(a, self.dtype))
        a = np.asarray(a, self.dtype)
        if self._is_bitsliced_array(a):
            bs = self.bitsliced
            return bs.unslice(bs.mul_scalar(bs.slice(a), s), a.shape[-1], self.dtype)
        return self._exp_ext[self._log[a] + self._log[s]]

    # ------------------------------------------------------------------ draws
    def random(self, rng: RngStream, size=None) -> np.ndarray:
        """Uniform field elements (including 0)."""
        return rng.integers(0, self.order, size=size, dtype=np.int64).astype(self.dtype)

    def random_nonzero(self, rng: RngStream, size=None) -> np.ndarray:
        """Uniform *nonzero* field elements (fingerprint coefficients)."""
        return (rng.integers(0, self.order - 1, size=size, dtype=np.int64) + 1).astype(self.dtype)

    # ------------------------------------------------------------------ misc
    def element(self, value: int) -> int:
        """Validate and return a scalar element."""
        v = int(value)
        if not (0 <= v < self.order):
            raise FieldError(f"{value} is not an element of GF(2^{self.m})")
        return v

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def __eq__(self, other) -> bool:
        # kernel_strategy is part of identity: two fields with the same
        # (m, modulus) but different kernels produce bit-identical values yet
        # mean differently-shaped hot paths — sessions cache fields by
        # equality and GraphRegistry reuses sessions by compatibility, so
        # conflating them would silently hand a bitsliced caller a table
        # field (or vice versa).
        return (
            isinstance(other, GF2m)
            and other.m == self.m
            and other.modulus == self.modulus
            and other.kernel_strategy == self.kernel_strategy
        )

    def __hash__(self) -> int:
        return hash(("GF2m", self.m, self.modulus, self.kernel_strategy))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2m(m={self.m}, modulus={bin(self.modulus)}, kernel={self.kernel_strategy})"


def field_degree_for_k(k: int) -> int:
    """The paper's field size rule: ``l = 3 + ceil(log2 k)`` (min 3)."""
    if k < 1:
        raise FieldError(f"k must be >= 1, got {k}")
    return 3 + (math.ceil(math.log2(k)) if k > 1 else 0)


def default_field_for_k(
    k: int, mul_strategy: str = "auto", kernel_strategy: Optional[str] = None
) -> GF2m:
    """Construct ``GF(2^(3 + ceil(log2 k)))`` as used by Williams' refinement.

    For every subgraph size the paper evaluates (``k <= 18``) this is at most
    ``GF(2^8)``, so elements fit in a byte and the dense product table wins
    for element-wise calls; plane-resident evaluators may prefer
    ``kernel_strategy="bitsliced"`` (see the kernel calibration).
    """
    return GF2m(field_degree_for_k(k), mul_strategy=mul_strategy, kernel_strategy=kernel_strategy)
