"""Random algebraic fingerprints for multilinear detection.

A *fingerprint* is the per-round randomness of the Koutis–Williams scheme:

* ``v[i]`` — a uniform vector in ``Z_2^k`` for every node ``i`` (packed into
  a uint64).  In iteration ``q`` of the matrix representation, the group part
  of variable ``x_i`` evaluates to the indicator ``<v_i, q> == 0 (mod 2)``
  (the paper's ``1 + (-1)^{v_i^T q_bin}`` with the global factor ``2^k``
  divided out).
* ``y[i, j]`` — a uniform *nonzero* coefficient from ``GF(2^l)`` for every
  node and every DP level ``j`` (or template-subtree id for trees).  These
  make distinct surviving walks carry distinct monomials in the ``y``'s, so
  reversals and automorphisms of the same vertex set cannot cancel in
  characteristic 2; the final value is then nonzero w.h.p. by
  Schwartz–Zippel whenever any full-rank multilinear term survives.

Everything here is drawn from a *round-scoped* RNG stream, never a
rank-scoped one, so the detection transcript is independent of the parallel
decomposition — the property the parallel==sequential tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ff.gf2m import GF2m, default_field_for_k
from repro.util.bitops import parity_u64
from repro.util.rng import RngStream


def base_indicator_block(v: np.ndarray, q_start: int, n_q: int) -> np.ndarray:
    """Indicator table ``I[i, t] = 1`` iff ``<v_i, (q_start + t)>`` is even.

    Parameters
    ----------
    v:
        uint64 array of per-node vectors in ``Z_2^k`` (one row per node).
    q_start, n_q:
        The phase's iteration window ``[q_start, q_start + n_q)``; ``n_q`` is
        the batching factor ``N_2`` of the paper — evaluating a whole window
        at once is the vectorization that makes the inner loop fast *and*
        models the paper's cache-locality gain from larger ``N_2``.

    Returns
    -------
    uint8 array of shape ``(len(v), n_q)`` with values in {0, 1}.
    """
    if n_q < 1:
        raise ConfigurationError(f"iteration window must be >= 1 wide, got {n_q}")
    if q_start < 0:
        raise ConfigurationError(f"iteration window must start at >= 0, got {q_start}")
    v = np.asarray(v, dtype=np.uint64)
    q = np.arange(q_start, q_start + n_q, dtype=np.uint64)
    return (1 - parity_u64(v[:, None] & q[None, :])).astype(np.uint8)


@dataclass(frozen=True)
class Fingerprint:
    """One round's worth of randomness for a k-MLD evaluation.

    Attributes
    ----------
    k:
        Target multilinear degree (number of ``Z_2^k`` dimensions).
    field:
        The coefficient field ``GF(2^l)``.
    v:
        ``(n,)`` uint64 — per-node random vectors.
    y:
        ``(n, levels)`` field dtype — per-(node, level) nonzero coefficients.
        ``levels`` is ``k`` for paths and scan statistics, and the number of
        template subtrees for trees.
    """

    k: int
    field: GF2m
    v: np.ndarray
    y: np.ndarray

    @property
    def n(self) -> int:
        return int(self.v.shape[0])

    @property
    def levels(self) -> int:
        return int(self.y.shape[1])

    @staticmethod
    def draw(
        n: int,
        k: int,
        rng: RngStream,
        levels: int = 0,
        field: GF2m = None,
    ) -> "Fingerprint":
        """Draw a fresh fingerprint for ``n`` nodes and degree ``k``.

        ``levels`` defaults to ``k`` (one coefficient per DP level).
        """
        if n < 1:
            raise ConfigurationError(f"need at least one node, got n={n}")
        if not (1 <= k <= 63):
            raise ConfigurationError(f"k must be in [1, 63] (vectors packed in uint64), got {k}")
        if field is None:
            field = default_field_for_k(k)
        if levels <= 0:
            levels = k
        v = rng.integers(0, 1 << k, size=n, dtype=np.int64).astype(np.uint64)
        y = field.random_nonzero(rng, size=(n, levels))
        return Fingerprint(k=k, field=field, v=v, y=y)

    def base_block(self, q_start: int, n_q: int, nodes: np.ndarray = None) -> np.ndarray:
        """Indicator block for iterations ``[q_start, q_start + n_q)``.

        ``nodes`` optionally restricts to a subset of node ids (a partition's
        local vertices), returning shape ``(len(nodes), n_q)``.
        """
        v = self.v if nodes is None else self.v[np.asarray(nodes, dtype=np.int64)]
        return base_indicator_block(v, q_start, n_q)

    def level_base_block(
        self, level: int, q_start: int, n_q: int, nodes: np.ndarray = None
    ) -> np.ndarray:
        """The full per-level base value ``y[i, level] * indicator(i, q)``.

        This is the evaluated variable ``x_i`` as it appears at DP level
        ``level`` (``P(i, 1)`` in the paper's Algorithm 3, with the level's
        coefficient folded in).
        """
        if not (0 <= level < self.levels):
            raise ConfigurationError(
                f"level {level} out of range for fingerprint with {self.levels} levels"
            )
        ind = self.base_block(q_start, n_q, nodes=nodes)
        ycol = self.y[:, level] if nodes is None else self.y[np.asarray(nodes, np.int64), level]
        # indicator in {0,1}: multiply == select; avoids a field multiply.
        return (ind * ycol[:, None]).astype(self.field.dtype)
