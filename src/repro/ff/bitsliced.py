"""Bit-sliced GF(2^m) kernels over uint64 bit-planes.

The element-wise kernels in :mod:`repro.ff.gf2m` spend most of their time
in table gathers: one memory-indirect load per element per multiply.
Characteristic 2 admits a different layout — *bit-slicing* — where an
array of field elements is transposed into ``m`` uint64 planes: plane
``b``, word ``w`` holds bit ``b`` of elements ``64w .. 64w+63``.  In that
layout

* addition is a plane-wise XOR (64 lanes per machine word);
* multiplication is a carry-less schoolbook product — ``m^2`` AND/XOR
  word ops into ``2m - 1`` partial planes — followed by a reduction
  schedule derived from the modulus (``x^m = modulus mod x^m``, applied
  top plane down);
* scalar multiplication is a GF(2)-linear map: at most ``m`` XORs per
  output plane, with the column masks ``s * x^i mod modulus`` precomputed
  per scalar.

This is the trick the paper's C kernels (and Williams' original 2^k
algorithm) lean on: ~``m^2`` word ops cover 64 iteration lanes at once,
where the table kernel pays one gather *per lane*.

Layout is **node-major** ``(..., m, W)`` with ``W = ceil(n2 / 64)``: the
leading axes stay the node axis, so the evaluators' CSR gather
(``planes[indices]``) and :func:`repro.graph.csr.xor_segment_reduce`
work on planes unchanged — the whole DP can stay plane-resident across
levels and only the final ``(m, W)`` reduction is unpacked.  The
round-trip per-call dispatch (slice, multiply, unslice) is also provided
for API completeness; it is the *plane-resident* use that wins (see
``benchmarks/bench_ablation_bitslice.py``).

Lane packing uses little-endian bit order within bytes and native
(little-endian) byte order within words — the layout
``np.packbits(..., bitorder="little")`` + ``view(uint64)`` produces on
every platform numpy supports as a practical target here.  Lanes beyond
``n2`` in the last word are padding: kernels may leave garbage there; it
is masked out by ``unslice(..., n2)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import FieldError
from repro.ff.poly2 import poly_mulmod

_MAX_M = 16


def _pack_bit_rows(bits: np.ndarray, words: int) -> np.ndarray:
    """Pack a ``(..., n2)`` array of {0, 1} into ``(..., words)`` uint64."""
    packed = np.packbits(bits, axis=-1, bitorder="little")  # (..., ceil(n2/8))
    pad = words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed).view(np.uint64)


class BitslicedGF2m:
    """Plane-wise GF(2^m) arithmetic for one ``(m, modulus)`` pair.

    All plane arguments have shape ``(..., m, W)`` uint64 (node-major;
    see the module docs).  The substrate is stateless apart from the
    reduction taps and a per-scalar column cache, so one instance may be
    shared by any number of threads.
    """

    def __init__(self, m: int, modulus: int) -> None:
        if not (1 <= m <= _MAX_M):
            raise FieldError(f"bit-slicing supports 1 <= m <= {_MAX_M}, got m={m}")
        self.m = int(m)
        self.modulus = int(modulus)
        # x^m = sum_{s in taps} x^s (mod modulus): the reduction schedule
        # folds plane d into planes d - m + s for every tap s
        self._taps = tuple(s for s in range(self.m) if (self.modulus >> s) & 1)
        self._scalar_cols: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------- layout
    def words(self, n2: int) -> int:
        """uint64 words per plane row for an ``n2``-lane window."""
        if n2 < 0:
            raise FieldError(f"lane count must be >= 0, got {n2}")
        return (n2 + 63) // 64

    def slice(self, a: np.ndarray) -> np.ndarray:
        """Transpose ``(..., n2)`` field elements into ``(..., m, W)`` planes."""
        a = np.asarray(a)
        if a.ndim < 1:
            raise FieldError("slice needs at least one lane axis")
        n2 = a.shape[-1]
        w = self.words(n2)
        out = np.empty(a.shape[:-1] + (self.m, w), dtype=np.uint64)
        for b in range(self.m):
            out[..., b, :] = _pack_bit_rows(((a >> b) & 1).astype(np.uint8), w)
        return out

    def unslice(self, planes: np.ndarray, n2: int, dtype=np.uint8) -> np.ndarray:
        """Transpose ``(..., m, W)`` planes back to ``(..., n2)`` elements."""
        planes = np.ascontiguousarray(planes, dtype=np.uint64)
        out = np.zeros(planes.shape[:-2] + (n2,), dtype=dtype)
        for b in range(self.m):
            row = np.ascontiguousarray(planes[..., b, :]).view(np.uint8)
            bits = np.unpackbits(row, axis=-1, count=n2, bitorder="little")
            out |= bits.astype(dtype) << dtype(b)
        return out

    def pack_indicator(self, indicator: np.ndarray) -> np.ndarray:
        """Pack a ``(n, n2)`` {0, 1} indicator into ``(n, W)`` lane words.

        The indicator of a phase window depends only on ``(q_start, n2)``,
        so evaluators pack it once and rebuild per-level planes from the
        words (:meth:`planes_from_words`) — one packbits per phase, not
        per DP level.
        """
        return _pack_bit_rows(np.asarray(indicator, dtype=np.uint8),
                              self.words(indicator.shape[-1]))

    def planes_from_words(self, iw: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Planes of ``indicator * y[:, None]`` from pre-packed lane words.

        ``iw`` is ``(n, W)`` from :meth:`pack_indicator`, ``y`` is ``(n,)``
        field scalars; lane ``(i, t)`` of the result holds ``y[i]`` where
        the indicator bit is set — at most ``m`` row selections, no
        element-wise multiply and no per-plane slicing of a full
        ``(n, n2)`` element array.
        """
        y = np.asarray(y)
        out = np.zeros((iw.shape[0], self.m, iw.shape[-1]), dtype=np.uint64)
        for b in range(self.m):
            rows = ((y >> b) & 1).astype(bool)
            out[rows, b, :] = iw[rows]
        return out

    def indicator_planes(self, indicator: np.ndarray, y: np.ndarray) -> np.ndarray:
        """One-shot :meth:`pack_indicator` + :meth:`planes_from_words`."""
        return self.planes_from_words(self.pack_indicator(indicator), y)

    # --------------------------------------------------------- arithmetic
    def add(self, pa: np.ndarray, pb: np.ndarray) -> np.ndarray:
        """Plane addition: XOR (characteristic 2)."""
        return np.bitwise_xor(pa, pb)

    def xor_sum(self, planes: np.ndarray, axis: int = 0) -> np.ndarray:
        """Field sum (XOR-reduce) along a leading (node) axis."""
        return np.bitwise_xor.reduce(planes, axis=axis)

    def _reduce(self, t: np.ndarray) -> np.ndarray:
        """Fold partial planes ``t`` (``(..., >= m, W)``) modulo the modulus."""
        m = self.m
        for d in range(t.shape[-2] - 1, m - 1, -1):
            td = t[..., d, :]
            for s in self._taps:
                t[..., d - m + s, :] ^= td
        return np.ascontiguousarray(t[..., :m, :])

    def mul(self, pa: np.ndarray, pb: np.ndarray) -> np.ndarray:
        """Carry-less schoolbook multiply + reduction, plane-wise.

        ``m^2`` AND/XOR word ops into ``2m - 1`` partial planes, then the
        shift-and-reduce schedule.  Operand shapes must match exactly.
        """
        pa = np.asarray(pa, dtype=np.uint64)
        pb = np.asarray(pb, dtype=np.uint64)
        if pa.shape != pb.shape:
            raise FieldError(
                f"plane shapes must match, got {pa.shape} vs {pb.shape}"
            )
        m = self.m
        t = np.zeros(pa.shape[:-2] + (2 * m - 1, pa.shape[-1]), dtype=np.uint64)
        tmp = np.empty(pa.shape[:-2] + (pa.shape[-1],), dtype=np.uint64)
        for i in range(m):
            ai = pa[..., i, :]
            for j in range(m):
                np.bitwise_and(ai, pb[..., j, :], out=tmp)
                t[..., i + j, :] ^= tmp
        return self._reduce(t)

    def square(self, pa: np.ndarray) -> np.ndarray:
        """Plane squaring: ``(sum a_i x^i)^2 = sum a_i x^{2i}`` in char 2."""
        pa = np.asarray(pa, dtype=np.uint64)
        m = self.m
        t = np.zeros(pa.shape[:-2] + (2 * m - 1, pa.shape[-1]), dtype=np.uint64)
        t[..., 0 : 2 * m - 1 : 2, :] = pa
        return self._reduce(t)

    def pow(self, pa: np.ndarray, e: int) -> np.ndarray:
        """Plane power ``a^e`` (``e >= 0``), square-and-multiply.

        Matches the table kernel's convention exactly: ``a^0 = 1`` for
        every element including 0; for ``e > 0`` with ``e mod (2^m - 1)
        == 0``, zero lanes stay 0 and nonzero lanes become 1.
        """
        if e < 0:
            raise FieldError(f"exponent must be non-negative, got {e}")
        pa = np.asarray(pa, dtype=np.uint64)
        if e == 0:
            out = np.zeros_like(pa)
            out[..., 0, :] = np.uint64(0xFFFFFFFFFFFFFFFF)
            return out
        q1 = (1 << self.m) - 1
        er = e % q1
        if er == 0:
            nonzero = np.bitwise_or.reduce(pa, axis=-2)
            out = np.zeros_like(pa)
            out[..., 0, :] = nonzero
            return out
        result = None
        base = pa
        while er:
            if er & 1:
                result = base.copy() if result is None else self.mul(result, base)
            er >>= 1
            if er:
                base = self.square(base)
        return result

    def inv(self, pa: np.ndarray) -> np.ndarray:
        """Plane inverse ``a^(2^m - 2)``; zero lanes are the caller's problem
        (the element-level dispatcher raises before slicing)."""
        return self.pow(pa, (1 << self.m) - 2)

    def mul_scalar(self, pa: np.ndarray, s: int) -> np.ndarray:
        """Multiply planes by the scalar ``s``: a GF(2)-linear map.

        Output plane ``b`` is the XOR of input planes ``i`` with bit ``b``
        set in ``s * x^i mod modulus`` — at most ``m`` XORs per plane,
        with the columns cached per scalar.
        """
        s = int(s)
        if not (0 <= s < (1 << self.m)):
            raise FieldError(f"scalar {s} is not an element of GF(2^{self.m})")
        pa = np.asarray(pa, dtype=np.uint64)
        if s == 0:
            return np.zeros_like(pa)
        cols = self._scalar_cols.get(s)
        if cols is None:
            cols = self._scalar_cols[s] = tuple(
                poly_mulmod(s, 1 << i, self.modulus) for i in range(self.m)
            )
        out = np.zeros_like(pa)
        for i, ci in enumerate(cols):
            if not ci:
                continue
            ai = pa[..., i, :]
            for b in range(self.m):
                if (ci >> b) & 1:
                    out[..., b, :] ^= ai
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitslicedGF2m(m={self.m}, modulus={bin(self.modulus)})"


__all__ = ["BitslicedGF2m"]
