"""Finite-field arithmetic substrate.

MIDAS evaluates its polynomials over the group algebra
``GF(2^l)[Z_2^k]`` with ``l = 3 + ceil(log2 k)``.  This subpackage provides:

* :mod:`repro.ff.poly2` — polynomials over GF(2) packed into machine ints,
  with an irreducibility test used to construct field moduli;
* :mod:`repro.ff.gf2m` — vectorized ``GF(2^m)`` arithmetic (numpy log/antilog
  and dense multiplication tables);
* :mod:`repro.ff.group_algebra` — a dense reference implementation of the
  group algebra, used as a correctness oracle for small ``k``;
* :mod:`repro.ff.fingerprint` — the random assignments (vectors ``v_i`` in
  ``Z_2^k`` and coefficients ``y`` in ``GF(2^l)``) that turn structure
  detection into polynomial identity testing.
"""

from repro.ff.bitsliced import BitslicedGF2m
from repro.ff.gf2m import GF2m, default_field_for_k
from repro.ff.fingerprint import Fingerprint, base_indicator_block
from repro.ff.group_algebra import GroupAlgebra, GroupAlgebraElement
from repro.ff.poly2 import (
    find_irreducible,
    is_irreducible,
    poly_degree,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mul,
)

__all__ = [
    "BitslicedGF2m",
    "GF2m",
    "default_field_for_k",
    "Fingerprint",
    "base_indicator_block",
    "GroupAlgebra",
    "GroupAlgebraElement",
    "find_irreducible",
    "is_irreducible",
    "poly_degree",
    "poly_divmod",
    "poly_gcd",
    "poly_mod",
    "poly_mul",
]
