"""Polynomials over GF(2), packed into Python integers.

Bit ``j`` of the integer is the coefficient of ``x^j``; e.g. ``0b1011`` is
``x^3 + x + 1``.  Python's arbitrary-precision ints make this representation
exact for any degree, and XOR is polynomial addition.

These routines exist to *construct* fields: :func:`find_irreducible` produces
the modulus for ``GF(2^m)`` and :func:`is_irreducible` (Rabin's test)
verifies it.  They are scalar code on ints — the hot path never touches
them; the hot path uses the tables built once per field in
:mod:`repro.ff.gf2m`.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import FieldError


def poly_degree(p: int) -> int:
    """Degree of ``p``; the zero polynomial has degree -1 by convention."""
    if p < 0:
        raise FieldError(f"polynomials are encoded as non-negative ints, got {p}")
    return p.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less (GF(2)) product of two packed polynomials."""
    if a < 0 or b < 0:
        raise FieldError("polynomials are encoded as non-negative ints")
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_divmod(a: int, b: int) -> Tuple[int, int]:
    """Quotient and remainder of ``a / b`` over GF(2)."""
    if b == 0:
        raise FieldError("division by the zero polynomial")
    q = 0
    db = poly_degree(b)
    while poly_degree(a) >= db:
        shift = poly_degree(a) - db
        q ^= 1 << shift
        a ^= b << shift
    return q, a


def poly_mod(a: int, b: int) -> int:
    """Remainder of ``a / b`` over GF(2)."""
    return poly_divmod(a, b)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor over GF(2) (monic by construction)."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_mulmod(a: int, b: int, mod: int) -> int:
    """``(a * b) mod m`` over GF(2) without forming the full product degree."""
    if mod == 0:
        raise FieldError("modulus must be nonzero")
    a = poly_mod(a, mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if poly_degree(a) >= poly_degree(mod):
            a ^= mod << (poly_degree(a) - poly_degree(mod))
    return result


def poly_powmod(a: int, e: int, mod: int) -> int:
    """``a^e mod m`` over GF(2) by square-and-multiply."""
    if e < 0:
        raise FieldError(f"exponent must be non-negative, got {e}")
    result = 1
    a = poly_mod(a, mod)
    while e:
        if e & 1:
            result = poly_mulmod(result, a, mod)
        a = poly_mulmod(a, a, mod)
        e >>= 1
    return result


def _prime_factors(n: int) -> list:
    out = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


def is_irreducible(f: int) -> bool:
    """Rabin's irreducibility test for a packed GF(2) polynomial.

    ``f`` of degree ``m`` is irreducible over GF(2) iff
    ``x^(2^m) == x (mod f)`` and for every prime ``p | m``,
    ``gcd(x^(2^(m/p)) - x, f) == 1``.
    """
    m = poly_degree(f)
    if m <= 0:
        return False
    if m == 1:
        return True  # x and x+1
    x = 0b10
    for p in _prime_factors(m):
        h = poly_powmod(x, 1 << (m // p), f) ^ x
        if poly_gcd(h, f) != 1:
            return False
    return poly_powmod(x, 1 << m, f) == x


#: Known-good irreducible (indeed primitive) polynomials for small degrees,
#: so field construction is instant for every modulus MIDAS ever needs
#: (k <= 18 implies m <= 8; the table goes further for the test-suite).
_PRIMITIVE = {
    1: 0b11,  # x + 1
    2: 0b111,  # x^2 + x + 1
    3: 0b1011,  # x^3 + x + 1
    4: 0b10011,  # x^4 + x + 1
    5: 0b100101,  # x^5 + x^2 + 1
    6: 0b1000011,  # x^6 + x + 1
    7: 0b10000011,  # x^7 + x + 1
    8: 0b100011011,  # x^8 + x^4 + x^3 + x + 1 (the AES polynomial)
    9: 0b1000010001,  # x^9 + x^4 + 1
    10: 0b10000001001,  # x^10 + x^3 + 1
    11: 0b100000000101,  # x^11 + x^2 + 1
    12: 0b1000001010011,  # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,  # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,  # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
}


def find_irreducible(m: int) -> int:
    """An irreducible polynomial of degree ``m`` over GF(2).

    Uses the precomputed primitive table when available, otherwise scans odd
    polynomials of the right degree (there are ~2^m/m irreducibles, so the
    scan terminates quickly).
    """
    if m < 1:
        raise FieldError(f"field degree must be >= 1, got {m}")
    if m in _PRIMITIVE:
        return _PRIMITIVE[m]
    base = 1 << m
    for tail in range(1, base, 2):  # constant term must be 1
        f = base | tail
        if is_irreducible(f):
            return f
    raise FieldError(f"no irreducible polynomial of degree {m} found (impossible)")
