"""Dense reference implementation of the group algebra ``GF(2^l)[Z_2^k]``.

An element is a table of ``2^k`` coefficients from ``GF(2^l)``, one per group
element of ``Z_2^k`` (k-bit vectors under XOR).  Multiplication is the
XOR-convolution

    ``(a * b)[w] = sum_{u XOR v = w} a[u] * b[v]``.

This is the algebra the sequential theory (Section III of the paper) is
stated in.  It costs ``O(4^k)`` per product, so it is *not* the production
evaluation path — the production path is the ``2^k``-iteration matrix
representation in :mod:`repro.core`.  It exists as a small-``k`` oracle: the
test-suite checks that evaluating a polynomial here (where the
square-kills-itself identity ``(v0+v_i)^2 = 0`` is structural) agrees with
the iteration-based evaluation used everywhere else.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import FieldError
from repro.ff.gf2m import GF2m


class GroupAlgebra:
    """The algebra ``GF(2^l)[Z_2^k]`` for a fixed field and dimension ``k``."""

    def __init__(self, field: GF2m, k: int) -> None:
        if k < 1:
            raise FieldError(f"group dimension k must be >= 1, got {k}")
        if k > 16:
            raise FieldError(
                f"dense group algebra is a small-k oracle; k={k} would allocate 2^{k} "
                "coefficients per element — use the iteration-based evaluator instead"
            )
        self.field = field
        self.k = int(k)
        self.size = 1 << self.k

    # ------------------------------------------------------------- factories
    def zero(self) -> "GroupAlgebraElement":
        return GroupAlgebraElement(self, np.zeros(self.size, dtype=self.field.dtype))

    def one(self) -> "GroupAlgebraElement":
        coeffs = np.zeros(self.size, dtype=self.field.dtype)
        coeffs[0] = 1
        return GroupAlgebraElement(self, coeffs)

    def basis(self, v: int, coeff: int = 1) -> "GroupAlgebraElement":
        """The element ``coeff * v`` for a single group element ``v``."""
        if not (0 <= v < self.size):
            raise FieldError(f"group element {v} out of range for Z_2^{self.k}")
        coeffs = np.zeros(self.size, dtype=self.field.dtype)
        coeffs[v] = self.field.element(coeff)
        return GroupAlgebraElement(self, coeffs)

    def variable(self, v: int, coeff: int = 1) -> "GroupAlgebraElement":
        """The assignment ``x = coeff * (v0 + v)`` used by the detection scheme.

        Squares of such elements vanish:
        ``(v0+v)^2 = v0 + 2 v0 v + v0 = 0`` in characteristic 2.
        """
        e = self.basis(0, coeff) + self.basis(v, coeff)
        return e

    def from_coeffs(self, coeffs: Sequence[int]) -> "GroupAlgebraElement":
        arr = np.asarray(coeffs, dtype=self.field.dtype)
        if arr.shape != (self.size,):
            raise FieldError(f"expected {self.size} coefficients, got shape {arr.shape}")
        return GroupAlgebraElement(self, arr.copy())

    def sum(self, elements: Iterable["GroupAlgebraElement"]) -> "GroupAlgebraElement":
        acc = self.zero()
        for e in elements:
            acc = acc + e
        return acc

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GroupAlgebra) and other.k == self.k and other.field == self.field
        )

    def __hash__(self) -> int:
        return hash(("GroupAlgebra", self.k, self.field))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupAlgebra(GF(2^{self.field.m})[Z_2^{self.k}])"


class GroupAlgebraElement:
    """A dense element of a :class:`GroupAlgebra`; immutable by convention."""

    __slots__ = ("algebra", "coeffs")

    def __init__(self, algebra: GroupAlgebra, coeffs: np.ndarray) -> None:
        self.algebra = algebra
        self.coeffs = coeffs

    def _check_same(self, other: "GroupAlgebraElement") -> None:
        if self.algebra != other.algebra:
            raise FieldError("cannot combine elements of different group algebras")

    def __add__(self, other: "GroupAlgebraElement") -> "GroupAlgebraElement":
        self._check_same(other)
        return GroupAlgebraElement(self.algebra, np.bitwise_xor(self.coeffs, other.coeffs))

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "GroupAlgebraElement") -> "GroupAlgebraElement":
        self._check_same(other)
        field = self.algebra.field
        size = self.algebra.size
        out = np.zeros(size, dtype=field.dtype)
        a = self.coeffs
        b = other.coeffs
        nz = np.nonzero(a)[0]
        group = np.arange(size, dtype=np.int64)
        for u in nz:
            # a[u] * b[v] lands on group element u XOR v for every v.
            contrib = field.mul_scalar(b, int(a[u]))
            np.bitwise_xor.at(out, group ^ int(u), contrib)
        return GroupAlgebraElement(self.algebra, out)

    def scale(self, s: int) -> "GroupAlgebraElement":
        """Multiply by a scalar field element."""
        return GroupAlgebraElement(
            self.algebra, self.algebra.field.mul_scalar(self.coeffs, s)
        )

    def is_zero(self) -> bool:
        return not np.any(self.coeffs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GroupAlgebraElement)
            and self.algebra == other.algebra
            and np.array_equal(self.coeffs, other.coeffs)
        )

    def __hash__(self) -> int:
        return hash((self.algebra, self.coeffs.tobytes()))

    def __pow__(self, e: int) -> "GroupAlgebraElement":
        if e < 0:
            raise FieldError("group-algebra elements are not generally invertible")
        result = self.algebra.one()
        base = self
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nz = np.nonzero(self.coeffs)[0]
        if len(nz) == 0:
            return "GA<0>"
        terms = " + ".join(f"{int(self.coeffs[v])}*[{v:0{self.algebra.k}b}]" for v in nz[:6])
        more = "" if len(nz) <= 6 else f" + ... ({len(nz)} terms)"
        return f"GA<{terms}{more}>"
