#!/usr/bin/env python
"""Temporal bio-surveillance: how fast does the scan catch an outbreak?

Extends the epidemic example to the *temporal* setting the paper's
bio-surveillance motivation implies: daily case counts stream in, the scan
statistic runs every day, and the interesting number is the detection
delay — days between outbreak seeding and the first alarm — versus the
false-alarm behaviour on pre-outbreak days.

Run:  python examples/outbreak_surveillance.py
"""

from repro import RngStream
from repro.apps.epidemics import OutbreakStudy, SurveillanceRegion


def main() -> None:
    rng = RngStream(1918, name="surveillance")
    region = SurveillanceRegion.synthetic(n_units=500, avg_degree=12,
                                          rng=rng.child("region"))
    print(f"surveillance region: {region.graph} "
          f"(total baseline {region.populations.sum():.0f} cases/day)")

    study = OutbreakStudy(
        region, cluster_size=6, seed_day=3, n_days=8, growth=1.9,
        alpha=0.01, k=6, eps=0.1,
    )
    report = study.run(rng=rng.child("run"), score_threshold=12.0)

    print(f"\noutbreak seeded on day {study.seed_day} "
          f"(cluster: {sorted(int(x) for x in report.cluster)})")
    print(f"{'day':>4} {'phase':>10} {'best BJ score':>14} {'alarm':>6}")
    for d, res in enumerate(report.daily):
        phase = "endemic" if d < study.seed_day else "outbreak"
        alarm = "YES" if res.best_score >= report.score_threshold else ""
        print(f"{d:>4} {phase:>10} {res.best_score:>14.2f} {alarm:>6}")

    if report.detected_on is not None:
        print(f"\nfirst alarm on day {report.detected_on} -> detection delay "
              f"{report.detection_delay} day(s) after seeding")
        print(f"false alarm before seeding: {report.false_alarm}")
    else:
        print("\noutbreak was never detected (threshold too high?)")


if __name__ == "__main__":
    main()
