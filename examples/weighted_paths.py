#!/usr/bin/env python
"""Maximum-weight k-paths: the Problem 1 variant on a toy supply chain.

Section II-A1 notes the approach extends to "finding a maximum weight
embedding in a weighted version of the graph".  Scenario: a logistics
network where each depot has an integer profit score; we want the most
profitable simple route visiting exactly k depots.

Shows the weight-resolved MIDAS evaluation (`max_weight_path`), exact
verification on the small instance, and the rounding workflow for
real-valued profits.

Run:  python examples/weighted_paths.py
"""

import numpy as np

from repro import RngStream, erdos_renyi, max_weight_path
from repro import exact
from repro.scanstat.weights import round_weights


def main() -> None:
    rng = RngStream(77, name="routes")
    g = erdos_renyi(60, m=120, rng=rng.child("network"))
    profits = rng.child("profits").integers(0, 6, size=g.n)
    k = 5
    print(f"logistics network: {g}")
    print(f"depot profits: integers in [0, 5], k = {k} stops")

    best = max_weight_path(g, k, profits, eps=0.02, rng=rng.child("detect"))
    truth = exact.max_weight_path(g, k, profits)
    print(f"\nMIDAS max-weight {k}-path:  {best}")
    print(f"exact (DFS) verification:  {truth}")
    assert best == truth, "one-sided Monte Carlo matched the exact optimum"

    # real-valued profits: round to 12 levels first (knapsack trick)
    real_profits = rng.child("real").random(g.n) * 17.3
    int_profits, scale = round_weights(real_profits, levels=12)
    approx = max_weight_path(g, k, int_profits, eps=0.02, rng=rng.child("detect2"))
    print(f"\nreal-valued profits rounded to 12 levels (scale {scale:.3f}):")
    print(f"  best rounded total: {approx}  (~{approx * scale:.2f} in real units,")
    print(f"  within {k} * {scale:.3f} = {k * scale:.2f} of the true optimum)")


if __name__ == "__main__":
    main()
