#!/usr/bin/env python
"""Los-Angeles-style highway congestion detection (paper Fig 13).

Synthesizes a PeMS-like sensor network with per-sensor speed history,
injects an incident (a run of sensors far below their own historical
rush-hour speeds), and runs the paper's exact pipeline: normal-model
p-values from snapshots 1..t-1, binary weights at alpha, scan-statistics
MIDAS with k=12.

The paper's key qualitative point is reproduced: routinely congested
segments (slow *every* Friday rush hour) are NOT flagged, because their
history predicts the slowness; only the incident - unexpectedly slow
relative to its own history - lights up.

Run:  python examples/roadnet_congestion.py
"""

import numpy as np

from repro import RngStream
from repro.apps.roadnet import CongestionStudy, build_highway_network


def main() -> None:
    rng = RngStream(20140509, name="roadnet")  # Friday May 9, 2014
    net = build_highway_network(n_corridors=8, sensors_per_corridor=32,
                                rng=rng.child("map"))
    print(f"highway network: {net.graph} ({net.graph.n} sensors, "
          f"{net.corridor_of.max() + 1} corridors)")

    study = CongestionStudy(net, n_history=48, rush_hour_dip=14.0, incident_dip=24.0)
    current, mu, sigma, incident = study.synthesize(incident_len=8, rng=rng.child("data"))
    print(f"\ninjected incident: sensors {incident.tolist()} "
          f"on corridor {int(net.corridor_of[incident[0]])}")
    z = (current - mu) / sigma
    print(f"incident z-scores: mean {z[incident].mean():.1f} "
          f"(rest of network: {np.delete(z, incident).mean():+.2f})")

    # the paper runs k=12 on its cluster; the pure-Python DP at k=8 keeps
    # this walkthrough interactive while exercising the identical pipeline
    result = study.detect(current, mu, sigma, k=8, alpha=0.05, eps=0.2,
                          rng=rng.child("detect"), extract=True)
    print(f"\n{result.summary()}")
    print(f"sensors flagged individually: {result.details['n_flagged_sensors']}")

    if result.cluster is not None:
        scores = CongestionStudy.score_recovery(result.cluster, incident)
        print(f"detected cluster: {sorted(int(x) for x in result.cluster)}")
        print(f"precision {scores['precision']:.2f}, recall {scores['recall']:.2f} "
              f"against the injected incident")
    print(
        "\nNote: every sensor is slow right now (rush hour), but only the\n"
        "incident run is slow *relative to its own history* - exactly the\n"
        "paper's 'unexpected congestion' semantics."
    )


if __name__ == "__main__":
    main()
