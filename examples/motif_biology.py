#!/usr/bin/env python
"""Tree-motif analysis of a protein-interaction-style network.

The paper motivates subgraph detection with biological network motifs
([1], [2]): are specific small trees (signaling chains, hubs-with-spokes)
present or enriched in an interaction network?  This example:

1. builds a scale-free PPI-like network (Barabási–Albert);
2. uses MIDAS to *decide* which tree templates embed (fast, O(k) memory);
3. uses the color-coding baseline to *count* approximate embeddings
   (the FASCIA-style estimate, O(2^k) memory);
4. compares enrichment against a degree-matched random rewiring.

Run:  python examples/motif_biology.py
"""

import numpy as np

from repro import RngStream, TreeTemplate, barabasi_albert, detect_tree, erdos_renyi
from repro.baselines import color_coding_count


def motif_panel():
    return [
        TreeTemplate.path(5),  # linear signaling cascade
        TreeTemplate.star(5),  # hub with 4 partners
        TreeTemplate.binary(7),  # branched complex
        TreeTemplate.caterpillar(6),  # decorated chain
    ]


def main() -> None:
    rng = RngStream(1995, name="motifs")
    ppi = barabasi_albert(2_000, 3, rng=rng.child("ppi"))
    null = erdos_renyi(ppi.n, m=ppi.num_edges, rng=rng.child("null"))
    print(f"PPI-like network: {ppi}")
    print(f"ER null model:    {null}\n")

    print(f"{'motif':>15} {'present?':>9} {'count(PPI)':>14} {'count(ER)':>14} {'enrichment':>11}")
    for tmpl in motif_panel():
        res = detect_tree(ppi, tmpl, eps=0.02, rng=rng.child(f"detect-{tmpl.name}"))
        c_ppi = color_coding_count(ppi, tmpl, n_iterations=60, rng=rng.child(f"c1-{tmpl.name}"))
        c_null = color_coding_count(null, tmpl, n_iterations=60, rng=rng.child(f"c0-{tmpl.name}"))
        enrich = c_ppi / c_null if c_null > 0 else float("inf")
        print(
            f"{tmpl.name:>15} {str(res.found):>9} {c_ppi:>14.3e} {c_null:>14.3e} "
            f"{enrich:>10.2f}x"
        )

    print(
        "\nHubs make star and branched motifs far more frequent in the\n"
        "scale-free network than in the degree-matched ER null - the classic\n"
        "motif-enrichment signal the paper's intro cites."
    )


if __name__ == "__main__":
    main()
