#!/usr/bin/env python
"""Regenerate the paper's figures programmatically and persist results.

Shows the `repro.experiments` API (the same engine behind the pytest
benches and the `python -m repro figures` CLI) together with result
serialization: sweep a figure, print its series, and store a modeled
estimate as versioned JSON for later analysis.

Run:  python examples/reproduce_figures.py
"""

import json
import tempfile
from pathlib import Path

from repro import PartitionStats, PhaseSchedule, estimate_runtime, juliet
from repro.experiments import fig11_series, fig3_8_series, optimal_n1
from repro.runtime.costmodel import KernelCalibration
from repro.serialization import dump_result, load_result


def main() -> None:
    print("calibrating the DP kernel (once, reused for every figure)...")
    cal = KernelCalibration.measure(sample_nodes=2048, avg_degree=14, k=10)

    # --- Figs 3-5 regime: the interior-optimal N1 -------------------------
    rows = fig3_8_series(k=6, n_processors=(512,), calibration=cal)
    print("\nFig 3 (random-1e6, k=6, N=512, BS1): runtime vs N1")
    for r in rows:
        if r["N=512"] is not None:
            print(f"  N1={r['n1']:>4}: {r['N=512']:8.4f}s")
    best = optimal_n1(rows, "N=512")
    print(f"  -> interior optimum at N1 = {best}")

    # --- Fig 11: the FASCIA wall ------------------------------------------
    rows = fig11_series(k_sweep=range(8, 15), calibration=cal)
    print("\nFig 11 (random-1e6, N=512): MIDAS vs FASCIA")
    for r in rows:
        fa = f"{r['fascia_s']:.1f}s" if r["fascia_feasible"] else "FAIL (memory)"
        print(f"  k={r['k']:>2}: MIDAS {r['midas_s']:8.2f}s   FASCIA {fa}")

    # --- persist a modeled estimate as JSON -------------------------------
    sched = PhaseSchedule(10, 512, 32, PhaseSchedule.bs_max(10, 512, 32))
    est = estimate_runtime(
        PartitionStats.random_model(1_000_000, 13_800_000, 32), sched, cal,
        juliet().cost_model(512),
    )
    out = Path(tempfile.gettempdir()) / "midas_k10_estimate.json"
    dump_result(est, out)
    back = load_result(out)
    print(f"\nmodeled k=10 run persisted to {out}")
    print(f"  round-trip total: {back.total_seconds:.4f}s "
          f"(comm fraction {back.comm_fraction:.1%})")
    print(f"  raw JSON keys: {sorted(json.loads(out.read_text()))[:6]} ...")


if __name__ == "__main__":
    main()
