#!/usr/bin/env python
"""Disease-outbreak detection with graph scan statistics (paper Problem 2).

A miami-like contact network carries per-county baseline populations; an
outbreak elevates Poisson case counts in one connected neighbourhood.  The
pipeline is the paper's: counts -> Poisson p-values -> binary weights ->
MIDAS scan grid -> Berk-Jones maximization -> cluster extraction ->
permutation-test significance.

Run:  python examples/epidemic_anomaly.py
"""

import numpy as np

from repro import AnomalyDetector, BerkJones, RngStream, miami_like, plant_cluster
from repro.scanstat.events import inject_poisson_counts, pvalues_from_counts
from repro.scanstat.weights import binary_weights_from_pvalues


def main() -> None:
    rng = RngStream(2014, name="epidemic")
    g = miami_like(800, avg_degree=14, rng=rng.child("contact-net"))
    print(f"contact network: {g}")

    # ground truth: a 6-county outbreak at 5x the baseline rate
    outbreak = plant_cluster(g, 6, rng=rng.child("outbreak"))
    baselines = 5.0 + 20.0 * rng.child("pop").random(g.n)
    counts = inject_poisson_counts(
        baselines, outbreak, elevation=5.0, rng=rng.child("cases")
    )
    print(f"injected outbreak counties: {sorted(outbreak.tolist())}")

    # the detection pipeline
    alpha = 0.01
    pvals = pvalues_from_counts(counts, baselines)
    weights = binary_weights_from_pvalues(pvals, alpha=alpha)
    print(f"counties individually significant at alpha={alpha}: {int(weights.sum())}")

    detector = AnomalyDetector(g, BerkJones(alpha=alpha), k=6, eps=0.1)
    result = detector.detect(weights, rng=rng.child("scan"), extract=True)
    print(f"\n{result.summary()}")

    if result.cluster is not None:
        got = set(result.cluster.tolist())
        true = set(outbreak.tolist())
        inter = got & true
        print(f"extracted cluster:  {sorted(got)}")
        print(
            f"overlap with truth: {len(inter)}/{len(got)} extracted counties "
            f"are real outbreak counties"
        )

    p = detector.significance(
        weights, result.best_score, n_null=12, rng=rng.child("perm")
    )
    print(f"permutation-test p-value of the detected cluster: {p:.3f}")


if __name__ == "__main__":
    main()
