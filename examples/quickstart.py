#!/usr/bin/env python
"""Quickstart: detect a k-path with MIDAS, sequentially and on a simulated cluster.

Run:  python examples/quickstart.py
"""

from repro import (
    MidasRuntime,
    RngStream,
    detect_path,
    erdos_renyi,
    extract_witness,
    plant_path,
)


def main() -> None:
    # --- build a graph with a guaranteed 8-path --------------------------
    rng = RngStream(2018, name="quickstart")
    g = erdos_renyi(5_000, rng=rng.child("graph"))
    g, planted = plant_path(g, 8, rng=rng.child("plant"))
    print(f"graph: {g}")
    print(f"planted an 8-path on vertices {planted.tolist()}")

    # --- sequential detection --------------------------------------------
    res = detect_path(g, k=8, eps=0.05, rng=rng.child("detect"))
    print(f"\nsequential: {res.summary()}")

    # --- the same detection on a simulated 8-rank cluster ----------------
    runtime = MidasRuntime(n_processors=8, n1=4, n2=16, mode="simulated")
    par = detect_path(g, k=8, eps=0.05, rng=rng.child("detect"), runtime=runtime)
    print(f"parallel:   {par.summary()}")
    assert par.found == res.found, "parallelization must not change answers"

    # --- recover an actual witness path ----------------------------------
    def oracle(masked):
        return detect_path(masked, 8, eps=0.02, rng=rng.child("oracle")).found

    witness = extract_witness(g, oracle, 8, rng=rng.child("peel"))
    print(f"\nwitness vertices (some 8-path lives here): {witness.tolist()}")


if __name__ == "__main__":
    main()
