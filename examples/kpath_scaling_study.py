#!/usr/bin/env python
"""Scaling study: reproduce the shape of the paper's Figures 3-10 locally.

Sweeps the partition size N1 (at BS1 and BSMax batching) and the processor
count N on a random-1e6 stand-in, using the calibrated performance model —
and validates one configuration by actually running the SPMD decomposition
on the simulator.

Run:  python examples/kpath_scaling_study.py
"""

from repro import (
    KernelCalibration,
    MidasRuntime,
    PartitionStats,
    PhaseSchedule,
    RngStream,
    detect_path,
    estimate_runtime,
    juliet,
    load_dataset,
)


def sweep_n1(n: int, m: int, k: int, N: int, calib, bs_max: bool) -> None:
    label = "BSMax" if bs_max else "BS1"
    print(f"\nk-path modeled runtime vs N1   (k={k}, N={N}, {label})")
    print(f"{'N1':>6} {'N2':>6} {'batches':>8} {'time[s]':>12} {'comm%':>7}")
    n1 = 1
    best = (float("inf"), None)
    while n1 <= N:
        n2 = PhaseSchedule.bs_max(k, N, n1) if bs_max else 1
        sched = PhaseSchedule(k, N, n1, n2)
        est = estimate_runtime(
            PartitionStats.random_model(n, m, n1), sched, calib, juliet().cost_model(N)
        )
        print(
            f"{n1:>6} {n2:>6} {sched.n_batches:>8} {est.total_seconds:>12.4f} "
            f"{est.comm_fraction:>6.1%}"
        )
        if est.total_seconds < best[0]:
            best = (est.total_seconds, n1)
        n1 *= 2
    print(f"  -> optimal N1 = {best[1]} at {best[0]:.4f}s (interior optimum, paper Figs 3-8)")


def strong_scaling(n: int, m: int, k: int, calib) -> None:
    print(f"\nstrong scaling, N1=N (paper Fig 10), k={k}")
    print(f"{'N':>6} {'time[s]':>12} {'speedup':>9}")
    base = None
    for N in (32, 64, 128, 256, 512):
        sched = PhaseSchedule(k, N, N, PhaseSchedule.bs_max(k, N, N))
        est = estimate_runtime(
            PartitionStats.random_model(n, m, N), sched, calib, juliet().cost_model(N)
        )
        base = base or est.total_seconds
        print(f"{N:>6} {est.total_seconds:>12.4f} {base / est.total_seconds:>9.2f}x")


def validate_with_simulator() -> None:
    print("\nvalidating the decomposition on the SPMD simulator (small instance)...")
    g = load_dataset("random-1e6", scale=0.0005, rng=RngStream(7))
    seq = detect_path(g, 6, eps=0.2, rng=RngStream(8), early_exit=False)
    sim = detect_path(
        g, 6, eps=0.2, rng=RngStream(8), early_exit=False,
        runtime=MidasRuntime(n_processors=8, n1=4, n2=8, mode="simulated"),
    )
    match = [r.value for r in seq.rounds] == [r.value for r in sim.rounds]
    print(f"  sequential round values: {[r.value for r in seq.rounds]}")
    print(f"  simulated  round values: {[r.value for r in sim.rounds]}")
    print(f"  bit-identical: {match}")
    assert match


def main() -> None:
    print("calibrating the DP kernel from live measurements...")
    calib = KernelCalibration.measure(sample_nodes=2048, avg_degree=14, k=10)
    for n2, c1 in sorted(calib.as_table().items()):
        print(f"  N2={n2:>5}: c1 = {c1 * 1e9:8.2f} ns per (vertex, iteration)")

    n, m, k = 1_000_000, 13_800_000, 10  # random-1e6 at paper scale
    sweep_n1(n, m, 6, 512, calib, bs_max=False)  # Figs 3-5 regime
    sweep_n1(n, m, 6, 512, calib, bs_max=True)  # Figs 6-8 regime
    strong_scaling(n, m, k, calib)
    validate_with_simulator()


if __name__ == "__main__":
    main()
