"""Ablation: partition quality vs modeled MIDAS runtime.

The paper uses "a naive [random] partitioning scheme" and notes the
algorithm's costs are governed by MAXLOAD and MAXDEG (Theorem 2).  This
ablation quantifies the headroom: locality-aware partitioners cut MAXDEG,
which shifts the communication term and the optimal N1.
"""

import pytest

from _bench_utils import fmt, print_series
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.graph.generators import grid2d, miami_like
from repro.graph.partition import PARTITIONERS, make_partition
from repro.runtime.cluster import juliet
from repro.util.rng import RngStream

K, N, N1 = 8, 256, 16


@pytest.mark.parametrize(
    "graph_name",
    ["miami_like", "grid"],
)
def test_partitioner_ablation(graph_name, calibration):
    if graph_name == "grid":
        g = grid2d(64, 64)
    else:
        g = miami_like(4000, avg_degree=20, rng=RngStream(1))
    sched = PhaseSchedule(K, N, N1, PhaseSchedule.bs_max(K, N, N1))
    rows = []
    times = {}
    for method in sorted(PARTITIONERS):
        p = make_partition(g, N1, method, rng=RngStream(2))
        est = estimate_runtime(
            PartitionStats.from_partition(p), sched, calibration, juliet().cost_model(N)
        )
        times[method] = est.total_seconds
        rows.append(
            [
                method,
                p.max_load,
                p.max_degree,
                p.edge_cut,
                fmt(est.total_seconds),
                f"{est.comm_fraction:.1%}",
            ]
        )
    print_series(
        f"Ablation: partitioner quality -> modeled runtime ({graph_name}, "
        f"k={K}, N={N}, N1={N1})",
        ["method", "MAXLOAD", "MAXDEG", "edge cut", "time [s]", "comm %"],
        rows,
    )
    # locality-aware partitioning must not lose to the naive scheme on
    # spatial graphs (and normally wins)
    assert times["greedy"] <= times["random"] * 1.02
    assert times["bfs"] <= times["random"] * 1.05


def test_maxdeg_drives_comm_term(calibration):
    """Directly verify Theorem 2: halving MAXDEG ~halves the bandwidth part
    of the comm term (at batched N2 where bandwidth dominates latency)."""
    sched = PhaseSchedule(K, N, N1, PhaseSchedule.bs_max(K, N, N1))
    base = PartitionStats(n=100_000, m=1_000_000, n1=N1, max_load=6_300,
                          max_deg=120_000, n_peers_max=15)
    half = PartitionStats(n=100_000, m=1_000_000, n1=N1, max_load=6_300,
                          max_deg=60_000, n_peers_max=15)
    cm = juliet().cost_model(N)
    e1 = estimate_runtime(base, sched, calibration, cm)
    e2 = estimate_runtime(half, sched, calibration, cm)
    assert e1.compute_seconds == e2.compute_seconds
    assert e2.comm_seconds < e1.comm_seconds
    ratio = (e1.comm_seconds - e1.reduce_seconds * e1.rounds) / max(
        e2.comm_seconds - e2.reduce_seconds * e2.rounds, 1e-12
    )
    assert 1.6 < ratio < 2.2


@pytest.mark.benchmark(group="ablation-partitioners")
@pytest.mark.parametrize("method", sorted(PARTITIONERS))
def test_partitioner_speed(benchmark, method):
    g = miami_like(2000, avg_degree=16, rng=RngStream(3))
    benchmark(lambda: make_partition(g, 8, method, rng=RngStream(4)))
