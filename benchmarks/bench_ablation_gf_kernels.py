"""Ablation: GF(2^m) multiplication strategies.

The inner loop is dominated by field multiplies; the library ships three
vectorized strategies — dense product table, log/antilog with the
sentinel trick, and the bit-sliced plane substrate.  This bench justifies
the element-wise default ("table" for the uint8 fields MIDAS uses) with
measurements and checks all strategies agree bit-for-bit.  Note the
bitsliced rows here pay the full slice/unslice round-trip per call —
that is its *worst case*; the engine amortizes the transposes across a
whole phase (see bench_ablation_bitslice.py for the plane-resident
numbers that motivate the calibration routing).
"""

import numpy as np
import pytest

from _bench_utils import print_series
from repro.ff.gf2m import GF2m
from repro.util.rng import RngStream
from repro.util.timing import time_call

SIZE = (4096, 64)


def _operands(field, seed=0):
    rng = RngStream(seed)
    a = field.random(rng, size=SIZE)
    b = field.random(rng, size=SIZE)
    return a, b


def test_strategies_agree_bitwise():
    for m in (4, 7, 8):
        ft = GF2m(m, mul_strategy="table")
        fl = GF2m(m, mul_strategy="logexp")
        fb = GF2m(m, kernel_strategy="bitsliced")
        a, b = _operands(ft, seed=m)
        ref = ft.mul(a, b)
        assert np.array_equal(ref, fl.mul(a, b))
        assert np.array_equal(ref, fb.mul(a, b))


def test_strategy_throughput_report():
    rows = []
    speeds = {}
    for m, strategies in [(8, ("table", "logexp", "bitsliced")),
                          (12, ("logexp", "bitsliced"))]:
        for strat in strategies:
            f = GF2m(m, kernel_strategy=strat)
            a, b = _operands(f, seed=1)
            fn = lambda f=f, a=a, b=b: f.mul(a, b)
            fn()
            t = time_call(fn, min_time=0.03)
            ops = a.size / t / 1e6
            speeds[(m, strat)] = ops
            label = "bitsliced (round-trip)" if strat == "bitsliced" else strat
            rows.append([f"GF(2^{m})", label, f"{ops:.0f}"])
    # XOR addition as the speed-of-light reference
    f8 = GF2m(8)
    a, b = _operands(f8, seed=2)
    t = time_call(lambda: f8.add(a, b), min_time=0.03)
    rows.append(["GF(2^8)", "add (XOR)", f"{a.size / t / 1e6:.0f}"])
    print_series(
        "Ablation: GF multiply strategies (Mops/s, array "
        f"{SIZE[0]}x{SIZE[1]})",
        ["field", "strategy", "Mops/s"],
        rows,
    )
    # default choice justified: table >= logexp on the MIDAS field
    assert speeds[(8, "table")] >= 0.8 * speeds[(8, "logexp")]


@pytest.mark.benchmark(group="ablation-gf")
@pytest.mark.parametrize("strategy", ["table", "logexp"])
def test_gf_mul_benchmark(benchmark, strategy):
    f = GF2m(8, mul_strategy=strategy)
    a, b = _operands(f, seed=3)
    benchmark(lambda: f.mul(a, b))


@pytest.mark.benchmark(group="ablation-gf")
def test_gf_add_benchmark(benchmark):
    f = GF2m(8)
    a, b = _operands(f, seed=4)
    benchmark(lambda: f.add(a, b))
