"""Ablation: the process backend vs sequential wall-clock.

The threaded backend is capped by the GIL-bound glue between numpy
kernels; the process backend runs the same independent phase windows in
worker *processes* — CSR and problem payload arrays published once via
shared memory, only the per-round fingerprint pickled per task, XOR
merge in the parent.  Output is bit-identical either way (asserted on
every configuration measured); the speedup gate only applies on hosts
with >= 4 cores, since pool + spec-rebuild overhead dominates below
that.
"""

import os
import time

from _bench_utils import print_series
from repro.core.midas import MidasRuntime, detect_path
from repro.graph.generators import erdos_renyi
from repro.util.rng import RngStream

K = 12
N2 = 64


def _run(graph, rt, seed):
    t0 = time.perf_counter()
    res = detect_path(graph, K, eps=0.5, rng=RngStream(seed, name="bench"),
                      runtime=rt, early_exit=False)
    return time.perf_counter() - t0, res


def test_process_vs_sequential_wall_clock():
    """One k=12 detection (2^12 iterations, 64 phases/round) per mode."""
    g = erdos_renyi(3000, m=12000, rng=RngStream(1, name="g"))
    ncpu = os.cpu_count() or 1
    rows = []
    wall_seq, res_seq = _run(g, MidasRuntime(n2=N2), seed=7)
    rows.append(["sequential", 1, f"{wall_seq:.3f}", "1.00x"])
    speedups = {}
    for workers in sorted({1, 2, ncpu}):
        rt = MidasRuntime(mode="process", workers=workers, n2=N2)
        wall, res = _run(g, rt, seed=7)
        # bit-identical output is part of the contract being measured
        assert [r.value for r in res.rounds] == [r.value for r in res_seq.rounds]
        speedups[workers] = wall_seq / wall
        rows.append([f"process w={workers}", workers, f"{wall:.3f}",
                     f"{speedups[workers]:.2f}x"])
    print_series(
        f"Ablation: process backend wall-clock (k={K}, N2={N2}, "
        f"host has {ncpu} CPU(s))",
        ["mode", "workers", "wall [s]", "speedup"],
        rows,
    )
    # on any host: processes never change the answer, and the shared-memory
    # publication keeps overhead bounded (no per-phase graph pickling)
    assert all(s > 0.2 for s in speedups.values())
    if ncpu >= 4:
        # on real multi-core hosts the parallel phases must actually win —
        # and past the GIL, unlike threaded, glue code scales too
        assert speedups[ncpu] > 1.2


def test_process_bitsliced_stack_identical():
    """The two tentpole features compose: process workers rebuild the
    field with the caller's kernel strategy, so mode="process" +
    kernel="bitsliced" still reproduces sequential bit-for-bit."""
    g = erdos_renyi(600, m=2400, rng=RngStream(2, name="g"))
    ref = detect_path(g, 8, eps=0.4, rng=RngStream(3), early_exit=False,
                      runtime=MidasRuntime(n2=64))
    out = detect_path(g, 8, eps=0.4, rng=RngStream(3), early_exit=False,
                      runtime=MidasRuntime(mode="process", workers=2, n2=64,
                                           kernel="bitsliced"))
    assert [r.value for r in out.rounds] == [r.value for r in ref.rounds]
