"""Validation: the analytic model vs the message-level simulator.

The scaling figures come from the Theorem-2 analytic model; the simulator
executes the same decomposition message by message.  This bench runs both
on identical small configurations and checks the *communication* virtual
times agree within a small factor — the evidence that modeled curves are
trustworthy extrapolations of the simulated mechanics.

(Compute time is excluded from the comparison: the simulator charges
measured wall time only when asked, while the model charges calibrated
kernel time; their ratio is machine-dependent.  Communication is fully
modeled on both sides, from the same alpha-beta parameters.)
"""

import numpy as np
import pytest

from _bench_utils import print_series
from repro.core.evaluator_path import make_path_phase_program
from repro.core.halo import build_halo_views
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.ff.fingerprint import Fingerprint
from repro.graph.generators import erdos_renyi
from repro.graph.partition import random_partition
from repro.runtime.cluster import juliet
from repro.runtime.costmodel import KernelCalibration
from repro.runtime.scheduler import Simulator
from repro.util.rng import RngStream

K = 8
N2 = 8


def simulated_phase_comm_seconds(g, n1, fp):
    part = random_partition(g, n1, rng=RngStream(3))
    views = build_halo_views(g, part)
    cm = juliet().cost_model(n1)
    sim = Simulator(n1, cost_model=cm, measure_compute=False, trace=True)
    res = sim.run(make_path_phase_program(views, fp, 0, N2))
    return res.makespan, part


def modeled_phase_comm_seconds(part, calibration):
    sched = PhaseSchedule(K, part.n_parts, part.n_parts, N2)
    est = estimate_runtime(
        PartitionStats.from_partition(part), sched, calibration,
        juliet().cost_model(part.n_parts),
    )
    # one phase's communication share
    return est.phase_seconds - (est.compute_seconds / (est.rounds * sched.n_batches))


@pytest.mark.parametrize("n1", [2, 4, 8])
def test_phase_comm_agreement(n1, calibration):
    g = erdos_renyi(2000, m=14000, rng=RngStream(1))
    fp = Fingerprint.draw(g.n, K, RngStream(2))
    sim_t, part = simulated_phase_comm_seconds(g, n1, fp)
    model_t = modeled_phase_comm_seconds(part, calibration)
    ratio = sim_t / model_t if model_t > 0 else float("inf")
    print(f"\nn1={n1}: simulated comm {sim_t * 1e6:.1f}us, "
          f"modeled comm {model_t * 1e6:.1f}us, ratio {ratio:.2f}")
    # same alpha-beta parameters, different accounting details (per-peer
    # messages and wait times vs closed form): agree within a small factor
    assert 0.2 < ratio < 6.0


def test_comm_grows_with_partitioning(calibration):
    """Both accountings must agree on the *trend* that drives the optimal
    N1: more parts, more boundary, more communication."""
    g = erdos_renyi(2000, m=14000, rng=RngStream(4))
    fp = Fingerprint.draw(g.n, K, RngStream(5))
    rows = []
    sim_prev = model_prev = None
    ok_sim = ok_model = True
    for n1 in (2, 4, 8, 16):
        sim_t, part = simulated_phase_comm_seconds(g, n1, fp)
        model_t = modeled_phase_comm_seconds(part, calibration)
        rows.append([n1, f"{sim_t * 1e6:.1f}", f"{model_t * 1e6:.1f}"])
        if sim_prev is not None:
            ok_sim &= sim_t > sim_prev * 0.8
            ok_model &= model_t > model_prev * 0.8
        sim_prev, model_prev = sim_t, model_t
    print_series(
        "Validation: per-phase communication vs N1 (simulated vs modeled)",
        ["N1", "simulated [us]", "modeled [us]"],
        rows,
    )
    assert ok_sim and ok_model
