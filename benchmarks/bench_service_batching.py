"""Service batching vs one-shot engine runs.

The detection service's economics: a standing service amortizes work
that N independent one-shot runs each pay in full.  Three effects stack
up — the result cache and coalescer collapse duplicate queries (the
multi-tenant dashboard workload: several tenants asking the same
question), the worker pool overlaps the distinct ones, and the shared
:class:`~repro.core.engine.EngineSession` reuses per-graph preparation.

The workload here is two tenants issuing the same query set, submitted
concurrently through :class:`~repro.service.client.LocalClient`; the
baseline runs the identical N queries as N sequential one-shot engine
executions (what ``repro detect-path`` N times would do).  Asserted at
the bottom: every service reply is bit-identical to its one-shot
reference, and the batch completes >1.2x faster for N >= 4.
"""

import threading
import time

from _bench_utils import print_series
from repro.core.engine import MidasRuntime
from repro.core.midas import detect_path
from repro.graph.generators import erdos_renyi
from repro.obs.metrics import MetricsRegistry
from repro.service import DetectionService, QuerySpec, canonical_result
from repro.service.broker import _detection_result
from repro.util.rng import RngStream

K = 6
EPS = 0.3
SPEEDUP_FLOOR = 1.2


def _workload(n):
    """N queries from 2 tenants — each tenant asks the same n/2 distinct
    questions, so every spec appears exactly twice across tenants."""
    assert n % 2 == 0
    jobs = []
    for i in range(n):
        spec = QuerySpec(kind="detect-path", graph="bench", k=K, eps=EPS,
                         seed={"seed": 9000 + i % (n // 2)},
                         early_exit=False)
        jobs.append((spec, f"tenant-{i % 2}"))
    return jobs


def _one_shot(graph, spec):
    """The standalone arm: a fresh engine run, nothing amortized."""
    res = detect_path(graph, spec.k, eps=spec.eps, rng=spec.seed_stream(),
                      runtime=MidasRuntime(metrics=MetricsRegistry()),
                      early_exit=spec.early_exit)
    return _detection_result(res)


def test_service_batching_beats_one_shot_runs():
    g = erdos_renyi(1500, m=6000, rng=RngStream(1, name="bench-g"))

    rows = []
    for n in (2, 4, 8):
        jobs = _workload(n)

        t0 = time.perf_counter()
        refs = [_one_shot(g, spec) for spec, _ in jobs]
        wall_oneshot = time.perf_counter() - t0

        with DetectionService(quota=n, workers=4,
                              metrics=MetricsRegistry()) as svc:
            svc.register_graph(g, name="bench")
            outcomes = [None] * n
            errors = []

            def run(i, spec, tenant):
                try:
                    outcomes[i] = svc.query(spec, tenant=tenant)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=run, args=(i, spec, tenant))
                       for i, (spec, tenant) in enumerate(jobs)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall_service = time.perf_counter() - t0
            assert not errors
            amortized = (svc.broker.stats["cache_hits"]
                         + svc.broker.stats["coalesced"])
            executed = svc.broker.stats["queries"]

        # every reply bit-identical to its one-shot reference
        for out, ref in zip(outcomes, refs):
            assert canonical_result(out.payload) == ref

        speedup = wall_oneshot / wall_service
        rows.append([n, executed, amortized, f"{wall_oneshot:.3f}",
                     f"{wall_service:.3f}", f"{speedup:.2f}x"])
        if n >= 4:
            assert speedup > SPEEDUP_FLOOR, (
                f"N={n}: service batch {wall_service:.3f}s vs one-shot "
                f"{wall_oneshot:.3f}s = {speedup:.2f}x (< {SPEEDUP_FLOOR}x)"
            )

    print_series(
        f"Service batching vs one-shot runs (k-path k={K}, er1500, "
        f"2 tenants, duplicate query set)",
        ["N queries", "executed", "amortized", "one-shot [s]",
         "service [s]", "speedup"],
        rows,
    )
