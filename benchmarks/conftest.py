"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Each prints the series the paper
plots — run with ``pytest benchmarks/ --benchmark-only -s`` to see them —
and asserts the *qualitative shape* (who wins, where optima/crossovers
sit).  Modeled timings use the calibrated performance model; kernel-level
benchmarks (``benchmark`` fixture) measure the real vectorized kernels.

Reporting helpers live in ``_bench_utils`` (not here) so imports stay
unambiguous when tests and benchmarks are collected together.
"""

from __future__ import annotations

import pytest

from repro.graph.datasets import load_dataset
from repro.runtime.costmodel import KernelCalibration
from repro.util.rng import RngStream

from _bench_utils import BENCH_SCALE  # re-exported for fixtures below


@pytest.fixture(scope="session")
def calibration():
    """One live kernel calibration shared by every modeled benchmark."""
    return KernelCalibration.measure(sample_nodes=2048, avg_degree=14, k=10, min_time=0.02)


@pytest.fixture(scope="session")
def bench_datasets():
    """Small materialized stand-ins of the Table II datasets."""
    rng = RngStream(424242, name="bench-data")
    return {
        name: load_dataset(name, scale=BENCH_SCALE, rng=rng.child(name))
        for name in ("miami", "com-Orkut", "random-1e6")
    }
