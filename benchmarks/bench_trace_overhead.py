"""Overhead of end-to-end query tracing on the service hot path.

Tracing decorates every served query with a handful of spans (client,
broker admission stages, engine rounds, worker windows) plus one SLO
histogram observation per stage — constant work per query, nothing in
the per-phase kernel loop.  This bench runs the service batching
workload (two tenants, distinct pinned seeds so every query executes)
twice: ``DetectionService(tracing=True)`` (the default) and
``tracing=False``, through :class:`~repro.service.client.LocalClient`
so the client-span export path is included.  The contract asserted at
the bottom: tracing costs < 5% wall on the batch, and every traced
reply is bit-identical to its untraced twin.
"""

import time

from _bench_utils import print_series
from repro.graph.generators import erdos_renyi
from repro.obs.metrics import MetricsRegistry
from repro.service import DetectionService, LocalClient, QuerySpec, canonical_result
from repro.util.rng import RngStream

K = 6
EPS = 0.3
N_QUERIES = 8
REPEATS = 3
OVERHEAD_CEILING = 1.05


def _jobs():
    """Two tenants, all-distinct pinned seeds: no cache hits, no
    coalescing — every query pays the full execution, so the measured
    delta is the tracing machinery itself."""
    return [
        (QuerySpec(kind="detect-path", graph="bench", k=K, eps=EPS,
                   seed={"seed": 7000 + i}, early_exit=False),
         f"tenant-{i % 2}")
        for i in range(N_QUERIES)
    ]


def _batch(graph, tracing: bool):
    with DetectionService(tracing=tracing, workers=4,
                          metrics=MetricsRegistry()) as svc:
        svc.register_graph(graph, name="bench")
        client = LocalClient(svc)
        t0 = time.perf_counter()
        outs = [client.query(spec, tenant=tenant)
                for spec, tenant in _jobs()]
        wall = time.perf_counter() - t0
        traced = sum(1 for o in outs if o.trace_id)
    return wall, [canonical_result(o.payload) for o in outs], traced


def _best_of(graph, tracing: bool):
    walls, results, traced = [], None, 0
    for _ in range(REPEATS):
        wall, results, traced = _batch(graph, tracing)
        walls.append(wall)
    return min(walls), results, traced


def test_tracing_overhead_under_five_percent():
    g = erdos_renyi(1500, m=6000, rng=RngStream(1, name="bench-g"))

    wall_off, res_off, traced_off = _best_of(g, tracing=False)
    wall_on, res_on, traced_on = _best_of(g, tracing=True)

    # tracing must never perturb the detection itself
    assert res_on == res_off
    assert traced_off == 0
    assert traced_on == N_QUERIES

    overhead = wall_on / wall_off
    rows = [
        ["tracing off", f"{wall_off:.3f}", "1.000x", 0],
        ["tracing on", f"{wall_on:.3f}", f"{overhead:.3f}x", traced_on],
    ]
    print_series(
        f"Query tracing overhead on the service batch (k-path k={K}, "
        f"er1500, {N_QUERIES} distinct queries, 2 tenants, "
        f"best of {REPEATS})",
        ["tracing", "wall [s]", "vs off", "traces"],
        rows,
    )
    assert overhead < OVERHEAD_CEILING, (
        f"tracing overhead {overhead:.3f}x exceeds {OVERHEAD_CEILING}x "
        f"({wall_on:.3f}s vs {wall_off:.3f}s)"
    )
