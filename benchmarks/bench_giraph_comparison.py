"""Prior-work comparison: MIDAS scan statistics vs the Giraph version [19].

Section I of the paper makes two claims about the earlier GraphX/Giraph
implementation of algebraic-fingerprint scan statistics:

1. "none of these scaled beyond networks with 40 million edges";
2. MIDAS "improves on the Giraph based implementation by over an order of
   magnitude, and it scales to significantly larger networks".

Both are regenerated here from the mechanistic Giraph model (per-vertex
state for the whole 2^k iteration space in boxed JVM objects, per-
superstep sync overhead, serialized messages) against the calibrated
MIDAS model.
"""

import pytest

from _bench_utils import fmt, print_series
from repro.baselines.giraph_model import GiraphModel
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.runtime.cluster import juliet

K = 10  # the anomaly-detection sizes [19] targets; its heap wall bites here
Z_AXIS = K + 1


def midas_seconds(n, m, N, n1, calibration):
    # N2 at the measured cache sweet spot, capped by BSMax (same tuned
    # configuration policy as the Fig 11 bench)
    tab = calibration.as_table()
    n2 = min(PhaseSchedule.bs_max(K, N, n1), min(tab, key=tab.get))
    while (1 << K) % n2:
        n2 -= 1
    sched = PhaseSchedule(K, N, n1, n2)
    return estimate_runtime(
        PartitionStats.random_model(n, m, n1), sched, calibration,
        juliet().cost_model(N), problem="scanstat", z_axis=Z_AXIS,
    ).total_seconds


def test_order_of_magnitude_and_scale_wall(calibration):
    # express the JVM DP penalty relative to THIS machine's measured kernel
    # floor (x20, see GiraphModel docs) so the comparison is load-invariant
    floor = min(calibration.as_table().values())
    gm = GiraphModel(c1_jvm=20.0 * floor)
    N, n1 = 256, 32
    # graph sizes sweeping through and past the Giraph wall
    sizes = [
        (500_000, 7_000_000),
        (1_000_000, 13_800_000),
        (2_000_000, 29_000_000),
        (4_000_000, 60_000_000),
        (10_000_000, 161_800_000),
    ]
    rows = []
    ratios = []
    for n, m in sizes:
        g = gm.run_seconds(n, m, K, z_axis=Z_AXIS)
        mt = midas_seconds(n, m, N, n1, calibration)
        rows.append([
            f"{n/1e6:g}M", f"{m/1e6:g}M", fmt(mt),
            fmt(g) if g != float("inf") else "FAIL (heap)",
            f"{g/mt:.0f}x" if g != float("inf") else "-",
        ])
        if g != float("inf"):
            ratios.append(g / mt)
    print_series(
        f"Section I claim: scan statistics, MIDAS vs Giraph [19] (k={K})",
        ["nodes", "edges", "MIDAS [s]", "Giraph [s]", "Giraph/MIDAS"],
        rows,
    )
    # (1) Giraph dies in the tens-of-millions-of-edges band; MIDAS doesn't
    assert gm.run_seconds(10_000_000, 161_800_000, K, z_axis=Z_AXIS) == float("inf")
    assert midas_seconds(10_000_000, 161_800_000, N, n1, calibration) < float("inf")
    # (2) over an order of magnitude wherever Giraph runs at all
    assert ratios and min(ratios) > 10


def test_wall_location_in_paper_band():
    """The Giraph edge cap must sit in the tens of millions at scan-stat k."""
    gm = GiraphModel()
    cap = gm.max_edges(K)
    print(f"\nGiraph modeled edge cap at k={K}: {cap / 1e6:.0f}M edges")
    assert 1e7 < cap < 3e8


@pytest.mark.benchmark(group="giraph-comparison")
def test_midas_scan_kernel_reference(benchmark, bench_datasets):
    """The real MIDAS scan kernel the model's constants descend from."""
    from repro.core.evaluator_scanstat import scanstat_phase_value
    from repro.ff.fingerprint import Fingerprint
    from repro.util.rng import RngStream

    g = bench_datasets["random-1e6"]
    w = RngStream(1).integers(0, 2, size=g.n)
    fp = Fingerprint.draw(g.n, 4, RngStream(2), levels=5)
    benchmark(lambda: scanstat_phase_value(g, w, fp, 4, 0, 8))
