"""Figures 6-8: k-path runtime vs N1 with N2 = BSMax = 2^k N1 / N.

Same sweep as Figures 3-5 but with maximal iteration batching: each phase
packs all its iterations into one compute+communicate step.  The paper
reports a further ~1x-2x gain over BS1 from (a) cache/batching effects in
the inner loop and (b) fewer, larger messages.  Both mechanisms are live
here: c1(N2) is *measured* from the real kernel, and the message model
amortizes per-message latency over N2-wide payloads.
"""

import pytest

from _bench_utils import fmt, print_series
from bench_fig3_5_partition_bs1 import K, N1_SWEEP, N_VALUES, _modeled_curve
from repro.core.schedule import PhaseSchedule
from repro.graph.datasets import DATASETS

DATASET_FIGS = [
    ("random-1e6", "Fig 6"),
    ("com-Orkut", "Fig 7"),
    ("miami", "Fig 8"),
]


def bsmax(n1, N):
    return PhaseSchedule.bs_max(K, N, n1)


@pytest.mark.parametrize("name,fig", DATASET_FIGS, ids=[d[0] for d in DATASET_FIGS])
def test_fig_series_bsmax(name, fig, calibration):
    spec = DATASETS[name]
    n, m = spec.paper_nodes, spec.paper_edges
    bs1 = {N: _modeled_curve(n, m, N, calibration) for N in N_VALUES}
    bsm = {N: _modeled_curve(n, m, N, calibration, n2_of=bsmax) for N in N_VALUES}

    header = ["N1"] + [f"N={N} BSMax" for N in N_VALUES] + [f"N={N} gain" for N in N_VALUES]
    rows = []
    for n1 in N1_SWEEP:
        row = [n1]
        for N in N_VALUES:
            row.append(fmt(bsm[N][n1]) if n1 in bsm[N] else "-")
        for N in N_VALUES:
            if n1 in bsm[N] and bsm[N][n1] > 0:
                row.append(f"{bs1[N][n1] / bsm[N][n1]:.2f}x")
            else:
                row.append("-")
        rows.append(row)
    print_series(
        f"{fig}: k-path runtime vs N1, {name} (paper scale), BSMax (N2=2^k N1/N)",
        header,
        rows,
    )

    # paper's reported gain band: batching helps, roughly 1x-2x (allow up
    # to ~4x — our dispatch amortization is steeper than their cache gain)
    for N in N_VALUES:
        best_bs1 = min(bs1[N].values())
        best_bsm = min(bsm[N].values())
        gain = best_bs1 / best_bsm
        assert 1.0 <= gain < 6.0, f"{name} N={N}: batching gain {gain:.2f} out of band"


def test_measured_c1_curve_report(calibration):
    rows = [[n2, f"{c * 1e9:.2f}"] for n2, c in sorted(calibration.as_table().items())]
    print_series(
        "Section IV-B: measured per-(vertex,iteration) DP cost vs N2 "
        "(the cache/batching effect driving Figs 6-8)",
        ["N2", "c1 [ns]"],
        rows,
    )
    tab = calibration.as_table()
    # batching must beat N2=1 somewhere — the Figs 6-8 gain mechanism ...
    assert min(tab.values()) < tab[min(tab)]
    # ... and the paper's diminishing-returns caveat ("we've kept N2 <
    # 1024"): the best N2 is an interior point, not the largest measured
    best_n2 = min(tab, key=tab.get)
    assert best_n2 > 1


@pytest.mark.benchmark(group="fig6-8-phase-kernel")
@pytest.mark.parametrize("n2", [1, 16, 64])
def test_phase_kernel_batched(benchmark, bench_datasets, n2):
    """Real kernel at several N2: per-iteration speedup is measurable."""
    from repro.core.evaluator_path import path_phase_value
    from repro.ff.fingerprint import Fingerprint
    from repro.util.rng import RngStream

    g = bench_datasets["random-1e6"]
    fp = Fingerprint.draw(g.n, K, RngStream(6))
    benchmark(lambda: path_phase_value(g, fp, 0, n2))
