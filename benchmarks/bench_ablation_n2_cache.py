"""Ablation: the N2 batching / cache-locality effect on the real kernel.

Section IV-B attributes part of the BSMax gain to "temporal cache
locality" in the inner loop.  Here the actual vectorized DP kernel is
timed across the N2 grid on two graph sizes, verifying the two regimes:

* amortization: per-iteration cost falls as N2 grows from 1;
* capacity: it rises again once the working set outgrows the caches —
  the reason the paper keeps N2 < 1024.
"""

import numpy as np
import pytest

from _bench_utils import print_series
from repro.core.evaluator_path import path_eval_phase
from repro.ff.fingerprint import Fingerprint
from repro.graph.generators import erdos_renyi
from repro.runtime.costmodel import KernelCalibration
from repro.util.rng import RngStream
from repro.util.timing import time_call

GRID = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.mark.parametrize("n_nodes", [1024, 8192], ids=["small", "large"])
def test_n2_sweep_real_kernel(n_nodes):
    g = erdos_renyi(n_nodes, m=n_nodes * 7, rng=RngStream(1))
    fp = Fingerprint.draw(g.n, 8, RngStream(2))
    rows = []
    per_iter = {}
    for n2 in GRID:
        fn = lambda n2=n2: path_eval_phase(g, fp, 0, n2)
        fn()  # warm up
        # best of two timing passes: robust to transient machine load
        t = min(time_call(fn, min_time=0.03), time_call(fn, min_time=0.03))
        per_iter[n2] = t / n2
        rows.append([n2, f"{t * 1e3:.2f}", f"{t / n2 * 1e6:.1f}"])
    print_series(
        f"Ablation: real path-DP kernel vs N2 (n={n_nodes})",
        ["N2", "phase [ms]", "per-iteration [us]"],
        rows,
    )
    # amortization regime: batching beats N2=1 substantially
    assert min(per_iter.values()) < 0.85 * per_iter[1]
    # the best N2 is interior for the large graph (capacity effect)
    best = min(per_iter, key=per_iter.get)
    assert best > 1


def test_calibration_consistent_with_direct_measurement():
    """The KernelCalibration used by the model must track a direct kernel
    measurement within a small factor (same machine, same kernel)."""
    cal = KernelCalibration.measure(sample_nodes=2048, avg_degree=14, k=8,
                                    grid=(1, 32), min_time=0.03)
    g = erdos_renyi(2048, m=2048 * 7, rng=RngStream(3))
    fp = Fingerprint.draw(g.n, 8, RngStream(4))
    fn = lambda: path_eval_phase(g, fp, 0, 32)
    fn()
    direct = time_call(fn, min_time=0.03) / (8 * g.n * 32)  # per (lvl, vtx, iter)
    modeled = cal.c1(32)  # per (vertex, iteration) of ONE level step
    ratio = modeled / direct
    print(f"\ncalibration/direct ratio: {ratio:.2f}")
    assert 0.3 < ratio < 3.0


@pytest.mark.benchmark(group="ablation-n2")
@pytest.mark.parametrize("n2", [1, 32, 256])
def test_kernel_benchmark(benchmark, n2):
    g = erdos_renyi(4096, m=4096 * 7, rng=RngStream(5))
    fp = Fingerprint.draw(g.n, 8, RngStream(6))
    benchmark(lambda: path_eval_phase(g, fp, 0, n2))
