"""Ablation: the threaded backend vs sequential wall-clock.

The round → batch → phase decomposition makes a round's phase windows
independent (they XOR into one accumulator), so the threaded backend runs
them concurrently on a thread pool.  The GF(2^l) kernels are numpy table
lookups that release the GIL, so the speedup tracks the host's core
count; on a single-core host the two modes tie (modulo pool overhead).
Detection output is bit-identical either way — asserted here on every
configuration measured.
"""

import os
import time

import pytest

from _bench_utils import print_series
from repro.core.midas import MidasRuntime, detect_path
from repro.graph.generators import erdos_renyi
from repro.util.rng import RngStream

K = 12
N2 = 64


def _run(graph, rt, seed):
    t0 = time.perf_counter()
    res = detect_path(graph, K, eps=0.5, rng=RngStream(seed, name="bench"),
                      runtime=rt, early_exit=False)
    return time.perf_counter() - t0, res


def test_threaded_vs_sequential_wall_clock():
    """One k=12 detection (2^12 iterations, 64 phases/round) per mode."""
    g = erdos_renyi(3000, m=12000, rng=RngStream(1, name="g"))
    ncpu = os.cpu_count() or 1
    rows = []
    wall_seq, res_seq = _run(g, MidasRuntime(n2=N2), seed=7)
    rows.append(["sequential", 1, f"{wall_seq:.3f}", "1.00x"])
    speedups = {}
    for workers in sorted({1, 2, ncpu}):
        rt = MidasRuntime(mode="threaded", workers=workers, n2=N2)
        wall, res = _run(g, rt, seed=7)
        # bit-identical output is part of the contract being measured
        assert [r.value for r in res.rounds] == [r.value for r in res_seq.rounds]
        speedups[workers] = wall_seq / wall
        rows.append([f"threaded w={workers}", workers, f"{wall:.3f}",
                     f"{speedups[workers]:.2f}x"])
    print_series(
        f"Ablation: threaded backend wall-clock (k={K}, N2={N2}, "
        f"host has {ncpu} CPU(s))",
        ["mode", "workers", "wall [s]", "speedup"],
        rows,
    )
    # the contract that must hold on any host: threading never changes the
    # answer, and its overhead is bounded (no pathological serialization)
    assert all(s > 0.25 for s in speedups.values())
    if ncpu >= 4:
        # on real multi-core hosts the parallel phases must actually win
        assert speedups[ncpu] > 1.2


@pytest.mark.benchmark(group="ablation-threaded")
@pytest.mark.parametrize("mode", ["sequential", "threaded"])
def test_round_wall_time(benchmark, mode):
    """pytest-benchmark series for trend tracking (one full detection)."""
    g = erdos_renyi(1500, m=6000, rng=RngStream(2, name="g"))
    rt = (MidasRuntime(n2=N2) if mode == "sequential"
          else MidasRuntime(mode="threaded", n2=N2))
    benchmark(lambda: detect_path(g, K, eps=0.5, rng=RngStream(3),
                                  runtime=rt, early_exit=False).found)
