"""Shared reporting helpers for the benchmark suite (import-name-safe).

Lives outside ``conftest.py`` so bench modules can import it unambiguously
even when ``tests/`` and ``benchmarks/`` are collected in the same pytest
invocation (both directories have a ``conftest.py``; only fixtures belong
there).
"""

from __future__ import annotations

#: scale factor for dataset stand-ins actually materialized in benches
BENCH_SCALE = 0.002


def print_series(title: str, header: list, rows: list) -> None:
    """Render one figure/table as aligned text (the bench 'plot')."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) + 2
              for i, h in enumerate(header)]
    print("".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("".join(str(c).rjust(w) for c, w in zip(r, widths)))
    emit_bench_json(title, header, rows)


def _slug(s: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in str(s)).strip("_").lower()


def emit_bench_json(name: str, header: list, rows: list):
    """Persist one bench series as ``BENCH_<name>.json`` for trend tracking.

    No-op unless the ``BENCH_JSON_DIR`` environment variable names a
    directory.  The file is a :class:`repro.obs.metrics.MetricsSnapshot`
    envelope (readable with ``repro.serialization.load_result`` or the
    ``repro report`` CLI): one gauge family per series, one sample per
    (row, numeric column) pair, labeled by the first column's value.
    The envelope is stamped with the producing commit's ``git_sha`` and
    the series' ``config_hash`` (from the header shape and BENCH_SCALE)
    so files from different commits stay joinable with the RunStore;
    readers ignore the extra keys.  The same numeric cells are also
    appended as a :class:`repro.obs.store.RunRecord` to
    ``$BENCH_JSON_DIR/bench_runs.jsonl`` (scenario ``bench:<slug>``) for
    ``repro history`` / ``repro compare``.  Returns the written path, or
    None when disabled.
    """
    import json
    import os

    out_dir = os.environ.get("BENCH_JSON_DIR")
    if not out_dir:
        return None
    from pathlib import Path

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.store import (
        RunRecord, RunStore, config_fingerprint, current_git_sha,
    )
    from repro.serialization import result_to_dict

    config = {"bench": _slug(name), "columns": [_slug(h) for h in header],
              "scale": BENCH_SCALE}
    git_sha = current_git_sha()
    config_hash = config_fingerprint(config)

    reg = MetricsRegistry()
    fam = reg.gauge(f"bench_{_slug(name)}", f"benchmark series {name!r}")
    key = _slug(header[0]) if header else "row"
    values = {}
    for r in rows:
        for h, v in zip(header[1:], r[1:]):
            try:
                val = float(str(v))
            except (TypeError, ValueError):
                continue
            if val != val or val in (float("inf"), float("-inf")):
                continue
            fam.labels(**{key: r[0], "column": _slug(h)}).set(val)
            values[f"{_slug(r[0])}:{_slug(h)}"] = val
    doc = result_to_dict(reg.snapshot())
    doc["git_sha"] = git_sha
    doc["config_hash"] = config_hash
    path = Path(out_dir) / f"BENCH_{_slug(name)}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2))
    RunStore(Path(out_dir) / "bench_runs.jsonl").append(RunRecord(
        scenario=f"bench:{_slug(name)}", git_sha=git_sha,
        config_hash=config_hash, values=values,
        meta={"source": "benchmarks", "scale": str(BENCH_SCALE)},
    ))
    return path


def fmt(x: float, digits: int = 4) -> str:
    if x == float("inf"):
        return "FAIL"
    if x >= 100:
        return f"{x:.1f}"
    return f"{x:.{digits}g}"
