"""Shared reporting helpers for the benchmark suite (import-name-safe).

Lives outside ``conftest.py`` so bench modules can import it unambiguously
even when ``tests/`` and ``benchmarks/`` are collected in the same pytest
invocation (both directories have a ``conftest.py``; only fixtures belong
there).
"""

from __future__ import annotations

#: scale factor for dataset stand-ins actually materialized in benches
BENCH_SCALE = 0.002


def print_series(title: str, header: list, rows: list) -> None:
    """Render one figure/table as aligned text (the bench 'plot')."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) + 2
              for i, h in enumerate(header)]
    print("".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("".join(str(c).rjust(w) for c, w in zip(r, widths)))


def fmt(x: float, digits: int = 4) -> str:
    if x == float("inf"):
        return "FAIL"
    if x >= 100:
        return f"{x:.1f}"
    return f"{x:.{digits}g}"
