"""Overhead of the wall-clock profiler on the detection hot path.

The profiler wraps every round and every kernel phase window in a timed
span (``WallProfiler.span``), so its cost lands once per phase — the
tightest loop it touches.  This bench measures a full detection three
ways: profiler absent (the pre-telemetry baseline shape), profiler
enabled (the default for every ``MidasRuntime``), and profiler enabled
with span retention off (aggregates only, what a long soak run would
use).  The contract asserted at the bottom: enabling profiling costs a
bounded fraction of the run, because a span is two ``perf_counter``
calls plus one dict update against a kernel doing ``n2`` numpy table
lookups per window.
"""

import time

from _bench_utils import print_series
from repro.core.midas import MidasRuntime, detect_path
from repro.graph.generators import erdos_renyi
from repro.obs.profile import WallProfiler
from repro.util.rng import RngStream

K = 10
N2 = 64
REPEATS = 3


def _run(graph, rt, seed):
    t0 = time.perf_counter()
    res = detect_path(graph, K, eps=0.5, rng=RngStream(seed, name="bench"),
                      runtime=rt, early_exit=False)
    return time.perf_counter() - t0, res


def _best_of(graph, make_rt):
    walls, res = [], None
    for _ in range(REPEATS):
        wall, res = _run(graph, make_rt(), seed=7)
        walls.append(wall)
    return min(walls), res


def test_profiler_overhead_is_bounded():
    """Same detection with and without span recording; best-of-3 walls."""
    g = erdos_renyi(2000, m=8000, rng=RngStream(1, name="g"))

    def disabled():
        rt = MidasRuntime(n2=N2)
        rt.profiler = WallProfiler(enabled=False)
        return rt

    def full():
        return MidasRuntime(n2=N2)

    def aggregates_only():
        rt = MidasRuntime(n2=N2)
        rt.profiler = WallProfiler(keep_spans=False)
        return rt

    wall_off, res_off = _best_of(g, disabled)
    wall_on, res_on = _best_of(g, full)
    wall_agg, res_agg = _best_of(g, aggregates_only)

    # profiling must never perturb the detection itself
    assert [r.value for r in res_on.rounds] == [r.value for r in res_off.rounds]
    assert [r.value for r in res_agg.rounds] == [r.value for r in res_off.rounds]

    spans_per_run = len(res_on.rounds) * (1 + N2)  # round + kernel spans
    rows = [
        ["disabled", f"{wall_off:.3f}", "1.000x", 0],
        ["spans+aggregates", f"{wall_on:.3f}",
         f"{wall_on / wall_off:.3f}x", spans_per_run],
        ["aggregates only", f"{wall_agg:.3f}",
         f"{wall_agg / wall_off:.3f}x", spans_per_run],
    ]
    print_series(
        f"Profiler overhead on detect_path (k={K}, N2={N2}, "
        f"~{spans_per_run} spans/run, best of {REPEATS})",
        ["profiler", "wall [s]", "vs disabled", "spans"],
        rows,
    )
    # generous bound: wall clocks on shared CI hosts are noisy, but a 50%
    # blowup would mean the span machinery landed inside the n2 loop
    assert wall_on < wall_off * 1.5
    assert wall_agg < wall_off * 1.5
