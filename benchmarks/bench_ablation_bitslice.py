"""Ablation: plane-resident bit-sliced evaluation vs element-wise kernels.

The bit-sliced substrate transposes each node's N2 coefficients into m
uint64 bit-planes, turning a GF(2^m) multiply into an m^2 schedule of
64-way-parallel AND/XOR word ops — and, crucially, the path evaluator
keeps its DP state *in plane space* across all k levels, so the
slice/unslice transposes happen once per phase instead of once per
multiply.  This bench measures one full phase evaluation (gather +
XOR-reduce + level multiply, k levels) per kernel and asserts the
bit-sliced path both matches the table kernel bit-for-bit and beats it
by the >1.2x the calibration model assumes.  The win is per-word data
parallelism, not threading, so it is asserted unconditionally — core
count does not matter.
"""

import numpy as np

from _bench_utils import print_series
from repro.core.evaluator_path import path_eval_phase
from repro.ff.fingerprint import Fingerprint
from repro.ff.gf2m import GF2m
from repro.graph.generators import erdos_renyi
from repro.util.rng import RngStream
from repro.util.timing import time_call

K = 12
M = 7


def _phase_fn(graph, field, n2, seed=5):
    fp = Fingerprint.draw(graph.n, K, RngStream(seed, name="bench"),
                          field=field)
    return lambda: path_eval_phase(graph, fp, 0, n2)


def test_bitsliced_phase_vs_elementwise():
    g = erdos_renyi(3000, m=12000, rng=RngStream(1, name="g"))
    table = GF2m(M, kernel_strategy="table")
    bits = GF2m(M, kernel_strategy="bitsliced")
    rows = []
    speedups = {}
    for n2 in (64, 256):
        fn_t = _phase_fn(g, table, n2)
        fn_b = _phase_fn(g, bits, n2)
        # same (k, v, y) draw on both fields -> the outputs must be equal
        assert np.array_equal(fn_t(), fn_b())
        wall_t = time_call(fn_t, min_time=0.05)
        wall_b = time_call(fn_b, min_time=0.05)
        speedups[n2] = wall_t / wall_b
        rows.append([f"N2={n2}", f"{wall_t * 1e3:.1f}", f"{wall_b * 1e3:.1f}",
                     f"{speedups[n2]:.2f}x"])
    print_series(
        f"Ablation: plane-resident bitsliced phase eval (k={K}, GF(2^{M}), "
        "n=3000, m=12000)",
        ["window", "table [ms]", "bitsliced [ms]", "speedup"],
        rows,
    )
    # the calibration model routes plane-resident windows >= 64 lanes to
    # the bitsliced kernel; that routing is only sound if the kernel wins
    # by a clear margin on the windows the engine actually uses
    assert all(s > 1.2 for s in speedups.values()), speedups


def test_bitsliced_detection_end_to_end_identical():
    """Whole-driver check: kernel="bitsliced" changes wall-clock only."""
    from repro.core.midas import MidasRuntime, detect_path

    g = erdos_renyi(600, m=2400, rng=RngStream(2, name="g"))
    ref = detect_path(g, 8, eps=0.4, rng=RngStream(3), early_exit=False,
                      runtime=MidasRuntime(n2=64))
    out = detect_path(g, 8, eps=0.4, rng=RngStream(3), early_exit=False,
                      runtime=MidasRuntime(n2=64, kernel="bitsliced"))
    assert [r.value for r in out.rounds] == [r.value for r in ref.rounds]
