"""Figure 12: strong scaling of the scan-statistics problem, N1 = N.

Same regime as Fig 10 but for PAREVALUATEPOLYNOMIALSCANSTAT: the per-level
work and message volume carry the weight axis, yet the scaling shape
matches k-path, as the paper reports ("they show considerable strong
scalability similar to k-Path").
"""

import numpy as np
import pytest

from _bench_utils import print_series
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.graph.datasets import DATASETS
from repro.runtime.cluster import juliet

K = 8
Z_AXIS = K + 1  # binary weights: z in [0, k]
N_SWEEP = (32, 64, 128, 256, 512)


def modeled_time(n, m, N, calibration):
    sched = PhaseSchedule(K, N, N, PhaseSchedule.bs_max(K, N, N))
    est = estimate_runtime(
        PartitionStats.random_model(n, m, N), sched, calibration,
        juliet().cost_model(N), problem="scanstat", z_axis=Z_AXIS,
    )
    return est.total_seconds


def test_fig12_series(calibration):
    datasets = ("random-1e6", "com-Orkut", "miami")
    curves = {
        name: {
            N: modeled_time(DATASETS[name].paper_nodes, DATASETS[name].paper_edges,
                            N, calibration)
            for N in N_SWEEP
        }
        for name in datasets
    }
    header = ["N"] + [f"{d} [s]" for d in datasets] + [f"{d} spdup" for d in datasets]
    rows = []
    for N in N_SWEEP:
        row = [N]
        row += [f"{curves[d][N]:.2f}" for d in datasets]
        row += [f"{curves[d][min(N_SWEEP)] / curves[d][N]:.2f}x" for d in datasets]
        rows.append(row)
    print_series(
        f"Fig 12: scan-statistics strong scaling, N1=N, k={K}, binary weights",
        header,
        rows,
    )

    for d in datasets:
        series = [curves[d][N] for N in N_SWEEP]
        assert all(b < a for a, b in zip(series, series[1:])), f"{d}: not monotone"
        speedup = series[0] / series[-1]
        assert 2.0 < speedup <= 16.0, f"{d}: {speedup:.1f}x out of band"


def test_fig12_shape_matches_fig10(calibration):
    """'considerable strong scalability similar to k-Path': the scan-stat
    speedup curve must track the k-path curve within a modest factor."""
    spec = DATASETS["random-1e6"]
    n, m = spec.paper_nodes, spec.paper_edges

    def path_time(N):
        sched = PhaseSchedule(K, N, N, PhaseSchedule.bs_max(K, N, N))
        return estimate_runtime(
            PartitionStats.random_model(n, m, N), sched, calibration,
            juliet().cost_model(N), problem="path",
        ).total_seconds

    for N in (64, 256):
        s_scan = modeled_time(n, m, 32, calibration) / modeled_time(n, m, N, calibration)
        s_path = path_time(32) / path_time(N)
        assert 0.4 < s_scan / s_path < 2.5


@pytest.mark.benchmark(group="fig12-scan-kernel")
@pytest.mark.parametrize("n1", [1, 4])
def test_scan_phase_kernel(benchmark, bench_datasets, n1):
    """Real scan-stat phase on the miami stand-in (sequential vs SPMD)."""
    from repro.core.evaluator_scanstat import (
        make_scanstat_phase_program,
        scanstat_phase_value,
    )
    from repro.core.halo import build_halo_views
    from repro.ff.fingerprint import Fingerprint
    from repro.graph.partition import random_partition
    from repro.runtime.scheduler import Simulator
    from repro.util.rng import RngStream

    g = bench_datasets["miami"]
    w = RngStream(1).integers(0, 2, size=g.n)
    dim, z_max = 4, 4
    fp = Fingerprint.draw(g.n, dim, RngStream(2), levels=dim + 1)
    if n1 == 1:
        benchmark(lambda: scanstat_phase_value(g, w, fp, z_max, 0, 4))
    else:
        part = random_partition(g, n1, rng=RngStream(3))
        views = build_halo_views(g, part)

        def run():
            prog = make_scanstat_phase_program(views, w, fp, z_max, 0, 4)
            return Simulator(n1, trace=False).run(prog).results[0]

        benchmark(run)
