"""Figure 11: MIDAS vs FASCIA runtime for growing subgraph size k.

The paper's headline comparison on random-1e6: FASCIA's color coding pays
``2^k e^k``-ish time and ``2^k`` memory per vertex, so it slows
super-exponentially and dies past k = 12; MIDAS pays ``2^k`` time and
``O(k)`` memory, scaling to k = 18 with >= two orders of magnitude
advantage.

Three levels of evidence:

1. modeled curves at paper scale (calibrated constants) — the printed
   Fig 11 series with the k=13 FASCIA wall;
2. a *real* head-to-head at laptop scale: our actual color-coding
   implementation vs the actual MIDAS detection on the same graphs;
3. the memory mechanism: per-vertex state of 2^k words vs k words.
"""

import time

import pytest

from _bench_utils import fmt, print_series
from repro.baselines.colorcoding import color_coding_detect
from repro.baselines.fascia import FasciaModel
from repro.core.midas import detect_path
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.graph.datasets import DATASETS
from repro.graph.generators import plant_path
from repro.graph.templates import TreeTemplate
from repro.runtime.cluster import juliet
from repro.util.rng import RngStream

N, N1 = 512, 32
K_SWEEP = tuple(range(4, 19))


def test_fig11_modeled_series(calibration):
    spec = DATASETS["random-1e6"]
    n, m = spec.paper_nodes, spec.paper_edges
    fascia = FasciaModel()
    rows = []
    midas_t = {}
    fascia_t = {}
    # pick N2 at the measured cache sweet spot, capped by BSMax — the
    # paper's own practice ("we've kept N2 < 1024" for the same reason)
    tab = calibration.as_table()
    best_n2 = min(tab, key=tab.get)
    for k in K_SWEEP:
        n2 = min(PhaseSchedule.bs_max(k, N, N1), best_n2)
        while (1 << k) % n2:
            n2 -= 1
        sched = PhaseSchedule(k, N, N1, n2)
        midas_t[k] = estimate_runtime(
            PartitionStats.random_model(n, m, N1), sched, calibration,
            juliet().cost_model(N),
        ).total_seconds
        r = fascia.run(n=n, m=m, k=k, n_processors=N)
        fascia_t[k] = r.seconds if r.feasible else float("inf")
        rows.append(
            [
                k,
                fmt(midas_t[k]),
                fmt(fascia_t[k]) if r.feasible else "FAIL (memory)",
                fmt(fascia_t[k] / midas_t[k], 3) if r.feasible else "-",
            ]
        )
    print_series(
        f"Fig 11: runtime vs subgraph size k, random-1e6, N={N}",
        ["k", "MIDAS [s]", "FASCIA [s]", "FASCIA/MIDAS"],
        rows,
    )

    # --- the paper's claims, as assertions --------------------------------
    # (1) FASCIA cannot go beyond k=12; MIDAS runs through k=18
    assert fascia_t[12] < float("inf")
    assert fascia_t[13] == float("inf")
    assert all(midas_t[k] < float("inf") for k in K_SWEEP)
    # (2) two-orders-of-magnitude advantage where both run (by k ~ 10+)
    assert fascia_t[12] / midas_t[12] > 100
    # (3) MIDAS grows ~2x per k increment (Section VI-C)
    for k in range(10, 18):
        ratio = midas_t[k + 1] / midas_t[k]
        assert 1.5 < ratio < 3.0


def test_real_head_to_head_small_scale():
    """Actually run both algorithms on the same planted instances."""
    rng = RngStream(77)
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(600, m=1500, rng=rng.child("g"))
    rows = []
    for k in (4, 6, 8):
        g2, _ = plant_path(g, k, rng=rng.child(f"plant{k}"))
        t0 = time.perf_counter()
        found_midas = detect_path(g2, k, eps=0.1, rng=rng.child(f"m{k}")).found
        t_midas = time.perf_counter() - t0
        t0 = time.perf_counter()
        found_cc = color_coding_detect(g2, TreeTemplate.path(k), eps=0.1,
                                       rng=rng.child(f"c{k}"))
        t_cc = time.perf_counter() - t0
        rows.append([k, found_midas, f"{t_midas:.3f}", found_cc, f"{t_cc:.3f}",
                     f"{t_cc / t_midas:.1f}x"])
        assert found_midas and found_cc
    print_series(
        "Fig 11 (live, laptop scale): real MIDAS vs real color coding",
        ["k", "MIDAS found", "MIDAS [s]", "CC found", "CC [s]", "CC/MIDAS"],
        rows,
    )


def test_memory_mechanism():
    """The O(k) vs O(2^k) per-vertex footprint behind the k=13 wall."""
    spec = DATASETS["random-1e6"]
    fascia = FasciaModel()
    rows = []
    for k in (8, 10, 12, 13, 14, 18):
        fascia_gib = fascia.memory_bytes_per_node(
            spec.paper_nodes, spec.paper_edges, k, N
        ) / 2**30
        # MIDAS per-vertex state: k levels x N2 iterations x 1 byte
        n2 = PhaseSchedule.bs_max(k, N, N1)
        midas_gib = (spec.paper_nodes / N1) * k * n2 * 1 / 2**30
        rows.append([k, f"{midas_gib:.3f}", f"{fascia_gib:.1f}",
                     "yes" if fascia_gib <= 0.85 * 128 else "NO"])
    print_series(
        "Fig 11 mechanism: per-node memory, MIDAS vs FASCIA (128 GiB nodes)",
        ["k", "MIDAS [GiB]", "FASCIA [GiB]", "FASCIA fits?"],
        rows,
    )


@pytest.mark.benchmark(group="fig11-kernels")
def test_midas_round_kernel(benchmark, bench_datasets):
    g = bench_datasets["random-1e6"]
    benchmark(
        lambda: detect_path(g, 8, eps=0.5, rng=RngStream(5), early_exit=False)
    )


@pytest.mark.benchmark(group="fig11-kernels")
def test_colorcoding_iteration_kernel(benchmark, bench_datasets):
    from repro.baselines.colorcoding import colorful_count_one_coloring

    g = bench_datasets["random-1e6"]
    colors = RngStream(6).integers(0, 8, size=g.n)
    tmpl = TreeTemplate.path(8)
    benchmark(lambda: colorful_count_one_coloring(g, tmpl, colors))
