"""Table II: the evaluation datasets.

Prints the paper's published sizes next to the generated stand-ins' actual
sizes at bench scale, and benchmarks generator throughput.
"""

import numpy as np
import pytest

from _bench_utils import BENCH_SCALE, print_series
from repro.graph.datasets import DATASETS, table2_rows
from repro.graph.generators import erdos_renyi
from repro.util.rng import RngStream


def test_table2_report():
    rows = []
    for r in table2_rows(scale=BENCH_SCALE, rng=RngStream(1)):
        rows.append(
            [
                r["dataset"],
                f"{r['paper_nodes_x1e6']:g}M",
                f"{r['paper_edges_x1e6']:g}M",
                r["generated_nodes"],
                r["generated_edges"],
                f"{r['generated_avg_degree']:.1f}",
            ]
        )
    print_series(
        f"Table II: datasets (stand-ins generated at scale={BENCH_SCALE})",
        ["dataset", "paper n", "paper m", "gen n", "gen m", "gen avg-deg"],
        rows,
    )
    # shape assertions: the stand-ins preserve the paper's density ordering
    dens = {
        r["dataset"]: r["generated_avg_degree"]
        for r in table2_rows(scale=BENCH_SCALE, rng=RngStream(1))
    }
    assert dens["com-Orkut"] > dens["miami"] > dens["random-1e6"]


def test_random_dataset_matches_n_log_n():
    """random-1e6/1e7 are exactly reproducible: m = n ln n."""
    for name in ("random-1e6", "random-1e7"):
        spec = DATASETS[name]
        n = spec.paper_nodes
        expected_m = n * np.log(n)
        assert abs(spec.paper_edges - expected_m) / expected_m < 0.02


def test_standin_structural_signatures():
    """The stand-ins carry the right structure, not just the right sizes:
    Orkut-like is heavy-tailed, miami-like is clustered, random is neither."""
    from repro.graph.datasets import load_dataset
    from repro.graph.metrics import clustering_coefficient, degree_stats

    rng = RngStream(9)
    orkut = load_dataset("com-Orkut", scale=0.0005, rng=rng.child("o"))
    miami = load_dataset("miami", scale=0.001, rng=rng.child("m"))
    rand = load_dataset("random-1e6", scale=0.002, rng=rng.child("r"))
    rows = []
    for name, g in [("com-Orkut", orkut), ("miami", miami), ("random-1e6", rand)]:
        ds = degree_stats(g)
        cc = clustering_coefficient(g, samples=200, rng=rng.child(f"cc-{name}"))
        rows.append([name, f"{ds.mean:.1f}", ds.maximum, str(ds.heavy_tailed),
                     f"{cc:.3f}"])
    print_series(
        "Table II stand-ins: structural signatures",
        ["dataset", "avg deg", "max deg", "heavy tail?", "clustering"],
        rows,
    )
    assert degree_stats(orkut).heavy_tailed
    assert not degree_stats(rand).heavy_tailed
    cc_m = clustering_coefficient(miami, samples=200, rng=RngStream(10))
    cc_r = clustering_coefficient(rand, samples=200, rng=RngStream(11))
    assert cc_m > 3 * cc_r


@pytest.mark.benchmark(group="table2-generators")
def test_er_generator_throughput(benchmark):
    """Generator speed: a 2k-node, n ln n-edge ER graph."""
    result = benchmark(lambda: erdos_renyi(2000, rng=RngStream(3)))
    assert result.num_edges > 0
