"""Figures 9 and 10: MIDAS strong scaling for k-path.

Fig 9: fix N1 and grow N — more concurrent phases split the 2^k
iterations; speedup = t(N_min)/t(N) per N1 series, plus the "N1 = Best"
series tracking the per-N optimum.  Scaling is good but sublinear once
per-phase communication dominates, as the paper reports.

Fig 10: the classic regime N1 = N (single phase, pure vertex
parallelism), for several datasets.
"""

import pytest

from _bench_utils import fmt, print_series
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.graph.datasets import DATASETS
from repro.runtime.cluster import juliet

K = 10
N_SWEEP = (32, 64, 128, 256, 512)


def modeled_time(n, m, k, N, n1, calibration, n2=None):
    if n2 is None:
        n2 = PhaseSchedule.bs_max(k, N, n1)
    sched = PhaseSchedule(k, N, n1, n2)
    est = estimate_runtime(
        PartitionStats.random_model(n, m, n1), sched, calibration, juliet().cost_model(N)
    )
    return est.total_seconds


def test_fig9_fixed_n1_speedup(calibration):
    spec = DATASETS["random-1e6"]
    n, m = spec.paper_nodes, spec.paper_edges
    n1_series = (32, 64, 128)
    times = {n1: {} for n1 in n1_series}
    best = {}
    for N in N_SWEEP:
        for n1 in n1_series:
            if n1 <= N and N % n1 == 0:
                times[n1][N] = modeled_time(n, m, K, N, n1, calibration)
        candidates = [
            modeled_time(n, m, K, N, c, calibration)
            for c in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
            if c <= N and N % c == 0
        ]
        best[N] = min(candidates)

    header = ["N"] + [f"N1={n1}" for n1 in n1_series] + ["N1=Best"]
    rows = []
    for N in N_SWEEP:
        row = [N]
        for n1 in n1_series:
            if N in times[n1]:
                base_n = min(times[n1])
                row.append(f"{times[n1][base_n] / times[n1][N]:.2f}x")
            else:
                row.append("-")
        row.append(f"{best[min(N_SWEEP)] / best[N]:.2f}x")
        rows.append(row)
    print_series(
        "Fig 9: k-path strong-scaling speedup vs N (N1 fixed), random-1e6",
        header,
        rows,
    )

    for n1 in n1_series:
        series = [times[n1][N] for N in N_SWEEP if N in times[n1]]
        # monotone improvement with N...
        assert all(b <= a * 1.001 for a, b in zip(series, series[1:]))
        # ...within sanity bounds of ideal scaling.  Mild superlinearity is
        # possible and real: growing N shrinks BSMax = 2^k N1/N, and the
        # *measured* c1(N2) curve improves when N2 drops back into cache
        # (the same effect behind the paper's N2 < 1024 cap).
        span = series[0] / series[-1]
        ideal = (max(N for N in N_SWEEP if N in times[n1])
                 / min(N for N in N_SWEEP if N in times[n1]))
        assert 1.0 < span <= ideal * 4.0
    # best-N1 series scales at least as well as any fixed series
    assert best[512] <= min(times[n1].get(512, float("inf")) for n1 in n1_series)


def test_fig10_classic_strong_scaling(calibration):
    datasets = ("random-1e6", "com-Orkut", "miami")
    curves = {}
    for name in datasets:
        spec = DATASETS[name]
        curves[name] = {
            N: modeled_time(spec.paper_nodes, spec.paper_edges, K, N, N, calibration)
            for N in N_SWEEP
        }
    header = ["N"] + [f"{name} speedup" for name in datasets]
    rows = []
    for N in N_SWEEP:
        rows.append(
            [N]
            + [f"{curves[name][min(N_SWEEP)] / curves[name][N]:.2f}x" for name in datasets]
        )
    print_series("Fig 10: k-path strong scaling with N1 = N (single phase)", header, rows)

    for name in datasets:
        series = [curves[name][N] for N in N_SWEEP]
        speedup = series[0] / series[-1]
        # "less than ideal but still scale well up to a considerable number
        # of processes": between 2x and 16x over a 16x processor range
        assert 2.0 < speedup <= 16.0, f"{name}: speedup {speedup:.1f} out of band"


@pytest.mark.benchmark(group="fig9-10-simulated-phase")
@pytest.mark.parametrize("n1", [2, 4, 8])
def test_simulated_phase_makespan(benchmark, bench_datasets, n1):
    """Real SPMD execution of one phase at several N1 (small instance)."""
    from repro.core.evaluator_path import make_path_phase_program
    from repro.core.halo import build_halo_views
    from repro.ff.fingerprint import Fingerprint
    from repro.graph.partition import random_partition
    from repro.runtime.scheduler import Simulator
    from repro.util.rng import RngStream

    g = bench_datasets["random-1e6"]
    fp = Fingerprint.draw(g.n, 8, RngStream(9))
    part = random_partition(g, n1, rng=RngStream(10))
    views = build_halo_views(g, part)

    def run_phase():
        prog = make_path_phase_program(views, fp, 0, 8)
        return Simulator(n1, trace=False).run(prog).results[0]

    result = benchmark(run_phase)
    assert isinstance(result, int)
