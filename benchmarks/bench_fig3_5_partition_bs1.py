"""Figures 3-5: k-path total runtime vs N1 with N2 = 1 (BS1).

The paper sweeps the partition size N1 for several processor counts N on
random-1e6, com-Orkut, and miami, with no iteration batching.  The
signature shape: runtime falls as N1 grows (more processors engaged per
phase, since 2^k < N means iteration parallelism alone cannot use them
all), reaches an interior minimum, then rises as per-phase communication
dominates.

Modeled series use the live kernel calibration on partition stats from
the actually-generated stand-ins, scaled to paper size.
"""

import pytest

from _bench_utils import fmt, print_series
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.graph.datasets import DATASETS
from repro.runtime.cluster import juliet

K = 6  # the paper's worked example (Section VI-B) uses k=6
N_VALUES = (128, 256, 512)
N1_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def _modeled_curve(n, m, N, calibration, n2_of=lambda n1, N: 1):
    curve = {}
    for n1 in N1_SWEEP:
        if n1 > N or N % n1:
            continue
        n2 = n2_of(n1, N)
        sched = PhaseSchedule(K, N, n1, n2)
        est = estimate_runtime(
            PartitionStats.random_model(n, m, n1), sched, calibration,
            juliet().cost_model(N),
        )
        curve[n1] = est.total_seconds
    return curve


DATASET_FIGS = [
    ("random-1e6", "Fig 3"),
    ("com-Orkut", "Fig 4"),
    ("miami", "Fig 5"),
]


@pytest.mark.parametrize("name,fig", DATASET_FIGS, ids=[d[0] for d in DATASET_FIGS])
def test_fig_series_bs1(name, fig, calibration):
    spec = DATASETS[name]
    n, m = spec.paper_nodes, spec.paper_edges
    curves = {N: _modeled_curve(n, m, N, calibration) for N in N_VALUES}
    header = ["N1"] + [f"N={N} [s]" for N in N_VALUES]
    rows = []
    for n1 in N1_SWEEP:
        row = [n1] + [fmt(curves[N][n1]) if n1 in curves[N] else "-" for N in N_VALUES]
        rows.append(row)
    print_series(f"{fig}: k-path runtime vs N1, {name} (paper scale), BS1 (N2=1)", header, rows)

    for N, curve in curves.items():
        best = min(curve, key=curve.get)
        # the paper's observation: an interior optimum between the extremes
        assert best > 1, f"{name} N={N}: optimum at pure iteration parallelism"
        assert best < N, f"{name} N={N}: optimum at pure vertex parallelism"
        # the dip is real, not noise (the high-N1 end is shallower for the
        # denser datasets, so its margin is looser)
        assert curve[best] < 0.9 * curve[1]
        assert curve[best] < 0.97 * curve[max(k for k in curve)]


@pytest.mark.benchmark(group="fig3-5-phase-kernel")
def test_phase_kernel_bs1(benchmark, bench_datasets):
    """The real per-phase kernel at N2=1 on the random-1e6 stand-in."""
    from repro.core.evaluator_path import path_phase_value
    from repro.ff.fingerprint import Fingerprint
    from repro.util.rng import RngStream

    g = bench_datasets["random-1e6"]
    fp = Fingerprint.draw(g.n, K, RngStream(5))
    benchmark(lambda: path_phase_value(g, fp, 0, 1))
