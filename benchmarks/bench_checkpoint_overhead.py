"""Overhead of durable checkpointing on the detection hot path.

A checkpoint commit is one JSON serialization plus a write-to-temp,
fsync, atomic-rename sequence, and it lands once per amplification
round — never inside a kernel phase.  This bench measures a full
detection three ways: no checkpointing (the baseline shape),
checkpointing every round (the default, what crash recovery assumes),
and checkpointing every 4 rounds (what a long soak run on slow storage
would use).  The contract asserted at the bottom: the round values are
bit-identical in all three configurations, and per-round durability
costs a bounded multiple of the run, because an fsync of a few-KB file
is cheap next to a round doing ``k`` sparse mat-vec phases.
"""

import time

from _bench_utils import print_series
from repro.core.midas import MidasRuntime, detect_path
from repro.graph.generators import erdos_renyi
from repro.util.rng import RngStream

K = 8
REPEATS = 3


def _run(graph, rt, seed):
    t0 = time.perf_counter()
    res = detect_path(graph, K, eps=0.3, rng=RngStream(seed, name="bench"),
                      runtime=rt, early_exit=False)
    return time.perf_counter() - t0, res


def _best_of(graph, make_rt):
    walls, res = [], None
    for _ in range(REPEATS):
        wall, res = _run(graph, make_rt(), seed=7)
        walls.append(wall)
    return min(walls), res


def test_checkpoint_overhead_is_bounded(tmp_path):
    """Same detection with and without durable checkpoints; best-of-3."""
    g = erdos_renyi(2000, m=8000, rng=RngStream(1, name="g"))
    dirs = iter(tmp_path / f"ckpt{i}" for i in range(2 * REPEATS))

    def off():
        return MidasRuntime()

    def every_round():
        return MidasRuntime(checkpoint_dir=str(next(dirs)))

    def every_four():
        return MidasRuntime(checkpoint_dir=str(next(dirs)),
                            checkpoint_every=4)

    wall_off, res_off = _best_of(g, off)
    wall_on, res_on = _best_of(g, every_round)
    wall_4, res_4 = _best_of(g, every_four)

    # durability must never perturb the detection itself
    assert [r.value for r in res_on.rounds] == [r.value for r in res_off.rounds]
    assert [r.value for r in res_4.rounds] == [r.value for r in res_off.rounds]

    rounds = len(res_off.rounds)
    rows = [
        ["off", f"{wall_off:.3f}", "1.000x", 0],
        ["every round", f"{wall_on:.3f}",
         f"{wall_on / wall_off:.3f}x", rounds],
        ["every 4 rounds", f"{wall_4:.3f}",
         f"{wall_4 / wall_off:.3f}x", -(-rounds // 4)],
    ]
    print_series(
        f"Checkpoint overhead on detect_path (k={K}, {rounds} rounds, "
        f"best of {REPEATS})",
        ["checkpointing", "wall [s]", "vs off", "commits"],
        rows,
    )
    # generous bound: fsync latency varies wildly across CI hosts, but a
    # 3x blowup would mean serialization landed inside the phase loop
    assert wall_on < wall_off * 3.0
    assert wall_4 < wall_on * 1.5
