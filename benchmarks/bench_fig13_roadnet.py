"""Figure 13: congested-highway clusters in the (synthetic) LA road network.

The paper's case study is qualitative — a map of sensors flagged for
*unexpectedly* low speed during Friday rush hour.  This bench reproduces
the pipeline end-to-end on the synthetic PeMS stand-in and asserts its two
qualitative properties:

1. the detector recovers the injected incident with high precision/recall;
2. routine congestion (slow, but consistent with each sensor's own
   history) is NOT flagged — the null run's best score is far below the
   incident run's.

Scale note: the live pipeline runs at k=6 (the pure-Python scan DP at the
paper's k=12 costs ~2^12 x k^2 x W^2 element-ops per round and belongs on
the cluster the paper used); the k=12 cost at paper scale is reported from
the calibrated model alongside.
"""

import numpy as np
import pytest

from _bench_utils import print_series
from repro.apps.roadnet import CongestionStudy, build_highway_network
from repro.core.model import PartitionStats, estimate_runtime
from repro.core.schedule import PhaseSchedule
from repro.runtime.cluster import juliet
from repro.util.rng import RngStream

K_LIVE = 6
K_PAPER = 12


@pytest.fixture(scope="module")
def network():
    return build_highway_network(n_corridors=8, sensors_per_corridor=32,
                                 rng=RngStream(1405))


def test_fig13_case_study(network):
    study = CongestionStudy(network, n_history=48, rush_hour_dip=14.0,
                            incident_dip=24.0)
    cur, mu, sig, incident = study.synthesize(incident_len=K_LIVE, rng=RngStream(9))
    res = study.detect(cur, mu, sig, k=K_LIVE, alpha=0.05, eps=0.15,
                       rng=RngStream(10), extract=True)

    rows = [
        ["sensors", network.n_sensors],
        ["incident sensors (injected)", len(incident)],
        ["individually flagged (alpha=0.05)", res.details["n_flagged_sensors"]],
        ["best cell (size, weight)", f"({res.best_size}, {res.best_weight})"],
        ["best Berk-Jones score", f"{res.best_score:.2f}"],
        ["extracted cluster size", len(res.cluster) if res.cluster is not None else 0],
    ]
    if res.cluster is not None:
        rec = CongestionStudy.score_recovery(res.cluster, incident)
        rows.append(["precision vs injection", f"{rec['precision']:.2f}"])
        rows.append(["recall vs injection", f"{rec['recall']:.2f}"])
    print_series(
        f"Fig 13 (live, k={K_LIVE}): unexpected-congestion detection",
        ["metric", "value"], rows,
    )

    assert res.best_score > 0
    assert res.best_size >= 4
    assert res.cluster is not None
    rec = CongestionStudy.score_recovery(res.cluster, incident)
    assert rec["precision"] >= 0.7
    assert rec["true_positives"] >= 3


def test_fig13_routine_congestion_not_flagged(network):
    """Slow-but-expected rush hour must score far below the incident."""
    base = CongestionStudy(network, n_history=48, rush_hour_dip=14.0, incident_dip=0.0)
    cur0, mu0, sig0, _ = base.synthesize(incident_len=6, rng=RngStream(20))
    null_res = base.detect(cur0, mu0, sig0, k=K_LIVE, alpha=0.01, eps=0.15,
                           rng=RngStream(21))

    hot = CongestionStudy(network, n_history=48, rush_hour_dip=14.0, incident_dip=24.0)
    cur1, mu1, sig1, _ = hot.synthesize(incident_len=6, rng=RngStream(20))
    alt_res = hot.detect(cur1, mu1, sig1, k=K_LIVE, alpha=0.01, eps=0.15,
                         rng=RngStream(21))

    print_series(
        "Fig 13 control: routine rush hour vs incident",
        ["scenario", "flagged sensors", "best score"],
        [
            ["routine congestion only", null_res.details["n_flagged_sensors"],
             f"{null_res.best_score:.2f}"],
            ["with incident", alt_res.details["n_flagged_sensors"],
             f"{alt_res.best_score:.2f}"],
        ],
    )
    assert alt_res.best_score > 2.0 * max(null_res.best_score, 0.5)


def test_fig13_k12_modeled_cost(calibration):
    """The paper's k=12 configuration, costed at PeMS scale on the model.

    PeMS LA has a few thousand mainline sensors; the run must be
    comfortably interactive on the paper's cluster."""
    n, m = 4_000, 6_000  # LA mainline detector scale
    N, n1 = 128, 8
    z_axis = K_PAPER + 1  # binary weights
    total = 0.0
    for j in range(1, K_PAPER + 1):
        sched = PhaseSchedule(j, N, n1, PhaseSchedule.bs_max(j, N, n1))
        total += estimate_runtime(
            PartitionStats.random_model(n, m, n1), sched, calibration,
            juliet().cost_model(N), eps=0.1, problem="scanstat", z_axis=z_axis,
        ).total_seconds
    print(f"\nFig 13 modeled: full k={K_PAPER} scan of a {n}-sensor network "
          f"on N={N}: {total:.2f}s")
    # feasible within one analysis session on the paper's hardware (the
    # W^2 k^2 factor of Lemma 3 is what the paper's weight-rounding remark
    # targets; binary weights already keep W = k here)
    assert total < 3 * 3600


@pytest.mark.benchmark(group="fig13-pipeline")
def test_detection_pipeline_kernel(benchmark, network):
    """Wall-time of one full k=5 detection pass on the sensor network."""
    study = CongestionStudy(network, n_history=32)
    cur, mu, sig, _ = study.synthesize(incident_len=5, rng=RngStream(30))
    benchmark.pedantic(
        lambda: study.detect(cur, mu, sig, k=5, eps=0.3, rng=RngStream(31)),
        rounds=3, iterations=1,
    )
